//! Collection strategies (`prop::collection::{vec, btree_map, btree_set}`).

use crate::{Strategy, TestRng};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// A size specification: an exact length or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.min + 1 >= self.max {
            self.min
        } else {
            rng.gen_range(self.min..self.max)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self { min: r.start, max: r.end.max(r.start + 1) }
    }
}

/// Strategy for `Vec<S::Value>` with a sampled length.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

/// Generates maps with up to the sampled number of entries (duplicate
/// generated keys collapse, as in real proptest's minimum-size-0 maps).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size: size.into() }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| (self.key.new_value(rng), self.value.new_value(rng))).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates sets with up to the sampled number of elements.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

//! A tiny regex-subset sampler for string strategies.
//!
//! Supported syntax — the subset this workspace's tests use:
//!
//! - literal characters (including space)
//! - character classes `[a-z0-9_:.-]` with ranges and literal members
//! - quantifiers `{n}` and `{m,n}` applied to the preceding atom
//! - `\PC` — "any non-control character" (sampled from ASCII plus a few
//!   BMP blocks to exercise UTF-8 handling)
//! - escaped literals (`\\`, `\.`, ...)

use crate::TestRng;
use rand::Rng;

enum Atom {
    /// Inclusive char ranges; sampling picks a range, then a char.
    Class(Vec<(char, char)>),
    /// Any printable (non-control) character.
    Printable,
    Literal(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

pub(crate) fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let n =
            if piece.min == piece.max { piece.min } else { rng.gen_range(piece.min..=piece.max) };
        for _ in 0..n {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
            char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                .expect("class ranges avoid surrogates")
        }
        Atom::Printable => {
            // Mostly ASCII, with occasional wider BMP characters so UTF-8
            // paths get exercised.
            match rng.gen_range(0..10) {
                0 => char::from_u32(rng.gen_range(0xA1..=0x2FF)).expect("no surrogates below D800"),
                1 => {
                    char::from_u32(rng.gen_range(0x400..=0x4FF)).expect("no surrogates below D800")
                }
                _ => char::from_u32(rng.gen_range(0x20..=0x7E)).expect("ASCII"),
            }
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces: Vec<Piece> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                let (ranges, next) = parse_class(&chars, i + 1, pattern);
                pieces.push(Piece { atom: Atom::Class(ranges), min: 1, max: 1 });
                i = next;
            }
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') => {
                        // \PC — negated "control" category.
                        assert_eq!(
                            chars.get(i + 1),
                            Some(&'C'),
                            "unsupported \\P class in pattern {pattern:?}"
                        );
                        pieces.push(Piece { atom: Atom::Printable, min: 1, max: 1 });
                        i += 2;
                    }
                    Some(&c) => {
                        pieces.push(Piece { atom: Atom::Literal(c), min: 1, max: 1 });
                        i += 1;
                    }
                    None => panic!("dangling escape in pattern {pattern:?}"),
                }
            }
            '{' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                };
                let last = pieces
                    .last_mut()
                    .unwrap_or_else(|| panic!("quantifier with no atom in pattern {pattern:?}"));
                last.min = min;
                last.max = max;
                i = close + 1;
            }
            c => {
                pieces.push(Piece { atom: Atom::Literal(c), min: 1, max: 1 });
                i += 1;
            }
        }
    }
    pieces
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(char, char)>, usize) {
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            *chars.get(i).unwrap_or_else(|| panic!("dangling escape in class of {pattern:?}"))
        } else {
            chars[i]
        };
        // `a-z` range when `-` sits between two members; a trailing or
        // leading `-` is a literal.
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&n| n != ']') {
            let hi = chars[i + 2];
            assert!(c <= hi, "decreasing class range in pattern {pattern:?}");
            ranges.push((c, hi));
            i += 3;
        } else {
            ranges.push((c, c));
            i += 1;
        }
    }
    assert!(i < chars.len(), "unclosed character class in pattern {pattern:?}");
    (ranges, i + 1)
}

#[cfg(test)]
mod tests {
    use super::generate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn classes_and_quantifiers() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate("[a-z:.-]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || ":.-".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn leading_class_then_quantified_class() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = generate("[A-Z][a-z]{0,8}", &mut rng);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_uppercase());
            assert!(cs.all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_class_produces_valid_strings() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = generate("\\PC{0,64}", &mut rng);
            assert!(s.chars().count() <= 64);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}

//! Option strategies (`prop::option::of`).

use crate::{Strategy, TestRng};
use rand::Rng;

/// Strategy for `Option<S::Value>` (roughly one `None` in four).
pub struct OptionStrategy<S> {
    inner: S,
}

/// Generates `Some` values from `inner` most of the time, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.gen_range(0..4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}

//! A minimal in-tree subset of [`proptest`](https://docs.rs/proptest).
//!
//! Keeps the *property-based testing* shape — [`Strategy`] values describe
//! how to generate inputs, the [`proptest!`] macro runs a body over many
//! generated cases, `prop_assert*` report failures — but drops shrinking:
//! a failing case is reported with its generated inputs as-is. Generation
//! is deterministic per (test name, case index), so failures reproduce.
//!
//! Supported strategy surface: numeric ranges, regex-subset string
//! patterns (`"[a-z]{1,8}"`, `"\\PC{0,64}"`), tuples,
//! [`Strategy::prop_map`], [`prop_oneof!`], [`collection::vec`],
//! [`collection::btree_map`], [`collection::btree_set`], [`option::of`],
//! and [`any`] for the primitive types the workspace tests use.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

mod pattern;

/// The generator handed to strategies (a seeded [`SmallRng`]).
pub type TestRng = SmallRng;

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    /// Alias letting `prop::collection::vec(...)`-style paths resolve.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError, TestRunner,
    };
}

pub mod collection;
pub mod option;

// ---------------------------------------------------------------------------
// Core strategy machinery
// ---------------------------------------------------------------------------

/// A recipe for generating values of type [`Self::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed to mix arms in [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe subset of [`Strategy`], used behind [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.dyn_new_value(rng)
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Chooses uniformly among same-valued strategies (see [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].new_value(rng)
    }
}

/// Chooses one of several strategies (all producing the same type) with
/// equal probability.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

// Numeric ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// String patterns (a regex subset) are strategies.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

// Tuples of strategies are strategies.
macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty = $via:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<$via>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(
    u8 = u64,
    u16 = u64,
    u32 = u64,
    u64 = u64,
    usize = u64,
    i8 = u64,
    i16 = u64,
    i32 = u64,
    i64 = u64,
    isize = u64
);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen_range(-1.0e6..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1.0e12..1.0e12)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Runner + config + assertion plumbing
// ---------------------------------------------------------------------------

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property within a test case (produced by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives the generated cases of one `proptest!` test.
pub struct TestRunner {
    cases: u32,
    seed_base: u64,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the test name: deterministic per-test seeds, so a
        // reported failing case index reproduces exactly.
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { cases: config.cases, seed_base: h }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The deterministic generator for one case.
    pub fn rng_for(&self, case: u32) -> TestRng {
        SmallRng::seed_from_u64(self.seed_base.wrapping_add(u64::from(case)))
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            )));
        }
    }};
}

/// Asserts two values are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __left
            )));
        }
    }};
}

/// Defines `#[test]` functions whose arguments are generated from
/// strategies, running each body over many cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __runner = $crate::TestRunner::new(__config, stringify!($name));
                for __case in 0..__runner.cases() {
                    let mut __rng = __runner.rng_for(__case);
                    $( let $arg = $crate::Strategy::new_value(&($strategy), &mut __rng); )+
                    // The closure gives `$body` a scope where `?` works.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(__e) = __outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}:\n{}",
                            stringify!($name), __case, __runner.cases(), __e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn patterns_match_shape(s in "[a-z]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()), "len {} of {:?}", s.len(), s);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn oneof_and_collections(
            v in prop::collection::vec(prop_oneof![0usize..3, 10usize..13], 0..6),
            o in prop::option::of(0u32..4),
            m in prop::collection::btree_map("[a-z]{1,3}", 0i32..5, 0..4),
        ) {
            prop_assert!(v.iter().all(|&x| x < 3 || (10..13).contains(&x)));
            prop_assert!(o.is_none() || o.unwrap() < 4);
            prop_assert!(m.len() <= 4);
        }

        #[test]
        fn tuples_and_map(pair in ("[A-Z]{1,2}", 0usize..4).prop_map(|(s, n)| (s, n + 1))) {
            prop_assert!(pair.1 >= 1 && pair.1 <= 4);
        }

        #[test]
        fn any_u64_varies(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn determinism() {
        let runner = TestRunner::new(ProptestConfig::with_cases(4), "determinism");
        let s = "[a-z]{4}";
        let a = Strategy::new_value(&s, &mut runner.rng_for(0));
        let b = Strategy::new_value(&s, &mut runner.rng_for(0));
        assert_eq!(a, b);
    }
}

//! A minimal in-tree subset of the [`rand`](https://docs.rs/rand) crate,
//! API-compatible with the `rand 0.8` surface this workspace uses:
//!
//! - [`rngs::SmallRng`] — a fast, seedable, non-cryptographic generator
//!   (xoshiro256++ here), always deterministic for a given seed.
//! - [`SeedableRng::seed_from_u64`] — the only construction path used.
//! - [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`].
//!
//! Everything is deterministic and portable; there is no OS entropy source
//! because reproducibility is the entire point for this workspace.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`f32`/`f64` in
    /// `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types constructible from a seed. Only [`seed_from_u64`](Self::seed_from_u64)
/// is provided; that is the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the standard distribution (see [`Rng::gen`]).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges a value can be sampled from (see [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by rejection sampling (no modulo bias).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++), mirroring
    /// `rand::rngs::SmallRng`. Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as real rand does for seed_from_u64.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(0..7u32);
            assert!(v < 7);
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}

//! A minimal in-tree subset of the [`bytes`](https://docs.rs/bytes) crate.
//!
//! Provides [`Bytes`]: an immutable, reference-counted byte buffer whose
//! clones and sub-slices share one allocation. This is the exact access
//! pattern `overton-store`'s row store relies on (shared immutable blob,
//! zero-copy per-row views); the full crate's mutable `BytesMut`/`Buf`
//! machinery is intentionally absent.

#![warn(missing_docs)]

use std::ops::{Deref, Range, RangeTo};
use std::sync::Arc;

/// An immutable byte buffer with cheap clones and zero-copy slicing.
#[derive(Clone, Default)]
pub struct Bytes {
    buf: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a new `Bytes` viewing `range` of this one, sharing the same
    /// underlying allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl Into<ByteRange>) -> Self {
        let ByteRange { start, end } = range.into();
        assert!(start <= end, "slice range is decreasing");
        assert!(end <= self.len(), "slice range out of bounds");
        Self { buf: Arc::clone(&self.buf), start: self.start + start, end: self.start + end }
    }

    /// The bytes of this view.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

/// A resolved `start..end` range into a [`Bytes`] view.
pub struct ByteRange {
    /// Inclusive start offset.
    pub start: usize,
    /// Exclusive end offset.
    pub end: usize,
}

impl From<Range<usize>> for ByteRange {
    fn from(r: Range<usize>) -> Self {
        Self { start: r.start, end: r.end }
    }
}

impl From<RangeTo<usize>> for ByteRange {
    fn from(r: RangeTo<usize>) -> Self {
        Self { start: 0, end: r.end }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { buf: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        v.to_vec().into()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        let ss = s.slice(1..2);
        assert_eq!(&*ss, &[3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![0u8; 3]).slice(0..4);
    }
}

//! A minimal in-tree subset of the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! Supports the surface `overton-bench` uses — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! median-of-samples timer instead of the full statistics engine.
//! Benchmarks compile with `cargo bench --no-run` and produce readable
//! timings when run.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting the
/// computation that produced `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How batched inputs are grouped between setup calls (accepted for API
/// compatibility; this subset re-runs setup for every measured batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _c: self, name, sample_size }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(id, sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures one closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        if b.iters > 0 {
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
    println!("  {id:<40} {:>14}/iter  ({} samples)", format_time(median), samples.len());
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The per-sample timing handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then a small fixed batch per sample.
        black_box(routine());
        let iters = 3u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = 3u64;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += iters;
    }
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $fun(&mut c); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}

//! `Serialize`/`Deserialize` implementations for std types.

use crate::{Deserialize, Error, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

fn type_err(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {}", got.kind()))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: Value) -> Result<Self, Error> {
        Ok(v)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(b),
            other => Err(type_err("bool", &other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| type_err("integer", &v))?;
                <$t>::try_from(i).map_err(|_| Error::custom(format!(
                    "integer {i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::from(*self)
    }
}

impl Deserialize for u64 {
    fn from_value(v: Value) -> Result<Self, Error> {
        let i = v.as_i64().ok_or_else(|| type_err("integer", &v))?;
        u64::try_from(i).map_err(|_| Error::custom(format!("integer {i} out of range for u64")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(f64::NAN), // non-finite floats serialize as null
            _ => v.as_f64().ok_or_else(|| type_err("number", &v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s),
            other => Err(type_err("string", &other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.into_iter().map(T::from_value).collect(),
            other => Err(type_err("array", &other)),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.into_iter().map(T::from_value).collect(),
            other => Err(type_err("array", &other)),
        }
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.into_iter().map(T::from_value).collect(),
            other => Err(type_err("array", &other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Object(map) => {
                map.into_iter().map(|(k, v)| Ok((k, V::from_value(v)?))).collect()
            }
            other => Err(type_err("object", &other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Object(map) => {
                map.into_iter().map(|(k, v)| Ok((k, V::from_value(v)?))).collect()
            }
            other => Err(type_err("object", &other)),
        }
    }
}

/// Mirrors real serde's representation of `Duration`: an object with
/// integer `secs` and `nanos` fields, so the roundtrip is exact (no
/// float truncation of sub-second precision).
impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        let mut m = crate::Map::new();
        m.insert("secs".to_string(), Value::from(self.as_secs()));
        m.insert("nanos".to_string(), Value::Int(i64::from(self.subsec_nanos())));
        Value::Object(m)
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => {
                let field = |name: &str| {
                    m.get(name)
                        .and_then(Value::as_i64)
                        .ok_or_else(|| Error::custom(format!("Duration needs integer `{name}`")))
                };
                let secs = u64::try_from(field("secs")?)
                    .map_err(|_| Error::custom("Duration secs out of range"))?;
                let nanos = u32::try_from(field("nanos")?)
                    .map_err(|_| Error::custom("Duration nanos out of range"))?;
                Ok(std::time::Duration::new(secs, nanos))
            }
            other => Err(type_err("object", &other)),
        }
    }
}

macro_rules! impl_tuple {
    ($len:literal: $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($($t::from_value(it.next().expect("length checked"))?,)+))
                    }
                    Value::Array(items) => Err(Error::custom(format!(
                        "expected array of length {}, got {}", $len, items.len()
                    ))),
                    other => Err(type_err("array", &other)),
                }
            }
        }
    };
}

impl_tuple!(1: A.0);
impl_tuple!(2: A.0, B.1);
impl_tuple!(3: A.0, B.1, C.2);
impl_tuple!(4: A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(42u64.to_value()).unwrap(), 42);
        assert_eq!(String::from_value("hi".to_string().to_value()).unwrap(), "hi");
        let pair = ("x".to_string(), 0.5f32);
        assert_eq!(<(String, f32)>::from_value(pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn duration_roundtrips_exactly() {
        let d = std::time::Duration::new(3, 141_592_653);
        assert_eq!(std::time::Duration::from_value(d.to_value()).unwrap(), d);
        assert_eq!(
            std::time::Duration::from_value(std::time::Duration::ZERO.to_value()).unwrap(),
            std::time::Duration::ZERO
        );
        assert!(std::time::Duration::from_value(Value::Int(3)).is_err());
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<usize> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(<Option<usize>>::from_value(Value::Null).unwrap(), None);
        assert_eq!(<Option<usize>>::from_value(Value::Int(3)).unwrap(), Some(3));
    }

    #[test]
    fn strict_primitive_typing() {
        assert!(String::from_value(Value::Int(1)).is_err());
        assert!(usize::from_value(Value::String("1".into())).is_err());
        assert!(usize::from_value(Value::Int(-1)).is_err());
    }
}

//! The JSON-like data model every `Serialize`/`Deserialize` round-trips
//! through, plus its compact text rendering (`Display`).

use std::collections::BTreeMap;

/// Object payload of a [`Value`], with deterministic (sorted) key order.
pub type Map = BTreeMap<String, Value>;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number that parsed as an integer.
    Int(i64),
    /// JSON number with a fractional part or exponent (or out of `i64`
    /// range).
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// The value as an `f64`, accepting both number representations.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an `i64` (integral floats included).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Renders compact JSON into `out`.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => write_f64(*f, out),
            Value::String(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders pretty JSON (two-space indent) into `out`.
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    write_json_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        // Rust's float Display is shortest-round-trip, which keeps
        // serialize -> parse -> serialize a fixed point.
        out.push_str(&f.to_string());
    } else {
        // JSON has no NaN/inf; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Value {
    /// Compact JSON text.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<u64> for Value {
    fn from(u: u64) -> Self {
        i64::try_from(u).map_or(Value::Float(u as f64), Value::Int)
    }
}

impl From<usize> for Value {
    fn from(u: usize) -> Self {
        Value::from(u as u64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Float(f64::from(f))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(map: Map) -> Self {
        Value::Object(map)
    }
}

//! A minimal in-tree subset of [`serde`](https://docs.rs/serde).
//!
//! Instead of serde's zero-copy visitor architecture, this subset routes
//! everything through an owned JSON-like [`Value`] tree: [`Serialize`]
//! renders a value *to* a [`Value`], [`Deserialize`] parses one *from* a
//! [`Value`]. That is a strictly smaller contract, but it supports the
//! container attributes this workspace relies on (`untagged`, `tag`,
//! `rename_all`, `flatten`, `default`, `skip`, `skip_serializing_if`) via
//! the companion [`serde_derive`] macros, and `serde_json` (also vendored)
//! provides the text layer.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

mod impls;
mod value;

pub use value::{Map, Value};

/// Error produced when a [`Value`] does not match the shape a
/// [`Deserialize`] implementation expects.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses an instance out of a [`Value`] tree.
    fn from_value(v: Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

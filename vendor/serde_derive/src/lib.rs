//! Derive macros for the vendored, `Value`-based `serde` subset.
//!
//! Implemented without `syn`/`quote` (the build environment is offline):
//! the item is parsed directly from the `proc_macro` token stream and the
//! impl is generated as source text. Supported shapes — exactly what this
//! workspace uses:
//!
//! - structs with named fields, with per-field `#[serde(default)]`,
//!   `#[serde(flatten)]`, `#[serde(skip)]`,
//!   `#[serde(skip_serializing_if = "path")]`;
//! - newtype structs;
//! - enums: externally tagged (default), `#[serde(untagged)]`, and
//!   internally tagged `#[serde(tag = "...")]`, with optional
//!   `#[serde(rename_all = "lowercase")]`, over unit / newtype / struct
//!   variants.
//!
//! Generics and other serde attributes are rejected with a compile error
//! rather than silently mis-serialized.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored, `Value`-returning flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives `serde::Deserialize` (the vendored, `Value`-consuming flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let item = parse_item(input);
    let code = match dir {
        Direction::Serialize => gen_serialize(&item),
        Direction::Deserialize => gen_deserialize(&item),
    };
    code.parse().unwrap_or_else(|e| panic!("serde_derive generated invalid Rust: {e}\n{code}"))
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

#[derive(Default, Debug)]
struct SerdeAttrs {
    untagged: bool,
    tag: Option<String>,
    rename_all: Option<String>,
    default: bool,
    flatten: bool,
    skip: bool,
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    ty: String,
    is_option: bool,
    attrs: SerdeAttrs,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    attrs: SerdeAttrs,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = SerdeAttrs::default();
    let mut i = 0;

    // Attributes and visibility before `struct` / `enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_serde_attr(g.stream(), &mut attrs);
                    i += 2;
                } else {
                    panic!("expected attribute body after `#`");
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            other => panic!("unexpected token while looking for struct/enum: {other:?}"),
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types (deriving on `{name}`)");
        }
    }

    let body_group = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        other => panic!("expected type body, found {other:?}"),
    };

    let body = if kind == "struct" {
        match body_group.delimiter() {
            Delimiter::Brace => Body::NamedStruct(parse_fields(body_group.stream())),
            Delimiter::Parenthesis => {
                let fields = split_top_level(body_group.stream());
                if fields.len() != 1 {
                    panic!("vendored serde_derive supports tuple structs with exactly one field (deriving on `{name}`)");
                }
                Body::NewtypeStruct
            }
            _ => panic!("unexpected struct body delimiter"),
        }
    } else {
        Body::Enum(parse_variants(body_group.stream()))
    };

    Item { name, attrs, body }
}

/// If `stream` is the body of a `#[serde(...)]` attribute, folds its items
/// into `attrs`; other attributes (doc comments etc.) are ignored.
fn parse_serde_attr(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            for item in split_top_level(g.stream()) {
                parse_serde_attr_item(&item, attrs);
            }
        }
        _ => {}
    }
}

fn parse_serde_attr_item(tokens: &[TokenTree], attrs: &mut SerdeAttrs) {
    let key = match tokens.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return,
    };
    let value = match (tokens.get(1), tokens.get(2)) {
        (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(lit))) if p.as_char() == '=' => {
            Some(unquote(&lit.to_string()))
        }
        _ => None,
    };
    match (key.as_str(), value) {
        ("untagged", None) => attrs.untagged = true,
        ("default", None) => attrs.default = true,
        ("flatten", None) => attrs.flatten = true,
        ("skip", None) => attrs.skip = true,
        ("tag", Some(v)) => attrs.tag = Some(v),
        ("rename_all", Some(v)) => {
            if v != "lowercase" {
                panic!("vendored serde_derive supports only rename_all = \"lowercase\", got {v:?}");
            }
            attrs.rename_all = Some(v);
        }
        ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
        (other, _) => panic!("vendored serde_derive does not support #[serde({other})]"),
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Splits a token stream at top-level commas, tracking `<...>` depth so
/// generic argument commas do not split.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream).into_iter().map(|tokens| parse_field(&tokens)).collect()
}

fn parse_field(tokens: &[TokenTree]) -> Field {
    let mut attrs = SerdeAttrs::default();
    let mut i = 0;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_serde_attr(g.stream(), &mut attrs);
                    i += 2;
                } else {
                    panic!("expected attribute body after `#`");
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected field name, found {other:?}"),
    };
    i += 1;
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
        other => panic!("expected `:` after field `{name}`, found {other:?}"),
    }
    i += 1;
    let ty_tokens = &tokens[i..];
    // Render through TokenStream so multi-punct tokens (`::`) survive.
    let ty = ty_tokens.iter().cloned().collect::<TokenStream>().to_string();
    let is_option =
        matches!(ty_tokens.first(), Some(TokenTree::Ident(id)) if id.to_string() == "Option");
    Field { name, ty, is_option, attrs }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|tokens| {
            let mut i = 0;
            // Variant-level attributes (doc comments) — skipped.
            while let Some(TokenTree::Punct(p)) = tokens.get(i) {
                if p.as_char() != '#' {
                    break;
                }
                i += 2;
            }
            let name = match tokens.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            i += 1;
            let kind = match tokens.get(i) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    if split_top_level(g.stream()).len() != 1 {
                        panic!("vendored serde_derive supports only newtype tuple variants (variant `{name}`)");
                    }
                    VariantKind::Newtype
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_fields(g.stream()))
                }
                other => panic!("unexpected token after variant `{name}`: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn variant_wire_name(item: &Item, variant: &str) -> String {
    if item.attrs.rename_all.as_deref() == Some("lowercase") {
        variant.to_lowercase()
    } else {
        variant.to_string()
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NewtypeStruct => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::NamedStruct(fields) => gen_serialize_fields_into_map(fields, "self.", "__map")
            .map(|code| {
                format!(
                    "let mut __map = ::serde::Map::new();\n{code}\n::serde::Value::Object(__map)"
                )
            })
            .expect("struct serialization"),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let wire = variant_wire_name(item, &v.name);
                let arm = match (&v.kind, &item.attrs) {
                    // Untagged: content only.
                    (VariantKind::Unit, a) if a.untagged => {
                        format!("{name}::{v_name} => ::serde::Value::Null,", v_name = v.name)
                    }
                    (VariantKind::Newtype, a) if a.untagged => format!(
                        "{name}::{v_name}(__x) => ::serde::Serialize::to_value(__x),",
                        v_name = v.name
                    ),
                    (VariantKind::Struct(fields), a) if a.untagged => {
                        gen_struct_variant_arm(name, &v.name, fields, None, None)
                    }
                    // Internally tagged: object with the tag field inside.
                    (VariantKind::Unit, a) if a.tag.is_some() => {
                        let tag = a.tag.as_deref().expect("checked");
                        format!(
                            "{name}::{v_name} => {{ let mut __m = ::serde::Map::new(); \
                             __m.insert({tag:?}.to_string(), ::serde::Value::String({wire:?}.to_string())); \
                             ::serde::Value::Object(__m) }},",
                            v_name = v.name
                        )
                    }
                    (VariantKind::Struct(fields), a) if a.tag.is_some() => gen_struct_variant_arm(
                        name,
                        &v.name,
                        fields,
                        a.tag.as_deref().map(|t| (t, wire.as_str())),
                        None,
                    ),
                    // Externally tagged (default).
                    (VariantKind::Unit, _) => format!(
                        "{name}::{v_name} => ::serde::Value::String({wire:?}.to_string()),",
                        v_name = v.name
                    ),
                    (VariantKind::Newtype, _) => format!(
                        "{name}::{v_name}(__x) => {{ let mut __m = ::serde::Map::new(); \
                         __m.insert({wire:?}.to_string(), ::serde::Serialize::to_value(__x)); \
                         ::serde::Value::Object(__m) }},",
                        v_name = v.name
                    ),
                    (VariantKind::Struct(fields), _) => {
                        gen_struct_variant_arm(name, &v.name, fields, None, Some(&wire))
                    }
                };
                arms.push_str(&arm);
                arms.push('\n');
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

/// Serialization statements inserting each of `fields` (accessed with the
/// `access` prefix, e.g. `self.`) into a `Map` binding named `map_var`.
/// Returns `None` for an empty field list (still a valid empty map).
fn gen_serialize_fields_into_map(fields: &[Field], access: &str, map_var: &str) -> Option<String> {
    let mut out = String::new();
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let fname = &f.name;
        let expr = format!("&{access}{fname}");
        if f.attrs.flatten {
            out.push_str(&format!(
                "match ::serde::Serialize::to_value({expr}) {{\n\
                 ::serde::Value::Object(__flat) => {{ for (__k, __v) in __flat {{ {map_var}.insert(__k, __v); }} }}\n\
                 ::serde::Value::Null => {{}}\n\
                 __other => panic!(\"#[serde(flatten)] field `{fname}` did not serialize to an object\"),\n\
                 }}\n"
            ));
        } else if let Some(pred) = &f.attrs.skip_serializing_if {
            out.push_str(&format!(
                "if !{pred}({expr}) {{ {map_var}.insert({fname:?}.to_string(), ::serde::Serialize::to_value({expr})); }}\n"
            ));
        } else {
            out.push_str(&format!(
                "{map_var}.insert({fname:?}.to_string(), ::serde::Serialize::to_value({expr}));\n"
            ));
        }
    }
    Some(out)
}

/// One `match` arm serializing a struct variant. `tag` wraps the fields
/// with an internal tag entry; `external` wraps them in a single-key
/// object instead.
fn gen_struct_variant_arm(
    enum_name: &str,
    variant: &str,
    fields: &[Field],
    tag: Option<(&str, &str)>,
    external: Option<&str>,
) -> String {
    let bindings = fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
    let mut body = String::from("let mut __m = ::serde::Map::new();\n");
    if let Some((tag_field, wire)) = tag {
        body.push_str(&format!(
            "__m.insert({tag_field:?}.to_string(), ::serde::Value::String({wire:?}.to_string()));\n"
        ));
    }
    body.push_str(&gen_serialize_fields_into_map(fields, "", "__m").expect("variant fields"));
    let result = if let Some(wire) = external {
        format!(
            "let mut __outer = ::serde::Map::new();\n\
             __outer.insert({wire:?}.to_string(), ::serde::Value::Object(__m));\n\
             ::serde::Value::Object(__outer)"
        )
    } else {
        "::serde::Value::Object(__m)".to_string()
    };
    format!("{enum_name}::{variant} {{ {bindings} }} => {{\n{body}\n{result}\n}},")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NewtypeStruct => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::NamedStruct(fields) => {
            let field_code = gen_deserialize_fields(name, fields);
            let ctor = fields
                .iter()
                .map(|f| format!("{0}: __field_{0}", f.name))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let mut __obj = match __v {{\n\
                 ::serde::Value::Object(__m) => __m,\n\
                 __other => return Err(::serde::Error::custom(format!(\n\
                 \"expected object for struct {name}, got {{}}\", __other.kind()))),\n\
                 }};\n\
                 {field_code}\n\
                 Ok({name} {{ {ctor} }})"
            )
        }
        Body::Enum(variants) if item.attrs.untagged => {
            let mut attempts = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        attempts.push_str(&format!(
                            "if matches!(__v, ::serde::Value::Null) {{ return Ok({name}::{v_name}); }}\n",
                            v_name = v.name
                        ));
                    }
                    VariantKind::Newtype => {
                        attempts.push_str(&format!(
                            "if let Ok(__x) = ::serde::Deserialize::from_value(__v.clone()) {{ return Ok({name}::{v_name}(__x)); }}\n",
                            v_name = v.name
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let parse =
                            gen_deserialize_variant_payload(name, &v.name, fields, "__v.clone()");
                        attempts.push_str(&format!(
                            "if let Ok(__x) = (|| -> Result<{name}, ::serde::Error> {{ {parse} }})() {{ return Ok(__x); }}\n",
                        ));
                    }
                }
            }
            format!(
                "{attempts}\n\
                 Err(::serde::Error::custom(\n\
                 \"data did not match any variant of untagged enum {name}\"))"
            )
        }
        Body::Enum(variants) if item.attrs.tag.is_some() => {
            let tag = item.attrs.tag.as_deref().expect("checked");
            let mut arms = String::new();
            for v in variants {
                let wire = variant_wire_name(item, &v.name);
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{wire:?} => Ok({name}::{v_name}),\n",
                            v_name = v.name
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let parse = gen_deserialize_variant_payload(
                            name,
                            &v.name,
                            fields,
                            "::serde::Value::Object(__obj)",
                        );
                        arms.push_str(&format!("{wire:?} => {{ {parse} }},\n"));
                    }
                    VariantKind::Newtype => {
                        panic!(
                            "internally tagged newtype variants are not supported (enum `{name}`)"
                        )
                    }
                }
            }
            format!(
                "let mut __obj = match __v {{\n\
                 ::serde::Value::Object(__m) => __m,\n\
                 __other => return Err(::serde::Error::custom(format!(\n\
                 \"expected object for enum {name}, got {{}}\", __other.kind()))),\n\
                 }};\n\
                 let __tag = match __obj.remove({tag:?}) {{\n\
                 Some(::serde::Value::String(__s)) => __s,\n\
                 _ => return Err(::serde::Error::custom(\n\
                 \"missing or non-string tag `{tag}` for enum {name}\")),\n\
                 }};\n\
                 match __tag.as_str() {{\n{arms}\
                 __other => Err(::serde::Error::custom(format!(\n\
                 \"unknown variant `{{__other}}` of enum {name}\"))),\n\
                 }}"
            )
        }
        Body::Enum(variants) => {
            // Externally tagged.
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let wire = variant_wire_name(item, &v.name);
                match &v.kind {
                    VariantKind::Unit => {
                        str_arms.push_str(&format!(
                            "{wire:?} => Ok({name}::{v_name}),\n",
                            v_name = v.name
                        ));
                    }
                    VariantKind::Newtype => {
                        obj_arms.push_str(&format!(
                            "{wire:?} => Ok({name}::{v_name}(::serde::Deserialize::from_value(__payload)?)),\n",
                            v_name = v.name
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let parse =
                            gen_deserialize_variant_payload(name, &v.name, fields, "__payload");
                        obj_arms.push_str(&format!("{wire:?} => {{ {parse} }},\n"));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{str_arms}\
                 __other => Err(::serde::Error::custom(format!(\n\
                 \"unknown unit variant `{{__other}}` of enum {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__key, __payload) = __m.into_iter().next().expect(\"length checked\");\n\
                 match __key.as_str() {{\n{obj_arms}\
                 __other => Err(::serde::Error::custom(format!(\n\
                 \"unknown variant `{{__other}}` of enum {name}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::Error::custom(format!(\n\
                 \"expected string or single-key object for enum {name}, got {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: ::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    )
}

/// Statements extracting every field of a named-field body out of a `Map`
/// binding named `__obj`, into `__field_<name>` locals. Non-flatten fields
/// are consumed first so flatten fields see only the remainder.
fn gen_deserialize_fields(container: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields.iter().filter(|f| !f.attrs.flatten) {
        let fname = &f.name;
        let ty = &f.ty;
        if f.attrs.skip {
            out.push_str(&format!(
                "let __field_{fname}: {ty} = ::std::default::Default::default();\n"
            ));
            continue;
        }
        let missing = if f.attrs.default {
            "::std::default::Default::default()".to_string()
        } else if f.is_option {
            "None".to_string()
        } else {
            format!(
                "return Err(::serde::Error::custom(\n\
                 \"missing field `{fname}` of {container}\"))"
            )
        };
        out.push_str(&format!(
            "let __field_{fname}: {ty} = match __obj.remove({fname:?}) {{\n\
             Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             None => {{ {missing} }}\n\
             }};\n"
        ));
    }
    for f in fields.iter().filter(|f| f.attrs.flatten) {
        let fname = &f.name;
        let ty = &f.ty;
        out.push_str(&format!(
            "let __field_{fname}: {ty} = ::serde::Deserialize::from_value(\n\
             ::serde::Value::Object(__obj.clone()))?;\n"
        ));
    }
    out
}

/// An expression-position block deserializing a struct variant's fields
/// from `payload_expr` and returning `Ok(Enum::Variant { ... })`.
fn gen_deserialize_variant_payload(
    enum_name: &str,
    variant: &str,
    fields: &[Field],
    payload_expr: &str,
) -> String {
    let field_code = gen_deserialize_fields(&format!("{enum_name}::{variant}"), fields);
    let ctor =
        fields.iter().map(|f| format!("{0}: __field_{0}", f.name)).collect::<Vec<_>>().join(", ");
    format!(
        "let mut __obj = match {payload_expr} {{\n\
         ::serde::Value::Object(__m) => __m,\n\
         __other => return Err(::serde::Error::custom(format!(\n\
         \"expected object for variant {enum_name}::{variant}, got {{}}\", __other.kind()))),\n\
         }};\n\
         {field_code}\n\
         Ok({enum_name}::{variant} {{ {ctor} }})"
    )
}

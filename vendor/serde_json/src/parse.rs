//! A strict recursive-descent JSON parser producing [`Value`] trees.

use crate::{Error, Value};
use serde::Map;

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Matches real serde_json's default recursion limit; past this depth the
/// parser returns an error instead of risking a stack overflow.
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{kw}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        self.depth += 1;
        let v = self.value_inner();
        self.depth -= 1;
        v
    }

    fn value_inner(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0C}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?
            }
            _ => return Err(self.err("unknown escape sequence")),
        })
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number region is ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

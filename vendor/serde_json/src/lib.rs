//! A minimal in-tree subset of [`serde_json`](https://docs.rs/serde_json).
//!
//! Provides the text layer over the vendored `serde`'s [`Value`] model: a
//! strict JSON parser, compact/pretty writers, the [`json!`] macro, and the
//! `from_str`/`from_slice`/`to_string`/`to_vec` entry points the workspace
//! uses. Numbers parse to `i64` when integral and `f64` otherwise.

#![warn(missing_docs)]

pub use serde::{Map, Value};

mod parse;

/// Error from parsing JSON text or from shaping a [`Value`] into a target
/// type.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Parses a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    Ok(T::from_value(value)?)
}

/// Parses a `T` from JSON bytes (must be UTF-8).
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Parses a [`Value`] from JSON text.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    parse::parse(s)
}

/// Serializes to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_compact(&mut out);
    Ok(out)
}

/// Serializes to pretty (two-space indented) JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_pretty(&mut out, 0);
    Ok(out)
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes to pretty JSON bytes.
pub fn to_vec_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Converts any `Serialize` type to a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Builds a [`Value`] from JSON-like literal syntax.
///
/// Supports `null`, booleans, numbers, string literals, arrays, objects
/// with literal keys, and arbitrary Rust expressions (anything with an
/// `Into<Value>` conversion) in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $value:tt),* $(,)? }) => {{
        let mut __map = $crate::Map::new();
        $( __map.insert($key.to_string(), $crate::json!($value)); )*
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_write_roundtrip() {
        let text = r#"{"a":[1,2.5,"x",null,true],"b":{"c":-3}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn json_macro_shapes() {
        let xs = vec!["p".to_string(), "q".to_string()];
        let v = json!({
            "kind": "demo",
            "n": 3,
            "nested": { "flag": true, "xs": xs },
            "list": [1, "two", { "three": 3 }]
        });
        let text = v.to_string();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\n\"quote\"\t\u{20AC}\u{1}";
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn integers_stay_integers() {
        let v: Value = from_str("42").unwrap();
        assert_eq!(v, Value::Int(42));
        let v: Value = from_str("42.0").unwrap();
        assert_eq!(v, Value::Float(42.0));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let bomb = "[".repeat(100_000);
        let err = from_str::<Value>(&bomb).unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{unquoted: 1}").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 trailing").is_err());
    }
}

//! Confidence calibration: do predicted probabilities mean what they say?
//!
//! Production monitoring cares about calibration because downstream logic
//! thresholds on model confidence (e.g. "only answer when P > 0.8"). The
//! standard summary is the expected calibration error (ECE): bucket
//! predictions by confidence and compare each bucket's mean confidence to
//! its accuracy.

/// One confidence bucket of a reliability diagram.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationBin {
    /// Inclusive lower edge of the confidence range.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub hi: f64,
    /// Predictions in this bucket.
    pub count: usize,
    /// Mean confidence of those predictions.
    pub mean_confidence: f64,
    /// Fraction that were correct.
    pub accuracy: f64,
}

/// A reliability diagram plus its ECE summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// Fixed-width confidence buckets.
    pub bins: Vec<CalibrationBin>,
    /// Expected calibration error: count-weighted mean |confidence - accuracy|.
    pub ece: f64,
}

/// Builds a calibration report from `(confidence, correct)` pairs.
///
/// # Panics
/// Panics if `n_bins == 0` or any confidence is outside `[0, 1]`.
pub fn calibration_report(predictions: &[(f64, bool)], n_bins: usize) -> CalibrationReport {
    assert!(n_bins > 0, "need at least one bin");
    assert!(
        predictions.iter().all(|(c, _)| (0.0..=1.0).contains(c)),
        "confidences must be in [0, 1]"
    );
    let width = 1.0 / n_bins as f64;
    let mut sums = vec![(0usize, 0.0f64, 0usize); n_bins]; // (count, conf sum, correct)
    for &(confidence, correct) in predictions {
        let mut bin = (confidence / width) as usize;
        if bin >= n_bins {
            bin = n_bins - 1; // confidence == 1.0
        }
        sums[bin].0 += 1;
        sums[bin].1 += confidence;
        sums[bin].2 += usize::from(correct);
    }
    let total = predictions.len().max(1) as f64;
    let mut ece = 0.0;
    let bins = sums
        .iter()
        .enumerate()
        .map(|(i, &(count, conf_sum, correct))| {
            let mean_confidence = if count == 0 { 0.0 } else { conf_sum / count as f64 };
            let accuracy = if count == 0 { 0.0 } else { correct as f64 / count as f64 };
            if count > 0 {
                ece += (count as f64 / total) * (mean_confidence - accuracy).abs();
            }
            CalibrationBin {
                lo: i as f64 * width,
                hi: (i + 1) as f64 * width,
                count,
                mean_confidence,
                accuracy,
            }
        })
        .collect();
    CalibrationReport { bins, ece }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_has_zero_ece() {
        // In each bucket, accuracy == confidence exactly.
        let mut preds = Vec::new();
        for _ in 0..80 {
            preds.push((0.8, true));
        }
        for _ in 0..20 {
            preds.push((0.8, false));
        }
        let report = calibration_report(&preds, 10);
        assert!(report.ece < 1e-9, "ece {}", report.ece);
    }

    #[test]
    fn overconfident_model_has_positive_ece() {
        // Claims 0.95 but is right half the time.
        let preds: Vec<(f64, bool)> = (0..100).map(|i| (0.95, i % 2 == 0)).collect();
        let report = calibration_report(&preds, 10);
        assert!((report.ece - 0.45).abs() < 1e-9, "ece {}", report.ece);
    }

    #[test]
    fn bins_partition_predictions() {
        let preds = vec![(0.05, true), (0.55, false), (1.0, true)];
        let report = calibration_report(&preds, 10);
        let total: usize = report.bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 3);
        assert_eq!(report.bins[0].count, 1);
        assert_eq!(report.bins[5].count, 1);
        assert_eq!(report.bins[9].count, 1); // 1.0 clamps to the last bin
    }

    #[test]
    fn empty_input_is_fine() {
        let report = calibration_report(&[], 5);
        assert_eq!(report.ece, 0.0);
        assert_eq!(report.bins.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = calibration_report(&[(0.5, true)], 0);
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn out_of_range_confidence_rejected() {
        let _ = calibration_report(&[(1.5, true)], 5);
    }
}

//! Confusion matrices.

use std::fmt;

/// A `k x k` confusion matrix; rows are gold classes, columns predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>,
    labels: Vec<String>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix with numeric class names.
    pub fn new(k: usize) -> Self {
        Self::with_labels((0..k).map(|c| c.to_string()).collect())
    }

    /// Creates an empty matrix with the given class names.
    pub fn with_labels(labels: Vec<String>) -> Self {
        let k = labels.len();
        Self { k, counts: vec![0; k * k], labels }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Class names.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Records one observation.
    ///
    /// # Panics
    /// Panics if either class is out of range.
    pub fn record(&mut self, gold: usize, pred: usize) {
        assert!(gold < self.k && pred < self.k, "class out of range");
        self.counts[gold * self.k + pred] += 1;
    }

    /// Count of (gold, pred) cells.
    pub fn count(&self, gold: usize, pred: usize) -> u64 {
        self.counts[gold * self.k + pred]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.k).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Precision of one class: TP / (TP + FP); 0 when nothing predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.count(class, class);
        let predicted: u64 = (0..self.k).map(|g| self.count(g, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of one class: TP / (TP + FN); 0 when the class never occurs.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.count(class, class);
        let actual: u64 = (0..self.k).map(|p| self.count(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 of one class.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean of per-class F1 over classes that occur.
    pub fn macro_f1(&self) -> f64 {
        let present: Vec<usize> =
            (0..self.k).filter(|&c| (0..self.k).any(|p| self.count(c, p) > 0)).collect();
        if present.is_empty() {
            return 0.0;
        }
        present.iter().map(|&c| self.f1(c)).sum::<f64>() / present.len() as f64
    }

    /// Merges another matrix into this one.
    ///
    /// # Panics
    /// Panics on class-count mismatch.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.k, other.k, "confusion matrix size mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.labels.iter().map(String::len).max().unwrap_or(4).max(6);
        write!(f, "{:>width$} |", "gold\\pred")?;
        for l in &self.labels {
            write!(f, " {l:>width$}")?;
        }
        writeln!(f)?;
        for g in 0..self.k {
            write!(f, "{:>width$} |", self.labels[g])?;
            for p in 0..self.k {
                write!(f, " {:>width$}", self.count(g, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(2);
        // gold 0: 8 right, 2 wrong; gold 1: 3 right, 1 wrong.
        for _ in 0..8 {
            m.record(0, 0);
        }
        for _ in 0..2 {
            m.record(0, 1);
        }
        for _ in 0..3 {
            m.record(1, 1);
        }
        m.record(1, 0);
        m
    }

    #[test]
    fn accuracy_and_counts() {
        let m = sample();
        assert_eq!(m.total(), 14);
        assert!((m.accuracy() - 11.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        let m = sample();
        assert!((m.precision(1) - 3.0 / 5.0).abs() < 1e-12);
        assert!((m.recall(1) - 3.0 / 4.0).abs() < 1e-12);
        let p = 0.6;
        let r = 0.75;
        assert!((m.f1(1) - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let m = ConfusionMatrix::new(3);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.macro_f1(), 0.0);
        assert_eq!(m.precision(0), 0.0);
    }

    #[test]
    fn macro_f1_skips_absent_classes() {
        let mut m = ConfusionMatrix::new(3);
        m.record(0, 0);
        m.record(1, 1);
        // Class 2 never occurs as gold: macro over classes 0 and 1 only.
        assert!((m.macro_f1() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total(), 28);
        assert_eq!(a.count(0, 0), 16);
    }

    #[test]
    fn display_contains_labels() {
        let mut m = ConfusionMatrix::with_labels(vec!["yes".into(), "no".into()]);
        m.record(0, 1);
        let text = m.to_string();
        assert!(text.contains("yes") && text.contains("no"));
    }
}

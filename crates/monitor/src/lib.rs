//! # overton-monitor
//!
//! Fine-grained quality monitoring (the paper's first key challenge):
//! confusion matrices, multiclass/bitvector metrics, per-tag and per-slice
//! quality reports with CSV (Pandas) export, version-over-version
//! regression detection, and the deterministic statistics kernel
//! ([`stats`]) the automated loop gates on.

#![warn(missing_docs)]

mod accum;
mod calibration;
mod confusion;
mod diagnose;
mod metrics;
mod report;
pub mod stats;

pub use accum::MetricsAccumulator;
pub use calibration::{calibration_report, CalibrationBin, CalibrationReport};
pub use confusion::ConfusionMatrix;
pub use diagnose::{diagnose_reports, SliceDiagnosis, SLICE_PREFIX};
pub use metrics::{
    binary_f1, bitvector_metrics, error_reduction_factor, error_reduction_percent,
    multiclass_metrics, relative_quality, Metrics,
};
pub use report::{csv_escape, regressions, QualityReport, Regression, ReportRow};

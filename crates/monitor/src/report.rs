//! Fine-grained quality reports: per-tag and per-slice metric tables.
//!
//! This is the artifact an Overton engineer actually looks at every day
//! (paper §2.2 "Monitoring"): aggregate quality plus one row per tag/slice,
//! exportable to CSV for Pandas.

use crate::metrics::Metrics;
use crate::stats::{Interval, DEFAULT_ALPHA};
use std::fmt;
use std::io::Write;

/// One row of a quality report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReportRow {
    /// Group name (`overall`, a tag, or `slice:<name>`).
    pub group: String,
    /// Metrics over the group.
    pub metrics: Metrics,
    /// 95% Clopper-Pearson bounds on `metrics.accuracy` (`None` on rows
    /// deserialized from reports written before bounds existed —
    /// recompute via [`Metrics::accuracy_interval`] if needed).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub accuracy_ci: Option<Interval>,
}

/// A per-group quality report for one task.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct QualityReport {
    /// Task the report describes.
    pub task: String,
    /// Rows, usually led by `overall`.
    pub rows: Vec<ReportRow>,
}

impl QualityReport {
    /// Creates an empty report for a task.
    pub fn new(task: &str) -> Self {
        Self { task: task.to_string(), rows: Vec::new() }
    }

    /// Appends a group row, computing 95% Clopper-Pearson bounds on its
    /// accuracy from the group's sample size.
    pub fn push(&mut self, group: &str, metrics: Metrics) {
        let accuracy_ci = Some(metrics.accuracy_interval(DEFAULT_ALPHA));
        self.rows.push(ReportRow { group: group.to_string(), metrics, accuracy_ci });
    }

    /// Looks up a group's metrics.
    pub fn group(&self, name: &str) -> Option<&Metrics> {
        self.rows.iter().find(|r| r.group == name).map(|r| &r.metrics)
    }

    /// The `overall` row, if present.
    pub fn overall(&self) -> Option<&Metrics> {
        self.group("overall")
    }

    /// Writes the report as CSV
    /// (`task,group,count,accuracy,macro_f1,micro_f1,acc_lower,acc_upper`;
    /// the trailing columns are the row's 95% Clopper-Pearson accuracy
    /// bounds, recomputed when a legacy row lacks them). Task and group
    /// names are CSV-escaped: slice and tag names are free-form and can
    /// contain commas or quotes.
    pub fn write_csv(&self, mut w: impl Write) -> std::io::Result<()> {
        writeln!(w, "task,group,count,accuracy,macro_f1,micro_f1,acc_lower,acc_upper")?;
        let task = csv_escape(&self.task);
        for row in &self.rows {
            let ci =
                row.accuracy_ci.unwrap_or_else(|| row.metrics.accuracy_interval(DEFAULT_ALPHA));
            writeln!(
                w,
                "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6}",
                task,
                csv_escape(&row.group),
                row.metrics.count,
                row.metrics.accuracy,
                row.metrics.macro_f1,
                row.metrics.micro_f1,
                ci.lower,
                ci.upper
            )?;
        }
        Ok(())
    }
}

/// RFC 4180 field escaping: quotes a field containing commas, quotes or
/// newlines, doubling inner quotes. This is the one CSV-serialization
/// helper every report-shaped export in the workspace shares — quality
/// reports here, telemetry snapshots in `overton-serving`, windowed
/// metric logs in `overton-obs` — so slice and tag names (free-form, can
/// contain anything) escape identically everywhere. Mirrors `csv_escape`
/// in `overton-store`'s `tags.rs`; duplicated rather than imported so
/// this crate stays independent of the data layer.
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl fmt::Display for QualityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.rows.iter().map(|r| r.group.len()).max().unwrap_or(7).max(7);
        writeln!(f, "task: {}", self.task)?;
        writeln!(
            f,
            "{:>width$}  {:>6}  {:>8}  {:>8}  {:>8}  {:>16}",
            "group", "n", "acc", "maF1", "miF1", "acc 95% CI"
        )?;
        for row in &self.rows {
            let ci =
                row.accuracy_ci.unwrap_or_else(|| row.metrics.accuracy_interval(DEFAULT_ALPHA));
            writeln!(
                f,
                "{:>width$}  {:>6}  {:>8.4}  {:>8.4}  {:>8.4}  {:>16}",
                row.group,
                row.metrics.count,
                row.metrics.accuracy,
                row.metrics.macro_f1,
                row.metrics.micro_f1,
                ci.to_string()
            )?;
        }
        Ok(())
    }
}

/// Detects quality regressions between two reports of the same task:
/// groups whose accuracy dropped by more than `threshold`, plus groups
/// present in `before` but missing from `after` entirely — a vanished
/// slice is the worst regression, so it is always reported regardless of
/// the threshold (with `vanished` set and an `after` accuracy of 0).
pub fn regressions(
    before: &QualityReport,
    after: &QualityReport,
    threshold: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for row in &before.rows {
        match after.group(&row.group) {
            Some(new) => {
                let drop = row.metrics.accuracy - new.accuracy;
                if drop > threshold {
                    out.push(Regression {
                        group: row.group.clone(),
                        before: row.metrics.accuracy,
                        after: new.accuracy,
                        vanished: false,
                    });
                }
            }
            None => out.push(Regression {
                group: row.group.clone(),
                before: row.metrics.accuracy,
                after: 0.0,
                vanished: true,
            }),
        }
    }
    out
}

/// A detected per-group quality regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Affected group.
    pub group: String,
    /// Accuracy before.
    pub before: f64,
    /// Accuracy after (0 when the group vanished).
    pub after: f64,
    /// The group has no row at all in the `after` report.
    pub vanished: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(acc: f64, n: usize) -> Metrics {
        Metrics { count: n, accuracy: acc, macro_f1: acc, micro_f1: acc }
    }

    fn report(pairs: &[(&str, f64)]) -> QualityReport {
        let mut r = QualityReport::new("Intent");
        for (g, a) in pairs {
            r.push(g, metrics(*a, 100));
        }
        r
    }

    #[test]
    fn lookup_and_overall() {
        let r = report(&[("overall", 0.9), ("slice:hard", 0.6)]);
        assert_eq!(r.overall().unwrap().accuracy, 0.9);
        assert_eq!(r.group("slice:hard").unwrap().accuracy, 0.6);
        assert!(r.group("nope").is_none());
    }

    #[test]
    fn csv_export_shape() {
        let r = report(&[("overall", 0.9)]);
        let mut buf = Vec::new();
        r.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("task,group"));
        assert!(lines[0].ends_with("acc_lower,acc_upper"));
        assert!(lines[1].starts_with("Intent,overall,100,0.9"));
        // The CI columns ride at the end of every row.
        assert_eq!(lines[1].split(',').count(), 8);
    }

    #[test]
    fn display_renders_rows() {
        let r = report(&[("overall", 0.95), ("slice:rare", 0.5)]);
        let text = r.to_string();
        assert!(text.contains("overall"));
        assert!(text.contains("slice:rare"));
        assert!(text.contains("0.5000"));
    }

    #[test]
    fn regression_detection() {
        let before = report(&[("overall", 0.9), ("slice:hard", 0.8), ("slice:ok", 0.7)]);
        let after = report(&[("overall", 0.91), ("slice:hard", 0.6), ("slice:ok", 0.69)]);
        let regs = regressions(&before, &after, 0.05);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].group, "slice:hard");
        assert!((regs[0].before - 0.8).abs() < 1e-12);
    }

    #[test]
    fn vanished_groups_are_always_reported() {
        let before = report(&[("overall", 0.9), ("slice:gone", 0.9)]);
        let after = report(&[("overall", 0.9)]);
        // Huge threshold: an accuracy drop this small would never fire, but
        // a vanished group is reported unconditionally.
        let regs = regressions(&before, &after, 10.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].group, "slice:gone");
        assert!(regs[0].vanished);
        assert_eq!(regs[0].after, 0.0);
        assert!((regs[0].before - 0.9).abs() < 1e-12);
    }

    #[test]
    fn surviving_groups_are_not_marked_vanished() {
        let before = report(&[("overall", 0.9)]);
        let after = report(&[("overall", 0.5)]);
        let regs = regressions(&before, &after, 0.1);
        assert_eq!(regs.len(), 1);
        assert!(!regs[0].vanished);
    }

    #[test]
    fn csv_escapes_task_and_group_fields() {
        let mut r = QualityReport::new("Intent,v2");
        r.push("slice:hard, rare \"tail\"", metrics(0.5, 10));
        let mut buf = Vec::new();
        r.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // Both free-form fields are quoted with inner quotes doubled, so
        // the row parses back into exactly 8 fields under RFC 4180.
        let ci = metrics(0.5, 10).accuracy_interval(DEFAULT_ALPHA);
        assert_eq!(
            lines[1],
            format!(
                "\"Intent,v2\",\"slice:hard, rare \"\"tail\"\"\",10,0.500000,0.500000,0.500000,{:.6},{:.6}",
                ci.lower, ci.upper
            )
        );
    }

    #[test]
    fn rows_carry_accuracy_bounds() {
        let r = report(&[("overall", 0.9)]);
        let ci = r.rows[0].accuracy_ci.unwrap();
        assert!(ci.lower < 0.9 && 0.9 < ci.upper);
        assert_eq!(ci, metrics(0.9, 100).accuracy_interval(DEFAULT_ALPHA));
        assert!(r.to_string().contains(&ci.to_string()));
    }

    #[test]
    fn legacy_rows_without_bounds_still_deserialize() {
        // A report serialized before accuracy bounds existed has no
        // `accuracy_ci` key; `#[serde(default)]` must accept it.
        let json = "{\"task\":\"Intent\",\"rows\":[{\"group\":\"overall\",\
                    \"metrics\":{\"count\":10,\"accuracy\":0.5,\
                    \"macro_f1\":0.5,\"micro_f1\":0.5}}]}";
        let r: QualityReport = serde_json::from_str(json).unwrap();
        assert_eq!(r.rows[0].accuracy_ci, None);
        // CSV export recomputes the bounds on the fly.
        let mut buf = Vec::new();
        r.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let ci = metrics(0.5, 10).accuracy_interval(DEFAULT_ALPHA);
        assert!(text
            .lines()
            .nth(1)
            .unwrap()
            .ends_with(&format!("{:.6},{:.6}", ci.lower, ci.upper)));
    }
}

//! The shared slice-diagnosis kernel: quality reports → ranked worklist.
//!
//! Every monitoring surface in the system — a run's test evaluation, live
//! canary scoring, and the observability subsystem's windowed gold
//! accuracy — produces per-task [`QualityReport`]s. This module turns any
//! such set of reports into the one artifact an engineer (or the
//! automated retrain watchdog) acts on: `(task, slice)` pairs ranked by
//! accuracy ascending. The ranking is **fully deterministic**, including
//! under accuracy ties (stable secondary sort on task then slice name),
//! so automated retrains triggered from a worklist are reproducible.

use crate::metrics::Metrics;
use crate::report::QualityReport;
use std::collections::BTreeMap;

/// The canonical prefix marking slice tags in report group names. Mirrors
/// `overton-store`'s `SLICE_PREFIX`; duplicated (like `csv_escape`) so
/// this crate stays dependency-free.
pub const SLICE_PREFIX: &str = "slice:";

/// A slice that needs attention: the monitoring output an engineer (or
/// the obs watchdog) triages.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceDiagnosis {
    /// Task whose quality is low.
    pub task: String,
    /// Slice name (without the `slice:` prefix).
    pub slice: String,
    /// Current metrics on the slice.
    pub metrics: Metrics,
}

/// Ranks every `slice:` row of the given per-task quality reports by
/// accuracy ascending, skipping slices with fewer than `min_count` scored
/// examples (too noisy to act on). Ties on accuracy break on task name,
/// then slice name, so the worklist order — and anything automation does
/// with it — is reproducible run to run.
pub fn diagnose_reports(
    reports: &BTreeMap<String, QualityReport>,
    min_count: usize,
) -> Vec<SliceDiagnosis> {
    let mut out = Vec::new();
    for (task, report) in reports {
        for row in &report.rows {
            let Some(slice) = row.group.strip_prefix(SLICE_PREFIX) else {
                continue;
            };
            if row.metrics.count < min_count {
                continue;
            }
            out.push(SliceDiagnosis {
                task: task.clone(),
                slice: slice.to_string(),
                metrics: row.metrics,
            });
        }
    }
    out.sort_by(|a, b| {
        a.metrics
            .accuracy
            .total_cmp(&b.metrics.accuracy)
            .then_with(|| a.task.cmp(&b.task))
            .then_with(|| a.slice.cmp(&b.slice))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(acc: f64, n: usize) -> Metrics {
        Metrics { count: n, accuracy: acc, macro_f1: acc, micro_f1: acc }
    }

    fn reports(rows: &[(&str, &str, f64, usize)]) -> BTreeMap<String, QualityReport> {
        let mut out: BTreeMap<String, QualityReport> = BTreeMap::new();
        for &(task, group, acc, n) in rows {
            out.entry(task.to_string())
                .or_insert_with(|| QualityReport::new(task))
                .push(group, metrics(acc, n));
        }
        out
    }

    #[test]
    fn ranks_ascending_and_skips_small_and_nonslice_groups() {
        let reports = reports(&[
            ("Intent", "overall", 0.2, 100),
            ("Intent", "slice:hard", 0.5, 50),
            ("Intent", "slice:tiny", 0.1, 2),
            ("Intent", "slice:easy", 0.9, 50),
        ]);
        let out = diagnose_reports(&reports, 10);
        let names: Vec<&str> = out.iter().map(|d| d.slice.as_str()).collect();
        // `overall` (not a slice) and the under-count slice are skipped;
        // the rest rank ascending.
        assert_eq!(names, ["hard", "easy"]);
    }

    #[test]
    fn ties_order_deterministically_by_task_then_slice() {
        // Four diagnoses with identical accuracy: the order must be the
        // stable (task, slice) lexicographic order, every time.
        let reports = reports(&[
            ("B", "slice:x", 0.5, 20),
            ("B", "slice:a", 0.5, 20),
            ("A", "slice:z", 0.5, 20),
            ("A", "slice:m", 0.5, 20),
        ]);
        let out = diagnose_reports(&reports, 10);
        let keys: Vec<(&str, &str)> =
            out.iter().map(|d| (d.task.as_str(), d.slice.as_str())).collect();
        assert_eq!(keys, [("A", "m"), ("A", "z"), ("B", "a"), ("B", "x")]);
        // And a strictly worse slice still sorts ahead of the tie group.
        let mut with_worse = reports.clone();
        with_worse.get_mut("B").unwrap().push("slice:worst", metrics(0.1, 20));
        let out = diagnose_reports(&with_worse, 10);
        assert_eq!((out[0].task.as_str(), out[0].slice.as_str()), ("B", "worst"));
    }
}

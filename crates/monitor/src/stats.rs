//! Deterministic statistics kernel for the monitoring loop.
//!
//! Every automated decision Overton makes — firing an alert, promoting a
//! retrained model — is ultimately a comparison of two noisy proportions,
//! and at production traffic volumes a point estimate is not evidence.
//! This module supplies the primitives the rest of the workspace gates
//! on: exact Clopper-Pearson binomial intervals, seeded percentile
//! bootstrap intervals for non-binomial metrics, one- and two-sided
//! two-proportion significance tests, and the ease.ml/meter-style
//! test-set reuse budget ledger ([`MeterLedger`]) that accounts for the
//! statistical cost of re-evaluating against the same held-out split.
//!
//! Everything here is bit-deterministic: no system entropy, no wall
//! clock, no platform-dependent libm calls on the result path (erf and
//! the incomplete beta are computed in-module), so replaying an obslog or
//! re-running an evaluation reproduces identical p-values and bounds.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Default significance level used across the workspace (95% intervals,
/// promote/alert at p < 0.05 unless a rule says otherwise).
pub const DEFAULT_ALPHA: f64 = 0.05;

/// A closed confidence interval `[lower, upper]` on a scalar metric.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Interval {
    /// Lower confidence bound.
    pub lower: f64,
    /// Upper confidence bound.
    pub upper: f64,
}

impl Interval {
    /// Interval width, `upper - lower`.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether `x` lies within the closed interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lower <= x && x <= self.upper
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.4}, {:.4}]", self.lower, self.upper)
    }
}

// ---------------------------------------------------------------------------
// Special functions (deterministic, in-module — no libm on the result path).
// ---------------------------------------------------------------------------

/// Lanczos g=7 coefficients for `ln_gamma`.
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function (Lanczos approximation, g=7).
/// Only called with positive arguments here.
fn ln_gamma(x: f64) -> f64 {
    if x < 0.5 {
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = LANCZOS[0];
        let t = x + 7.5;
        for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Continued-fraction core of the regularized incomplete beta (modified
/// Lentz's method, Numerical Recipes `betacf`).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const EPS: f64 = 3.0e-14;
    const FPMIN: f64 = 1.0e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=200 {
        let mf = m as f64;
        let m2 = 2.0 * mf;
        let aa = mf * (b - mf) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// Quantile of the Beta(a, b) distribution by bisection on [`beta_inc`].
/// Bisection (100 halvings, past f64 resolution) rather than Newton: a
/// fixed iteration count is branch-free across platforms, so results are
/// bit-identical everywhere.
fn beta_quantile(p: f64, a: f64, b: f64) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if beta_inc(a, b, mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Error function via Abramowitz & Stegun 7.1.26 (|error| ≤ 1.5e-7 —
/// ample for p-values, and deterministic across platforms).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = ((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
        * t
        + 0.254_829_592;
    sign * (1.0 - poly * t * (-x * x).exp())
}

/// Standard normal CDF `Φ(z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

// ---------------------------------------------------------------------------
// Interval estimators.
// ---------------------------------------------------------------------------

/// Exact Clopper-Pearson `1 - alpha` confidence interval for a binomial
/// proportion with `successes` out of `trials`.
///
/// Edge behavior: `trials == 0` is total ignorance, `[0, 1]`; the lower
/// bound is exactly 0 when `successes == 0` and the upper bound exactly 1
/// when `successes == trials`. `successes` is clamped to `trials`.
pub fn clopper_pearson(successes: u64, trials: u64, alpha: f64) -> Interval {
    if trials == 0 {
        return Interval { lower: 0.0, upper: 1.0 };
    }
    let successes = successes.min(trials);
    let k = successes as f64;
    let n = trials as f64;
    let alpha = alpha.clamp(1e-12, 1.0 - 1e-12);
    let lower = if successes == 0 { 0.0 } else { beta_quantile(alpha / 2.0, k, n - k + 1.0) };
    let upper =
        if successes == trials { 1.0 } else { beta_quantile(1.0 - alpha / 2.0, k + 1.0, n - k) };
    Interval { lower, upper }
}

/// Seeded percentile-bootstrap `1 - alpha` interval on the mean of
/// `values` — for metrics that are not success counts (macro-F1, mean
/// task accuracy, latency summaries). The resampling stream is fully
/// determined by `seed`, so the same inputs always yield bit-identical
/// bounds. Empty input (or zero resamples) collapses to `[0, 0]`.
pub fn bootstrap_mean_interval(
    values: &[f64],
    alpha: f64,
    resamples: usize,
    seed: u64,
) -> Interval {
    if values.is_empty() || resamples == 0 {
        return Interval { lower: 0.0, upper: 0.0 };
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..values.len() {
            sum += values[rng.gen_range(0..values.len())];
        }
        means.push(sum / values.len() as f64);
    }
    means.sort_by(f64::total_cmp);
    let alpha = alpha.clamp(0.0, 1.0);
    let last = resamples - 1;
    let lo = ((alpha / 2.0) * last as f64).round() as usize;
    let hi = (((1.0 - alpha / 2.0) * last as f64).round() as usize).clamp(lo, last);
    Interval { lower: means[lo], upper: means[hi] }
}

// ---------------------------------------------------------------------------
// Significance tests.
// ---------------------------------------------------------------------------

/// Pooled two-proportion z statistic; `None` when either sample is empty
/// or the pooled variance is zero (both proportions at the same extreme —
/// the data cannot distinguish them).
fn pooled_z(k1: u64, n1: u64, k2: u64, n2: u64) -> Option<f64> {
    if n1 == 0 || n2 == 0 {
        return None;
    }
    let (k1, n1f) = (k1.min(n1) as f64, n1 as f64);
    let (k2, n2f) = (k2.min(n2) as f64, n2 as f64);
    let p1 = k1 / n1f;
    let p2 = k2 / n2f;
    let pool = (k1 + k2) / (n1f + n2f);
    let se = (pool * (1.0 - pool) * (1.0 / n1f + 1.0 / n2f)).sqrt();
    if se == 0.0 || !se.is_finite() {
        return None;
    }
    Some((p1 - p2) / se)
}

/// Two-sided pooled two-proportion z-test: p-value for the hypothesis
/// that `k1/n1` and `k2/n2` are draws from the same proportion.
/// Degenerate inputs (an empty sample, or zero pooled variance) return
/// 1.0 — no evidence either way.
pub fn two_proportion_p_value(k1: u64, n1: u64, k2: u64, n2: u64) -> f64 {
    match pooled_z(k1, n1, k2, n2) {
        None => 1.0,
        Some(z) => (2.0 * (1.0 - normal_cdf(z.abs()))).clamp(0.0, 1.0),
    }
}

/// One-sided pooled two-proportion z-test: p-value for `k1/n1` being
/// *greater* than `k2/n2`. This is the direction both gates care about —
/// a slice's live traffic share significantly above its baseline share,
/// a retrained model's slice accuracy significantly above the incumbent's.
/// Degenerate inputs return 1.0.
pub fn two_proportion_p_value_greater(k1: u64, n1: u64, k2: u64, n2: u64) -> f64 {
    match pooled_z(k1, n1, k2, n2) {
        None => 1.0,
        Some(z) => (1.0 - normal_cdf(z)).clamp(0.0, 1.0),
    }
}

// ---------------------------------------------------------------------------
// Summaries and promotion evidence.
// ---------------------------------------------------------------------------

/// A binomial proportion with its exact confidence bounds — the unit of
/// evidence the promotion gate records (`successes`/`trials` is the
/// effective sample size a reader needs to judge the bounds).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProportionSummary {
    /// Number of successes (e.g. correct predictions on the slice).
    pub successes: u64,
    /// Number of trials (scored examples).
    pub trials: u64,
    /// Clopper-Pearson lower bound.
    pub lower: f64,
    /// Clopper-Pearson upper bound.
    pub upper: f64,
}

impl ProportionSummary {
    /// Summarizes `successes`/`trials` with `1 - alpha` Clopper-Pearson
    /// bounds.
    pub fn new(successes: u64, trials: u64, alpha: f64) -> Self {
        let ci = clopper_pearson(successes, trials, alpha);
        Self { successes: successes.min(trials), trials, lower: ci.lower, upper: ci.upper }
    }

    /// Point estimate `successes / trials` (0 when `trials == 0`).
    pub fn point(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The bounds as an [`Interval`].
    pub fn interval(&self) -> Interval {
        Interval { lower: self.lower, upper: self.upper }
    }
}

impl fmt::Display for ProportionSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ({}/{}) {}", self.point(), self.successes, self.trials, self.interval())
    }
}

/// The statistical record behind a promote/hold decision: before and
/// after per-slice accuracy summaries, the one-sided p-value of the
/// improvement, the significance level it was judged at, and the test-set
/// reuse budget remaining after the evaluation that produced it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PromotionEvidence {
    /// Task whose slice accuracy was compared.
    pub task: String,
    /// Slice the retrain targeted.
    pub slice: String,
    /// Incumbent model's slice accuracy with bounds.
    pub before: ProportionSummary,
    /// Candidate model's slice accuracy with bounds.
    pub after: ProportionSummary,
    /// One-sided p-value that `after` beats `before`.
    pub p_value: f64,
    /// Significance level the decision used.
    pub alpha: f64,
    /// Whether the win is statistically significant — the promote gate.
    pub significant: bool,
    /// Test-set reuse budget remaining after the candidate's evaluation
    /// (absent for rootless runs with no ledger).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub meter_remaining: Option<u64>,
}

impl fmt::Display for PromotionEvidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: {} -> {}, p={:.4} vs alpha={} -> {}",
            self.task,
            self.slice,
            self.before,
            self.after,
            self.p_value,
            self.alpha,
            if self.significant { "promote" } else { "hold" }
        )?;
        if let Some(rem) = self.meter_remaining {
            write!(f, " (meter remaining: {rem})")?;
        }
        Ok(())
    }
}

/// Judges a candidate's per-slice win over the incumbent: one-sided
/// two-proportion test of `after` > `before`, significant only when
/// `p < alpha` *and* the point estimate actually improved.
pub fn evaluate_promotion(
    task: &str,
    slice: &str,
    before: (u64, u64),
    after: (u64, u64),
    alpha: f64,
) -> PromotionEvidence {
    let p_value = two_proportion_p_value_greater(after.0, after.1, before.0, before.1);
    let before = ProportionSummary::new(before.0, before.1, alpha);
    let after = ProportionSummary::new(after.0, after.1, alpha);
    let significant = p_value < alpha && after.point() > before.point();
    PromotionEvidence {
        task: task.to_string(),
        slice: slice.to_string(),
        before,
        after,
        p_value,
        alpha,
        significant,
        meter_remaining: None,
    }
}

// ---------------------------------------------------------------------------
// Test-set reuse budget (ease.ml/meter).
// ---------------------------------------------------------------------------

/// Default test-set reuse budget granted to a fresh project: the number
/// of adaptive holdout evaluations before the split should be considered
/// burned (ease.ml/meter's budget, sized for the watchdog's retrain
/// cadence rather than n^2 pessimism).
pub const DEFAULT_METER_BUDGET: u64 = 40;

/// File name of the ledger under the project root.
pub const METER_FILE: &str = "meter.json";

/// One recorded holdout evaluation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MeterDebit {
    /// Run that spent the evaluation.
    pub run_id: String,
    /// Units spent (1 per holdout evaluation).
    pub amount: u64,
}

/// The per-project test-set reuse ledger, persisted as `meter.json` under
/// the project root. Every holdout evaluation debits it; the remaining
/// balance ships with promotion evidence and the `/metrics` exposition so
/// an operator can see how much statistical validity the split has left.
///
/// On-disk format: `{"initial": N, "spent": M, "debits": [{"run_id":
/// "run-0001", "amount": 1}, ...]}`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MeterLedger {
    initial: u64,
    spent: u64,
    #[serde(default)]
    debits: Vec<MeterDebit>,
    #[serde(skip)]
    path: Option<PathBuf>,
}

impl MeterLedger {
    /// A fresh in-memory ledger with the given budget (not persisted
    /// until attached to a path via [`MeterLedger::open_or_create`]).
    pub fn with_budget(initial: u64) -> Self {
        Self { initial, spent: 0, debits: Vec::new(), path: None }
    }

    /// Opens `<root>/meter.json`, creating (and persisting) a fresh
    /// ledger with [`DEFAULT_METER_BUDGET`] if none exists. A present but
    /// unparsable ledger is a hard error — silently resetting a spent
    /// budget would defeat the meter.
    pub fn open_or_create(root: &Path) -> io::Result<Self> {
        let path = root.join(METER_FILE);
        if path.exists() {
            return Self::load(&path);
        }
        let mut ledger = Self::with_budget(DEFAULT_METER_BUDGET);
        ledger.path = Some(path);
        ledger.persist()?;
        Ok(ledger)
    }

    /// Loads an existing ledger file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let mut ledger: MeterLedger = serde_json::from_str(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: corrupt meter ledger: {e}", path.display()),
            )
        })?;
        ledger.path = Some(path.to_path_buf());
        Ok(ledger)
    }

    /// Records `amount` holdout evaluations by `run_id`, persists the
    /// ledger if it has a path, and returns the remaining budget.
    /// Spending past zero is recorded (the overrun is visible evidence),
    /// but `remaining` saturates at 0.
    pub fn debit(&mut self, run_id: &str, amount: u64) -> io::Result<u64> {
        self.spent += amount;
        self.debits.push(MeterDebit { run_id: run_id.to_string(), amount });
        self.persist()?;
        Ok(self.remaining())
    }

    /// Budget granted at creation.
    pub fn initial(&self) -> u64 {
        self.initial
    }

    /// Units spent so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Budget remaining (saturating at 0).
    pub fn remaining(&self) -> u64 {
        self.initial.saturating_sub(self.spent)
    }

    /// Whether the budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.spent >= self.initial
    }

    /// The recorded per-run debits, oldest first.
    pub fn debits(&self) -> &[MeterDebit] {
        &self.debits
    }

    /// Where the ledger persists, when attached to a file.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    fn persist(&self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        // Write-then-rename so a crash mid-write can't half-overwrite a
        // valid ledger.
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "overton-stats-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.959_964) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.959_964) - 0.025).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn beta_inc_matches_closed_forms() {
        // I_x(1, 1) = x (uniform CDF).
        for &x in &[0.1, 0.5, 0.9] {
            assert!((beta_inc(1.0, 1.0, x) - x).abs() < 1e-10);
        }
        // I_x(1, b) = 1 - (1-x)^b.
        let x = 0.3;
        let b = 4.0;
        assert!((beta_inc(1.0, b, x) - (1.0 - (1.0 - x).powf(b))).abs() < 1e-10);
        // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
        assert!((beta_inc(2.5, 3.5, 0.4) - (1.0 - beta_inc(3.5, 2.5, 0.6))).abs() < 1e-10);
    }

    #[test]
    fn clopper_pearson_known_value() {
        // 5/10 at 95%: the textbook Clopper-Pearson interval is
        // (0.1871, 0.8129).
        let ci = clopper_pearson(5, 10, 0.05);
        assert!((ci.lower - 0.1871).abs() < 5e-4, "lower {}", ci.lower);
        assert!((ci.upper - 0.8129).abs() < 5e-4, "upper {}", ci.upper);
    }

    #[test]
    fn clopper_pearson_edge_cases() {
        // n = 0: total ignorance.
        assert_eq!(clopper_pearson(0, 0, 0.05), Interval { lower: 0.0, upper: 1.0 });
        // k = 0: lower bound exactly 0, upper = 1 - (alpha/2)^(1/n).
        let ci = clopper_pearson(0, 20, 0.05);
        assert_eq!(ci.lower, 0.0);
        assert!((ci.upper - (1.0 - 0.025_f64.powf(1.0 / 20.0))).abs() < 1e-9);
        // k = n: upper bound exactly 1, symmetric with the k = 0 case.
        let ci_full = clopper_pearson(20, 20, 0.05);
        assert_eq!(ci_full.upper, 1.0);
        assert!((ci_full.lower - (1.0 - ci.upper)).abs() < 1e-9);
        // n = 1: a single trial tells almost nothing.
        let one = clopper_pearson(1, 1, 0.05);
        assert_eq!(one.upper, 1.0);
        assert!((one.lower - 0.025).abs() < 1e-9);
        assert!(one.width() > 0.9);
        // k > n clamps.
        assert_eq!(clopper_pearson(7, 5, 0.05).upper, 1.0);
    }

    #[test]
    fn clopper_pearson_is_bit_deterministic() {
        for (k, n) in [(0u64, 0u64), (3, 17), (250, 1000), (999, 1000)] {
            let a = clopper_pearson(k, n, 0.05);
            let b = clopper_pearson(k, n, 0.05);
            assert_eq!(a.lower.to_bits(), b.lower.to_bits());
            assert_eq!(a.upper.to_bits(), b.upper.to_bits());
        }
    }

    #[test]
    fn two_proportion_tests_behave() {
        // Identical proportions: no evidence.
        assert!(two_proportion_p_value(50, 100, 50, 100) > 0.9);
        // A big separation at decent n is decisive.
        assert!(two_proportion_p_value(90, 100, 50, 100) < 1e-6);
        // One-sided: significant in the winning direction only.
        assert!(two_proportion_p_value_greater(90, 100, 50, 100) < 1e-6);
        assert!(two_proportion_p_value_greater(50, 100, 90, 100) > 0.999);
        // The same delta at tiny n is not significant.
        assert!(two_proportion_p_value_greater(5, 6, 3, 6) > 0.05);
        // Degenerate: empty samples and zero pooled variance.
        assert_eq!(two_proportion_p_value(0, 0, 5, 10), 1.0);
        assert_eq!(two_proportion_p_value(5, 10, 0, 0), 1.0);
        assert_eq!(two_proportion_p_value(10, 10, 10, 10), 1.0);
        assert_eq!(two_proportion_p_value(0, 10, 0, 10), 1.0);
        // Known value: 60/100 vs 45/100 pooled z ≈ 2.13, two-sided
        // p ≈ 0.0334.
        let p = two_proportion_p_value(60, 100, 45, 100);
        assert!((p - 0.0334).abs() < 2e-3, "p {p}");
    }

    #[test]
    fn bootstrap_is_seeded_and_bounded() {
        let values: Vec<f64> = (0..40).map(|i| (i % 7) as f64 / 6.0).collect();
        let a = bootstrap_mean_interval(&values, 0.05, 500, 42);
        let b = bootstrap_mean_interval(&values, 0.05, 500, 42);
        assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());
        let (lo, hi) = values.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        assert!(a.lower >= lo && a.upper <= hi);
        assert!(a.lower <= a.upper);
        // A different seed resamples differently.
        let c = bootstrap_mean_interval(&values, 0.05, 500, 43);
        assert!(c != a || values.iter().all(|&v| v == values[0]));
        // Degenerate inputs collapse.
        assert_eq!(bootstrap_mean_interval(&[], 0.05, 500, 1), Interval::default());
        assert_eq!(bootstrap_mean_interval(&[1.0], 0.05, 0, 1), Interval::default());
        let constant = bootstrap_mean_interval(&[0.25; 8], 0.05, 100, 7);
        assert_eq!(constant, Interval { lower: 0.25, upper: 0.25 });
    }

    #[test]
    fn promotion_gate_requires_significance_and_direction() {
        // Decisive win at decent n promotes.
        let win = evaluate_promotion("Intent", "hard", (20, 40), (36, 40), 0.05);
        assert!(win.significant);
        assert!(win.p_value < 0.05);
        assert!(win.after.point() > win.before.point());
        // The same ratio at tiny n holds.
        let tiny = evaluate_promotion("Intent", "hard", (2, 4), (4, 4), 0.05);
        assert!(!tiny.significant);
        // No movement holds (one-sided p at z = 0 is exactly one half).
        let flat = evaluate_promotion("Intent", "hard", (30, 40), (30, 40), 0.05);
        assert!(!flat.significant);
        assert!((flat.p_value - 0.5).abs() < 1e-9);
        // A regression holds even if someone passes a silly alpha.
        let worse = evaluate_promotion("Intent", "hard", (36, 40), (20, 40), 0.999);
        assert!(!worse.significant);
        // Display carries the decision.
        assert!(win.to_string().contains("promote"));
        assert!(flat.to_string().contains("hold"));
    }

    #[test]
    fn meter_ledger_persists_debits() {
        let root = temp_dir("ledger");
        let mut ledger = MeterLedger::open_or_create(&root).unwrap();
        assert_eq!(ledger.initial(), DEFAULT_METER_BUDGET);
        assert_eq!(ledger.remaining(), DEFAULT_METER_BUDGET);
        assert_eq!(ledger.debit("run-0001", 1).unwrap(), DEFAULT_METER_BUDGET - 1);
        assert_eq!(ledger.debit("run-0002", 1).unwrap(), DEFAULT_METER_BUDGET - 2);
        // Reopen: the file remembers.
        let reopened = MeterLedger::open_or_create(&root).unwrap();
        assert_eq!(reopened.spent(), 2);
        assert_eq!(reopened.remaining(), DEFAULT_METER_BUDGET - 2);
        assert_eq!(reopened.debits().len(), 2);
        assert_eq!(reopened.debits()[0].run_id, "run-0001");
        assert!(!reopened.exhausted());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn meter_ledger_saturates_and_reports_exhaustion() {
        let mut ledger = MeterLedger::with_budget(2);
        assert_eq!(ledger.debit("a", 1).unwrap(), 1);
        assert_eq!(ledger.debit("b", 1).unwrap(), 0);
        assert!(ledger.exhausted());
        // Overrun is recorded but remaining saturates.
        assert_eq!(ledger.debit("c", 1).unwrap(), 0);
        assert_eq!(ledger.spent(), 3);
    }

    #[test]
    fn meter_ledger_rejects_corruption() {
        let root = temp_dir("corrupt");
        std::fs::write(root.join(METER_FILE), "{not json").unwrap();
        let err = MeterLedger::open_or_create(&root).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&root).unwrap();
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn cp_interval_is_sane(k in 0u64..500, extra in 0u64..500) {
            let n = k + extra;
            let ci = clopper_pearson(k, n, 0.05);
            // Bounds stay in [0, 1] and ordered.
            prop_assert!((0.0..=1.0).contains(&ci.lower));
            prop_assert!((0.0..=1.0).contains(&ci.upper));
            prop_assert!(ci.lower <= ci.upper);
            // The interval contains the point estimate.
            if n > 0 {
                prop_assert!(ci.contains(k as f64 / n as f64));
            }
        }

        #[test]
        fn cp_interval_shrinks_with_n(k in 1u64..200, extra in 1u64..200, scale in 2u64..5) {
            // Same proportion, `scale`x the evidence: the interval must
            // narrow (strictly, away from the degenerate n = 0 case).
            let n = k + extra;
            let small = clopper_pearson(k, n, 0.05);
            let big = clopper_pearson(k * scale, n * scale, 0.05);
            prop_assert!(
                big.width() < small.width(),
                "width {} !< {} at k={k} n={n} scale={scale}",
                big.width(),
                small.width()
            );
        }

        #[test]
        fn p_values_stay_in_unit_range(
            k1 in 0u64..300, e1 in 0u64..300, k2 in 0u64..300, e2 in 0u64..300
        ) {
            let (n1, n2) = (k1 + e1, k2 + e2);
            for p in [
                two_proportion_p_value(k1, n1, k2, n2),
                two_proportion_p_value_greater(k1, n1, k2, n2),
            ] {
                prop_assert!((0.0..=1.0).contains(&p), "p {p}");
                prop_assert!(p.is_finite());
            }
        }

        #[test]
        fn bootstrap_stays_within_data_range(
            values in prop::collection::vec(0.0f64..1.0, 1..40),
            seed in any::<u64>()
        ) {
            let ci = bootstrap_mean_interval(&values, 0.05, 64, seed);
            let lo = values.iter().cloned().fold(f64::MAX, f64::min);
            let hi = values.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(ci.lower >= lo - 1e-12 && ci.upper <= hi + 1e-12);
            prop_assert!(ci.lower <= ci.upper);
        }
    }
}

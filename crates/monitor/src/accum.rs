//! Mergeable metric accumulators: the additive tallies behind [`Metrics`].
//!
//! Shard-parallel evaluation scores each shard into its own accumulators,
//! merges them in shard order, and finalizes once — producing exactly the
//! metrics a single sequential pass would, because everything tallied here
//! (confusion counts, bit confusions, correctness counts) is additive.

use crate::confusion::ConfusionMatrix;
use crate::metrics::Metrics;

/// An additive partial of one group's metrics. Variants correspond to the
/// three scoring shapes the evaluator produces: multiclass pairs, bit
/// masks, and plain correct/incorrect.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricsAccumulator {
    /// Multiclass (pred, gold) pairs tallied in a confusion matrix.
    /// `examples` counts scored examples (a sequence example contributes
    /// many pairs but one example).
    Multiclass {
        /// Pair tallies.
        confusion: ConfusionMatrix,
        /// Scored examples.
        examples: usize,
    },
    /// Bitvector tallies over (example, bit) pairs.
    Bits {
        /// True positives.
        tp: u64,
        /// False positives.
        fp: u64,
        /// False negatives.
        fn_: u64,
        /// Bits predicted correctly (either polarity).
        correct: u64,
        /// Total bits scored.
        total: u64,
        /// Scored examples.
        examples: usize,
    },
    /// Plain correctness (select tasks).
    Binary {
        /// Correct examples.
        correct: usize,
        /// Scored examples.
        examples: usize,
    },
}

impl MetricsAccumulator {
    /// An empty multiclass accumulator over `k` classes.
    pub fn multiclass(k: usize) -> Self {
        MetricsAccumulator::Multiclass { confusion: ConfusionMatrix::new(k), examples: 0 }
    }

    /// An empty bitvector accumulator.
    pub fn bits() -> Self {
        MetricsAccumulator::Bits { tp: 0, fp: 0, fn_: 0, correct: 0, total: 0, examples: 0 }
    }

    /// An empty binary-correctness accumulator.
    pub fn binary() -> Self {
        MetricsAccumulator::Binary { correct: 0, examples: 0 }
    }

    /// Tallies one multiclass example's (pred, gold) pairs.
    ///
    /// # Panics
    /// Panics if called on a non-multiclass accumulator or a class is out
    /// of range.
    pub fn record_multiclass(&mut self, pairs: &[(usize, usize)]) {
        let MetricsAccumulator::Multiclass { confusion, examples } = self else {
            panic!("record_multiclass on a non-multiclass accumulator")
        };
        for &(pred, gold) in pairs {
            confusion.record(gold, pred);
        }
        *examples += 1;
    }

    /// Tallies one bitvector example's (pred bits, gold bits) rows.
    ///
    /// # Panics
    /// Panics if called on a non-bits accumulator or rows are ragged.
    pub fn record_bits(&mut self, rows: &[(Vec<bool>, Vec<bool>)]) {
        let MetricsAccumulator::Bits { tp, fp, fn_, correct, total, examples } = self else {
            panic!("record_bits on a non-bits accumulator")
        };
        for (p_row, g_row) in rows {
            assert_eq!(p_row.len(), g_row.len(), "bit width mismatch");
            for (&p, &g) in p_row.iter().zip(g_row) {
                *total += 1;
                if p == g {
                    *correct += 1;
                }
                match (p, g) {
                    (true, true) => *tp += 1,
                    (true, false) => *fp += 1,
                    (false, true) => *fn_ += 1,
                    (false, false) => {}
                }
            }
        }
        *examples += 1;
    }

    /// Tallies one correct/incorrect example.
    ///
    /// # Panics
    /// Panics if called on a non-binary accumulator.
    pub fn record_binary(&mut self, is_correct: bool) {
        let MetricsAccumulator::Binary { correct, examples } = self else {
            panic!("record_binary on a non-binary accumulator")
        };
        if is_correct {
            *correct += 1;
        }
        *examples += 1;
    }

    /// Scored examples so far.
    pub fn examples(&self) -> usize {
        match self {
            MetricsAccumulator::Multiclass { examples, .. }
            | MetricsAccumulator::Bits { examples, .. }
            | MetricsAccumulator::Binary { examples, .. } => *examples,
        }
    }

    /// Adds another partial of the same shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn merge(&mut self, other: &MetricsAccumulator) {
        match (self, other) {
            (
                MetricsAccumulator::Multiclass { confusion, examples },
                MetricsAccumulator::Multiclass { confusion: c2, examples: e2 },
            ) => {
                confusion.merge(c2);
                *examples += e2;
            }
            (
                MetricsAccumulator::Bits { tp, fp, fn_, correct, total, examples },
                MetricsAccumulator::Bits {
                    tp: tp2,
                    fp: fp2,
                    fn_: fn2,
                    correct: c2,
                    total: t2,
                    examples: e2,
                },
            ) => {
                *tp += tp2;
                *fp += fp2;
                *fn_ += fn2;
                *correct += c2;
                *total += t2;
                *examples += e2;
            }
            (
                MetricsAccumulator::Binary { correct, examples },
                MetricsAccumulator::Binary { correct: c2, examples: e2 },
            ) => {
                *correct += c2;
                *examples += e2;
            }
            _ => panic!("cannot merge accumulators of different shapes"),
        }
    }

    /// Reduces the tallies into a [`Metrics`] bundle. `count` is the number
    /// of scored examples.
    pub fn finalize(&self) -> Metrics {
        match self {
            MetricsAccumulator::Multiclass { confusion, examples } => {
                if *examples == 0 {
                    return Metrics::empty();
                }
                Metrics {
                    count: *examples,
                    accuracy: confusion.accuracy(),
                    macro_f1: confusion.macro_f1(),
                    micro_f1: confusion.accuracy(),
                }
            }
            MetricsAccumulator::Bits { tp, fp, fn_, correct, total, examples } => {
                // Keyed on examples, not bits: a scored example with zero
                // bits (empty sequence) still counts, matching the eager
                // reduce which sets count = scored examples.
                if *examples == 0 {
                    return Metrics::empty();
                }
                let precision = if tp + fp == 0 { 0.0 } else { *tp as f64 / (tp + fp) as f64 };
                let recall = if tp + fn_ == 0 { 0.0 } else { *tp as f64 / (tp + fn_) as f64 };
                let f1 = if precision + recall == 0.0 {
                    0.0
                } else {
                    2.0 * precision * recall / (precision + recall)
                };
                Metrics {
                    count: *examples,
                    accuracy: if *total == 0 { 0.0 } else { *correct as f64 / *total as f64 },
                    macro_f1: f1,
                    micro_f1: f1,
                }
            }
            MetricsAccumulator::Binary { correct, examples } => {
                if *examples == 0 {
                    return Metrics::empty();
                }
                let accuracy = *correct as f64 / *examples as f64;
                Metrics { count: *examples, accuracy, macro_f1: accuracy, micro_f1: accuracy }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{bitvector_metrics, multiclass_metrics};

    #[test]
    fn multiclass_merge_matches_single_pass() {
        let preds = [0usize, 1, 2, 1, 0, 2, 2];
        let golds = [0usize, 1, 1, 1, 2, 2, 0];
        let mut whole = multiclass_metrics(3, &preds, &golds);
        whole.count = preds.len(); // one pair per example here

        let mut a = MetricsAccumulator::multiclass(3);
        let mut b = MetricsAccumulator::multiclass(3);
        for (i, (&p, &g)) in preds.iter().zip(&golds).enumerate() {
            if i < 3 {
                a.record_multiclass(&[(p, g)]);
            } else {
                b.record_multiclass(&[(p, g)]);
            }
        }
        a.merge(&b);
        assert_eq!(a.finalize(), whole);
    }

    #[test]
    fn bits_merge_matches_single_pass() {
        let preds = vec![vec![true, false], vec![true, true], vec![false, false]];
        let golds = vec![vec![true, true], vec![false, true], vec![false, true]];
        let whole = bitvector_metrics(&preds, &golds);

        let mut a = MetricsAccumulator::bits();
        let mut b = MetricsAccumulator::bits();
        a.record_bits(&[(preds[0].clone(), golds[0].clone())]);
        b.record_bits(&[(preds[1].clone(), golds[1].clone())]);
        b.record_bits(&[(preds[2].clone(), golds[2].clone())]);
        a.merge(&b);
        assert_eq!(a.finalize(), whole);
    }

    #[test]
    fn bits_example_with_zero_bits_still_counts() {
        // A scored example whose rows are empty (e.g. a gold label over an
        // empty sequence) contributes to count, as in the eager reduce.
        let mut a = MetricsAccumulator::bits();
        a.record_bits(&[]);
        let m = a.finalize();
        assert_eq!(m.count, 1);
        assert_eq!(m.accuracy, 0.0);
        assert_eq!(m.micro_f1, 0.0);
    }

    #[test]
    fn binary_counts_and_empty() {
        let mut a = MetricsAccumulator::binary();
        a.record_binary(true);
        a.record_binary(false);
        let mut b = MetricsAccumulator::binary();
        b.record_binary(true);
        a.merge(&b);
        let m = a.finalize();
        assert_eq!(m.count, 3);
        assert!((m.accuracy - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(MetricsAccumulator::binary().finalize(), Metrics::empty());
        assert_eq!(MetricsAccumulator::multiclass(4).finalize(), Metrics::empty());
        assert_eq!(MetricsAccumulator::bits().finalize(), Metrics::empty());
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn shape_mismatch_panics() {
        MetricsAccumulator::binary().merge(&MetricsAccumulator::bits());
    }
}

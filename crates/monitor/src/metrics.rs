//! Scalar quality metrics over prediction/gold pairs.

use crate::confusion::ConfusionMatrix;

/// A bundle of quality metrics for one group of examples. Serializable:
/// quality reports are persisted as the evaluate stage's run artifact and
/// exchanged by the monitoring loop.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Metrics {
    /// Number of scored examples.
    pub count: usize,
    /// Fraction exactly correct.
    pub accuracy: f64,
    /// Unweighted mean per-class F1.
    pub macro_f1: f64,
    /// Micro-averaged F1 (= accuracy for single-label multiclass).
    pub micro_f1: f64,
}

impl Metrics {
    /// Metrics of an empty group.
    pub fn empty() -> Self {
        Self { count: 0, accuracy: 0.0, macro_f1: 0.0, micro_f1: 0.0 }
    }

    /// The error rate, `1 - accuracy`.
    pub fn error(&self) -> f64 {
        1.0 - self.accuracy
    }

    /// Number of exactly-correct examples implied by `accuracy * count`
    /// (rounded — accuracy is stored as a fraction of an integer count).
    pub fn successes(&self) -> u64 {
        (self.accuracy * self.count as f64).round() as u64
    }

    /// Exact Clopper-Pearson `1 - alpha` confidence interval on
    /// `accuracy`, reconstructed from the integer success count. An empty
    /// group is total ignorance, `[0, 1]`.
    pub fn accuracy_interval(&self, alpha: f64) -> crate::stats::Interval {
        crate::stats::clopper_pearson(self.successes(), self.count as u64, alpha)
    }
}

/// Computes multiclass metrics from parallel prediction/gold class slices.
///
/// # Panics
/// Panics if lengths differ or a class is `>= k`.
pub fn multiclass_metrics(k: usize, preds: &[usize], golds: &[usize]) -> Metrics {
    assert_eq!(preds.len(), golds.len(), "preds/golds length mismatch");
    if preds.is_empty() {
        return Metrics::empty();
    }
    let mut cm = ConfusionMatrix::new(k);
    for (&p, &g) in preds.iter().zip(golds) {
        cm.record(g, p);
    }
    Metrics {
        count: preds.len(),
        accuracy: cm.accuracy(),
        macro_f1: cm.macro_f1(),
        micro_f1: cm.accuracy(),
    }
}

/// Computes bit-level metrics for bitvector tasks from parallel bit masks.
/// Precision/recall/F1 are micro-averaged over all (example, bit) pairs with
/// the positive class as the target; accuracy is per-bit accuracy.
///
/// # Panics
/// Panics if shapes differ.
pub fn bitvector_metrics(preds: &[Vec<bool>], golds: &[Vec<bool>]) -> Metrics {
    assert_eq!(preds.len(), golds.len(), "preds/golds length mismatch");
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut fn_ = 0u64;
    let mut correct = 0u64;
    let mut total = 0u64;
    for (p_row, g_row) in preds.iter().zip(golds) {
        assert_eq!(p_row.len(), g_row.len(), "bit width mismatch");
        for (&p, &g) in p_row.iter().zip(g_row) {
            total += 1;
            if p == g {
                correct += 1;
            }
            match (p, g) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
    }
    if total == 0 {
        return Metrics::empty();
    }
    let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Metrics {
        count: preds.len(),
        accuracy: correct as f64 / total as f64,
        macro_f1: f1,
        micro_f1: f1,
    }
}

/// Binary F1 for one positive class from multiclass pairs (used for
/// per-slice F1 reporting, e.g. the paper's ">50 points of F1" slice claim).
pub fn binary_f1(positive: usize, preds: &[usize], golds: &[usize]) -> f64 {
    assert_eq!(preds.len(), golds.len());
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut fn_ = 0u64;
    for (&p, &g) in preds.iter().zip(golds) {
        match (p == positive, g == positive) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            _ => {}
        }
    }
    if 2 * tp + fp + fn_ == 0 {
        0.0
    } else {
        2.0 * tp as f64 / (2 * tp + fp + fn_) as f64
    }
}

/// Relative quality of `subject` vs `baseline` as used in Figure 4
/// ("if the baseline F1 is 0.8 and the subject F1 is 0.9, the relative
/// quality is 0.9/0.8 = 1.125").
pub fn relative_quality(subject: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        if subject == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        subject / baseline
    }
}

/// Error-reduction factor of `new` vs `old` error rates, as reported in
/// Figure 3 (e.g. old error 0.10 → new error 0.034 is a 2.9x reduction and
/// "65% fewer errors").
pub fn error_reduction_factor(old_error: f64, new_error: f64) -> f64 {
    if new_error <= 0.0 {
        f64::INFINITY
    } else {
        old_error / new_error
    }
}

/// Percentage of errors removed: `1 - new/old` (Figure 3's first column).
pub fn error_reduction_percent(old_error: f64, new_error: f64) -> f64 {
    if old_error <= 0.0 {
        0.0
    } else {
        (1.0 - new_error / old_error) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiclass_perfect() {
        let m = multiclass_metrics(3, &[0, 1, 2], &[0, 1, 2]);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.macro_f1, 1.0);
        assert_eq!(m.count, 3);
    }

    #[test]
    fn multiclass_empty() {
        let m = multiclass_metrics(3, &[], &[]);
        assert_eq!(m, Metrics::empty());
    }

    #[test]
    fn multiclass_partial() {
        let m = multiclass_metrics(2, &[0, 0, 1, 1], &[0, 1, 1, 0]);
        assert_eq!(m.accuracy, 0.5);
        assert_eq!(m.error(), 0.5);
    }

    #[test]
    fn bitvector_micro_f1() {
        let preds = vec![vec![true, false], vec![true, true]];
        let golds = vec![vec![true, true], vec![false, true]];
        let m = bitvector_metrics(&preds, &golds);
        // tp=2 (0,0 and 1,1), fp=1 (1,0), fn=1 (0,1), accuracy 2/4.
        assert_eq!(m.accuracy, 0.5);
        let p = 2.0 / 3.0;
        let r = 2.0 / 3.0;
        assert!((m.micro_f1 - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn binary_f1_matches_hand_computation() {
        // positive=1: tp=1, fp=1, fn=1 -> F1 = 2/(2+1+1) = 0.5
        let f1 = binary_f1(1, &[1, 1, 0], &[1, 0, 1]);
        assert!((f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn binary_f1_no_positives_is_zero() {
        assert_eq!(binary_f1(1, &[0, 0], &[0, 0]), 0.0);
    }

    #[test]
    fn relative_quality_paper_example() {
        assert!((relative_quality(0.9, 0.8) - 1.125).abs() < 1e-12);
        assert_eq!(relative_quality(0.0, 0.0), 1.0);
        assert_eq!(relative_quality(0.5, 0.0), f64::INFINITY);
    }

    #[test]
    fn error_reduction_figures() {
        // "65% (2.9x)" from Figure 3: old error e, new error e/2.9.
        let old = 0.29;
        let new = 0.10;
        assert!((error_reduction_factor(old, new) - 2.9).abs() < 1e-9);
        assert!((error_reduction_percent(old, new) - (1.0 - 0.10 / 0.29) * 100.0).abs() < 1e-9);
        assert_eq!(error_reduction_factor(0.1, 0.0), f64::INFINITY);
    }
}

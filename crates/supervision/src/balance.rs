//! Class rebalancing weights ("this also allows Overton to automatically
//! handle common issues like rebalancing classes", §2.2).

use crate::prob::ProbLabel;

/// Per-class inverse-frequency weights from a set of probabilistic labels
/// (all of which must be `Dist` with the same arity). Classes with zero
/// expected mass get weight 0.
pub fn class_weights(labels: &[&ProbLabel], k: usize) -> Vec<f32> {
    let mut mass = vec![0.0f32; k];
    let mut total = 0.0f32;
    for label in labels {
        if let ProbLabel::Dist(d) = label {
            debug_assert_eq!(d.len(), k, "class_weights arity mismatch");
            for (c, &p) in d.iter().enumerate() {
                mass[c] += p;
            }
            total += 1.0;
        }
    }
    if total == 0.0 {
        return vec![1.0; k];
    }
    // weight_c = total / (k * mass_c): a perfectly balanced dataset gets
    // all-ones; rare classes are up-weighted.
    mass.iter().map(|&m| if m > 0.0 { total / (k as f32 * m) } else { 0.0 }).collect()
}

/// The loss weight of one example: expected class weight under its label
/// distribution.
pub fn example_weight(label: &ProbLabel, weights: &[f32]) -> f32 {
    match label {
        ProbLabel::Dist(d) => d.iter().zip(weights).map(|(p, w)| p * w).sum(),
        // Sequence/bitvector labels are weighted uniformly here; their
        // element-level balance is handled by the per-bit combiner.
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_data_gets_unit_weights() {
        let a = ProbLabel::one_hot(0, 2);
        let b = ProbLabel::one_hot(1, 2);
        let w = class_weights(&[&a, &b], 2);
        assert!((w[0] - 1.0).abs() < 1e-6);
        assert!((w[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rare_class_upweighted() {
        let a = ProbLabel::one_hot(0, 2);
        let b = ProbLabel::one_hot(0, 2);
        let c = ProbLabel::one_hot(0, 2);
        let d = ProbLabel::one_hot(1, 2);
        let w = class_weights(&[&a, &b, &c, &d], 2);
        assert!(w[1] > w[0]);
        assert!((w[1] - 2.0).abs() < 1e-6);
        assert!((w[0] - 4.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn empty_class_gets_zero() {
        let a = ProbLabel::one_hot(0, 3);
        let w = class_weights(&[&a], 3);
        assert_eq!(w[1], 0.0);
        assert_eq!(w[2], 0.0);
    }

    #[test]
    fn no_dist_labels_fall_back_to_ones() {
        let a = ProbLabel::Bits(vec![0.5]);
        let w = class_weights(&[&a], 2);
        assert_eq!(w, vec![1.0, 1.0]);
    }

    #[test]
    fn example_weight_is_expectation() {
        let label = ProbLabel::Dist(vec![0.25, 0.75]);
        let w = example_weight(&label, &[2.0, 4.0]);
        assert!((w - 3.5).abs() < 1e-6);
    }
}

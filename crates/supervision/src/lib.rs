//! # overton-supervision
//!
//! Weak supervision management (paper §2.2 and design decision "Design for
//! Weakly Supervised Code", §2.4): label matrices over abstaining sources,
//! a majority-vote baseline, the generative **label model** fit by EM (the
//! Snorkel data-programming estimator), a closed-form **triplet**
//! method-of-moments alternative, class rebalancing, per-task combination at
//! every granularity (singleton / sequence / set / bitvector), and
//! label-preserving **data augmentation** with lineage tags.

#![warn(missing_docs)]

mod augment;
mod balance;
mod combine;
mod dependencies;
mod label_model;
mod majority;
mod matrix;
mod prob;
mod triplet;

pub use augment::{AugmentPolicy, SynonymSwap, TokenDropout, Transform, AUG_TAG_PREFIX};
pub use balance::{class_weights, example_weight};
pub use combine::{
    combine_all, combine_task, combine_task_store, weak_supervision_fraction, CombineError,
    CombineMethod, CombinedSupervision, SourceDiagnostics,
};
pub use dependencies::{source_dependencies, DependencyDiagnostic};
pub use label_model::{LabelModel, LabelModelConfig};
pub use majority::{majority_vote, majority_vote_hard};
pub use matrix::LabelMatrix;
pub use prob::ProbLabel;
pub use triplet::{triplet_accuracies, TripletEstimate};

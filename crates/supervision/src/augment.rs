//! Data augmentation: programmatic creation of new training records.
//!
//! Augmentation is one of the paper's supervision actions ("Add synthetic
//! examples", Figure 1). Transforms here are label-preserving by
//! construction on the payloads they touch; every augmented record is tagged
//! with its lineage (`aug:<transform>`), so its quality can be monitored
//! per-source like any other supervision.

use overton_store::{PayloadValue, Record};
use rand::Rng;
use std::collections::BTreeMap;

/// Tag prefix recording which transform produced an augmented record.
pub const AUG_TAG_PREFIX: &str = "aug:";

/// A label-preserving record transform.
pub trait Transform {
    /// Short name used for lineage tags.
    fn name(&self) -> &str;
    /// Produces an augmented copy, or `None` when the transform does not
    /// apply to this record.
    fn apply(&self, record: &Record, rng: &mut dyn rand::RngCore) -> Option<Record>;
}

/// Replaces tokens with synonyms from a fixed map. Token-level labels are
/// preserved (a synonym keeps the token's role).
pub struct SynonymSwap {
    payload: String,
    synonyms: BTreeMap<String, Vec<String>>,
    /// Probability of swapping each eligible token.
    prob: f64,
}

impl SynonymSwap {
    /// Creates a synonym transform over the given sequence payload.
    pub fn new(payload: &str, synonyms: BTreeMap<String, Vec<String>>, prob: f64) -> Self {
        Self { payload: payload.into(), synonyms, prob }
    }
}

impl Transform for SynonymSwap {
    fn name(&self) -> &str {
        "synonym"
    }

    fn apply(&self, record: &Record, rng: &mut dyn rand::RngCore) -> Option<Record> {
        let PayloadValue::Sequence(tokens) = record.payloads.get(&self.payload)? else {
            return None;
        };
        let mut out = tokens.clone();
        let mut changed = false;
        for token in &mut out {
            if let Some(alts) = self.synonyms.get(token) {
                if !alts.is_empty() && rng.gen_bool(self.prob) {
                    *token = alts[rng.gen_range(0..alts.len())].clone();
                    changed = true;
                }
            }
        }
        if !changed {
            return None;
        }
        let mut record = record.clone();
        record.payloads.insert(self.payload.clone(), PayloadValue::Sequence(out));
        Some(record)
    }
}

/// Duplicates a record while dropping a random *unlabeled-safe* token — only
/// applies when the record has no per-token labels (dropping a token would
/// misalign them).
pub struct TokenDropout {
    payload: String,
}

impl TokenDropout {
    /// Creates a token-dropout transform over the given sequence payload.
    pub fn new(payload: &str) -> Self {
        Self { payload: payload.into() }
    }
}

impl Transform for TokenDropout {
    fn name(&self) -> &str {
        "token-dropout"
    }

    fn apply(&self, record: &Record, rng: &mut dyn rand::RngCore) -> Option<Record> {
        let PayloadValue::Sequence(tokens) = record.payloads.get(&self.payload)? else {
            return None;
        };
        if tokens.len() < 3 {
            return None;
        }
        // Per-token labels or span-bearing sets would be invalidated.
        let has_token_level_labels = record.tasks.values().any(|sources| {
            sources.values().any(|l| {
                matches!(
                    l,
                    overton_store::TaskLabel::MulticlassSeq(_)
                        | overton_store::TaskLabel::BitvectorSeq(_)
                )
            })
        });
        let has_span_payloads = record
            .payloads
            .values()
            .any(|p| matches!(p, PayloadValue::Set(items) if !items.is_empty()));
        if has_token_level_labels || has_span_payloads {
            return None;
        }
        let drop = rng.gen_range(0..tokens.len());
        let mut out = tokens.clone();
        out.remove(drop);
        let mut record = record.clone();
        record.payloads.insert(self.payload.clone(), PayloadValue::Sequence(out));
        Some(record)
    }
}

/// An augmentation policy: a weighted set of transforms applied to a corpus.
pub struct AugmentPolicy {
    transforms: Vec<(Box<dyn Transform>, f64)>,
}

impl AugmentPolicy {
    /// Creates an empty policy.
    pub fn new() -> Self {
        Self { transforms: Vec::new() }
    }

    /// Adds a transform with a relative sampling weight.
    pub fn with(mut self, transform: Box<dyn Transform>, weight: f64) -> Self {
        assert!(weight > 0.0, "transform weight must be positive");
        self.transforms.push((transform, weight));
        self
    }

    /// Number of registered transforms.
    pub fn len(&self) -> usize {
        self.transforms.len()
    }

    /// True when no transforms are registered.
    pub fn is_empty(&self) -> bool {
        self.transforms.is_empty()
    }

    /// Generates up to `count` augmented records by sampling transforms over
    /// `records`. Each output carries an `aug:<name>` lineage tag.
    pub fn generate(&self, records: &[Record], count: usize, rng: &mut impl Rng) -> Vec<Record> {
        if self.transforms.is_empty() || records.is_empty() {
            return Vec::new();
        }
        let total_weight: f64 = self.transforms.iter().map(|(_, w)| w).sum();
        let mut out = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while out.len() < count && attempts < count * 20 {
            attempts += 1;
            let record = &records[rng.gen_range(0..records.len())];
            let mut pick = rng.gen::<f64>() * total_weight;
            let mut chosen = &self.transforms[0].0;
            for (t, w) in &self.transforms {
                if pick < *w {
                    chosen = t;
                    break;
                }
                pick -= w;
            }
            if let Some(aug) = chosen.apply(record, rng) {
                out.push(aug.with_tag(&format!("{AUG_TAG_PREFIX}{}", chosen.name())));
            }
        }
        out
    }
}

impl Default for AugmentPolicy {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_store::TaskLabel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn base_record() -> Record {
        Record::new()
            .with_payload(
                "tokens",
                PayloadValue::Sequence(vec!["how".into(), "tall".into(), "is".into(), "he".into()]),
            )
            .with_label("Intent", "w", TaskLabel::MulticlassOne("Height".into()))
            .with_tag("train")
    }

    fn synonyms() -> BTreeMap<String, Vec<String>> {
        let mut m = BTreeMap::new();
        m.insert("tall".to_string(), vec!["high".to_string()]);
        m
    }

    #[test]
    fn synonym_swap_preserves_labels_and_changes_tokens() {
        let t = SynonymSwap::new("tokens", synonyms(), 1.0);
        let mut rng = SmallRng::seed_from_u64(0);
        let aug = t.apply(&base_record(), &mut rng).unwrap();
        let PayloadValue::Sequence(tokens) = &aug.payloads["tokens"] else { panic!() };
        assert_eq!(tokens[1], "high");
        assert_eq!(aug.tasks, base_record().tasks);
    }

    #[test]
    fn synonym_swap_skips_when_nothing_matches() {
        let t = SynonymSwap::new("tokens", BTreeMap::new(), 1.0);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(t.apply(&base_record(), &mut rng).is_none());
    }

    #[test]
    fn token_dropout_shortens_sequence() {
        let t = TokenDropout::new("tokens");
        let mut rng = SmallRng::seed_from_u64(1);
        let aug = t.apply(&base_record(), &mut rng).unwrap();
        let PayloadValue::Sequence(tokens) = &aug.payloads["tokens"] else { panic!() };
        assert_eq!(tokens.len(), 3);
    }

    #[test]
    fn token_dropout_refuses_token_labeled_records() {
        let r =
            base_record().with_label("POS", "w", TaskLabel::MulticlassSeq(vec!["ADV".into(); 4]));
        let t = TokenDropout::new("tokens");
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(t.apply(&r, &mut rng).is_none());
    }

    #[test]
    fn policy_generates_tagged_records() {
        let policy = AugmentPolicy::new()
            .with(Box::new(SynonymSwap::new("tokens", synonyms(), 1.0)), 1.0)
            .with(Box::new(TokenDropout::new("tokens")), 1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let out = policy.generate(&[base_record()], 10, &mut rng);
        assert!(!out.is_empty());
        for r in &out {
            assert!(
                r.tags.iter().any(|t| t.starts_with(AUG_TAG_PREFIX)),
                "missing lineage tag: {:?}",
                r.tags
            );
        }
    }

    #[test]
    fn empty_policy_generates_nothing() {
        let policy = AugmentPolicy::new();
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(policy.generate(&[base_record()], 5, &mut rng).is_empty());
    }
}

//! Combining multi-source supervision over a dataset, task by task.
//!
//! This is the "Combine Supervision" stage of Figure 1: for each task, the
//! (conflicting, incomplete) source votes are flattened into label matrices
//! at the task's granularity, a combiner resolves them, and the resulting
//! probabilistic labels are attached back to records for training.
//!
//! Two drivers share the combiners: [`combine_task`] traverses an eager
//! [`Dataset`] (the editable builder view), while [`combine_all`] /
//! [`combine_task_store`] scan a sealed [`ShardedStore`] — every shard
//! builds its partial label matrices from zero-copy row views in parallel,
//! the partials merge in shard order (bit-for-bit the same matrices the
//! eager path builds), and the combiner runs once on the merged matrix.
//! One store scan covers *all* tasks, where the eager path re-traverses
//! the records once per task.

use crate::label_model::{LabelModel, LabelModelConfig};
use crate::majority::majority_vote;
use crate::matrix::LabelMatrix;
use crate::prob::ProbLabel;
use overton_store::{
    Dataset, LabelView, PayloadKind, PayloadValue, Record, RowView, ShardedStore, StoreError,
    TaskKind, TaskLabel,
};
use std::collections::BTreeMap;
use std::fmt;

/// How to resolve conflicting sources. Serializable: a persisted run
/// records its combine method as part of its options.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum CombineMethod {
    /// Unweighted majority vote (baseline).
    MajorityVote,
    /// Generative label model fit by EM (the Overton/Snorkel approach).
    LabelModel(LabelModelConfig),
    /// Trust a single named source, ignoring all others (ablation).
    SingleSource(String),
}

impl Default for CombineMethod {
    fn default() -> Self {
        CombineMethod::LabelModel(LabelModelConfig::default())
    }
}

/// Errors from supervision combination.
#[derive(Debug)]
pub enum CombineError {
    /// The task is not in the dataset's schema.
    UnknownTask(String),
    /// A label mentions a class missing from the task vocabulary.
    UnknownClass {
        /// Task whose vocabulary was violated.
        task: String,
        /// The out-of-vocabulary class name.
        class: String,
    },
    /// Requested source never appears for the task.
    UnknownSource {
        /// Task that was being combined.
        task: String,
        /// The missing source name.
        source: String,
    },
    /// A sharded-store scan failed (corrupt row, I/O).
    Store(StoreError),
}

impl fmt::Display for CombineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CombineError::UnknownTask(t) => write!(f, "unknown task '{t}'"),
            CombineError::UnknownClass { task, class } => {
                write!(f, "task '{task}': label '{class}' not in vocabulary")
            }
            CombineError::UnknownSource { task, source } => {
                write!(f, "task '{task}': source '{source}' has no votes")
            }
            CombineError::Store(e) => write!(f, "store scan failed: {e}"),
        }
    }
}

impl std::error::Error for CombineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CombineError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for CombineError {
    fn from(e: StoreError) -> Self {
        CombineError::Store(e)
    }
}

/// Per-source diagnostics from a combination run. Serializable: the `Run`
/// API persists these as the combine stage's artifact.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SourceDiagnostics {
    /// Source name.
    pub name: String,
    /// Estimated accuracy (label model) or `None` for other methods.
    pub estimated_accuracy: Option<f32>,
    /// Fraction of items the source voted on.
    pub coverage: f32,
}

/// The result of combining supervision for one task.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedSupervision {
    /// One entry per dataset record: `None` when the record carries no
    /// supervision for this task.
    pub labels: Vec<Option<ProbLabel>>,
    /// Per-source diagnostics (accuracy estimates feed the monitoring UI).
    pub sources: Vec<SourceDiagnostics>,
}

impl CombinedSupervision {
    /// Number of records with supervision.
    pub fn supervised_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }
}

/// Combines supervision for `task` across the whole dataset.
pub fn combine_task(
    dataset: &Dataset,
    task: &str,
    method: &CombineMethod,
) -> Result<CombinedSupervision, CombineError> {
    let schema = dataset.schema();
    let task_def =
        schema.tasks.get(task).ok_or_else(|| CombineError::UnknownTask(task.to_string()))?;
    let payload_kind = schema
        .payloads
        .get(&task_def.payload)
        .map(|p| p.kind.clone())
        .unwrap_or(PayloadKind::Singleton);

    let sources = dataset.sources_for_task(task);
    if let CombineMethod::SingleSource(name) = method {
        if !sources.iter().any(|s| s == name) {
            return Err(CombineError::UnknownSource {
                task: task.to_string(),
                source: name.clone(),
            });
        }
    }

    match (&task_def.kind, &payload_kind) {
        (TaskKind::Multiclass { classes }, PayloadKind::Singleton) => {
            combine_multiclass_singleton(dataset, task, classes, &sources, method)
        }
        (TaskKind::Multiclass { classes }, PayloadKind::Sequence { .. }) => {
            combine_multiclass_sequence(dataset, task, classes, &sources, method)
        }
        (TaskKind::Bitvector { labels }, PayloadKind::Singleton) => {
            combine_bitvector(dataset, task, labels, &sources, method, false)
        }
        (TaskKind::Bitvector { labels }, PayloadKind::Sequence { .. }) => {
            combine_bitvector(dataset, task, labels, &sources, method, true)
        }
        (TaskKind::Select, _) => combine_select(dataset, task, &task_def.payload, &sources, method),
        (kind, payload) => {
            // Multiclass/bitvector over a set payload is not used by the
            // paper's schema; treat per-element like a sequence if needed.
            unreachable!("unsupported task/payload combination: {kind:?} over {payload:?}")
        }
    }
}

/// What one task's extraction needs to know, resolved once per scan from
/// the schema and the store's seal-time index (no per-task re-scan).
struct TaskSpec {
    name: String,
    payload: String,
    payload_kind: PayloadKind,
    kind: TaskKind,
    sources: Vec<String>,
}

/// Per-shard partial state for one task: label-matrix fragments plus the
/// bookkeeping that maps matrix items back to global rows. Partials from
/// different shards concatenate in shard order, reproducing exactly the
/// matrices a sequential traversal would build.
enum TaskPartial {
    /// Multiclass-over-singleton and select tasks: one item per voting row.
    Single { matrix: LabelMatrix, items: Vec<u32> },
    /// Multiclass over a sequence payload: one item per (row, token).
    Seq { matrix: LabelMatrix, item_pos: Vec<(u32, u32)>, record_len: Vec<(u32, u32)> },
    /// Bitvector tasks: one binary matrix per bit, items aligned across
    /// bits; `sequence` distinguishes per-token from per-record labels.
    Bits {
        matrices: Vec<LabelMatrix>,
        item_pos: Vec<(u32, u32)>,
        record_len: Vec<(u32, u32)>,
        sequence: bool,
    },
}

impl TaskPartial {
    fn new(spec: &TaskSpec) -> Self {
        let n = spec.sources.len();
        match (&spec.kind, &spec.payload_kind) {
            (TaskKind::Multiclass { .. }, PayloadKind::Singleton) | (TaskKind::Select, _) => {
                TaskPartial::Single { matrix: LabelMatrix::new(n), items: Vec::new() }
            }
            (TaskKind::Multiclass { .. }, PayloadKind::Sequence { .. }) => TaskPartial::Seq {
                matrix: LabelMatrix::new(n),
                item_pos: Vec::new(),
                record_len: Vec::new(),
            },
            (
                TaskKind::Bitvector { labels },
                payload @ (PayloadKind::Singleton | PayloadKind::Sequence { .. }),
            ) => TaskPartial::Bits {
                matrices: (0..labels.len()).map(|_| LabelMatrix::new(n)).collect(),
                item_pos: Vec::new(),
                record_len: Vec::new(),
                sequence: matches!(payload, PayloadKind::Sequence { .. }),
            },
            (kind, payload) => {
                // Mirror the eager driver: these combinations are not used
                // by the paper's schema and are a programming error.
                unreachable!("unsupported task/payload combination: {kind:?} over {payload:?}")
            }
        }
    }

    fn append(&mut self, other: TaskPartial) {
        match (self, other) {
            (
                TaskPartial::Single { matrix, items },
                TaskPartial::Single { matrix: m2, items: i2 },
            ) => {
                matrix.append(&m2);
                items.extend(i2);
            }
            (
                TaskPartial::Seq { matrix, item_pos, record_len },
                TaskPartial::Seq { matrix: m2, item_pos: p2, record_len: l2 },
            ) => {
                matrix.append(&m2);
                item_pos.extend(p2);
                record_len.extend(l2);
            }
            (
                TaskPartial::Bits { matrices, item_pos, record_len, .. },
                TaskPartial::Bits { matrices: m2, item_pos: p2, record_len: l2, .. },
            ) => {
                for (a, b) in matrices.iter_mut().zip(&m2) {
                    a.append(b);
                }
                item_pos.extend(p2);
                record_len.extend(l2);
            }
            _ => unreachable!("partials of one task share a shape"),
        }
    }
}

fn class_index_view(classes: &[String], name: &str, task: &str) -> Result<u32, CombineError> {
    classes.iter().position(|c| c == name).map(|i| i as u32).ok_or_else(|| {
        CombineError::UnknownClass { task: task.to_string(), class: name.to_string() }
    })
}

/// Resolves each configured source's label for one task, in source order,
/// with a single binary search per source (the per-item extraction below
/// then never touches the row's task table again).
fn resolve_sources<'v, 'a>(
    sources_slice: &'v [(&'a str, LabelView<'a>)],
    sources: &[String],
) -> Vec<Option<&'v LabelView<'a>>> {
    sources
        .iter()
        .map(|source| {
            sources_slice
                .binary_search_by_key(&source.as_str(), |(s, _)| s)
                .ok()
                .map(|i| &sources_slice[i].1)
        })
        .collect()
}

/// The set bits of one bitvector label as a mask over the task's bit
/// vocabulary (bit names outside the vocabulary are ignored, as in the
/// eager path).
fn bit_mask(bits: &[&str], labels: &[String]) -> u64 {
    let mut mask = 0u64;
    for bit in bits {
        if let Some(b) = labels.iter().position(|l| l == bit) {
            mask |= 1 << b;
        }
    }
    mask
}

/// Extracts one row's votes for one task from a zero-copy view into the
/// task's partial. Mirrors the eager per-kind extraction in
/// `combine_multiclass_singleton` & co. exactly — wrong granularity is an
/// abstain, unknown classes are errors — but resolves the row's source
/// labels once up front instead of per matrix item, and turns bitvector
/// labels into bit masks so per-(element, bit) votes are mask tests.
fn extract_row(
    spec: &TaskSpec,
    row: u32,
    view: &RowView<'_>,
    partial: &mut TaskPartial,
    votes: &mut Vec<Option<u32>>,
) -> Result<(), CombineError> {
    let task = spec.name.as_str();
    match partial {
        TaskPartial::Single { matrix, items } => match &spec.kind {
            TaskKind::Multiclass { classes } => {
                let Some(sources_slice) = view.task(task) else { return Ok(()) };
                let labels = resolve_sources(sources_slice, &spec.sources);
                votes.clear();
                for label in &labels {
                    votes.push(match label {
                        Some(LabelView::MulticlassOne(c)) => {
                            Some(class_index_view(classes, c, task)?)
                        }
                        _ => None,
                    });
                }
                if votes.iter().any(Option::is_some) {
                    matrix.push_item(classes.len() as u32, votes);
                    items.push(row);
                }
            }
            TaskKind::Select => {
                let Some(overton_store::PayloadView::Set(els)) = view.payload(&spec.payload) else {
                    return Ok(());
                };
                if els.is_empty() {
                    return Ok(());
                }
                let Some(sources_slice) = view.task(task) else { return Ok(()) };
                let labels = resolve_sources(sources_slice, &spec.sources);
                votes.clear();
                for label in &labels {
                    votes.push(match label {
                        Some(LabelView::Select(idx)) => Some(*idx as u32),
                        _ => None,
                    });
                }
                if votes.iter().any(Option::is_some) {
                    matrix.push_item(els.len() as u32, votes);
                    items.push(row);
                }
            }
            _ => unreachable!("single-item partial implies multiclass or select"),
        },
        TaskPartial::Seq { matrix, item_pos, record_len } => {
            let TaskKind::Multiclass { classes } = &spec.kind else {
                unreachable!("seq partial implies multiclass")
            };
            let Some(overton_store::PayloadView::Sequence(tokens)) = view.payload(&spec.payload)
            else {
                return Ok(());
            };
            if view.weak_sources(task).next().is_none() {
                return Ok(());
            }
            let sources_slice = view.task(task).expect("weak sources imply the task");
            let labels = resolve_sources(sources_slice, &spec.sources);
            // Per source: the token-aligned class sequence, if that is the
            // granularity the source voted at.
            let seqs: Vec<Option<&Vec<&str>>> = labels
                .iter()
                .map(|label| match label {
                    Some(LabelView::MulticlassSeq(cs)) => Some(cs),
                    _ => None,
                })
                .collect();
            record_len.push((row, tokens.len() as u32));
            for t in 0..tokens.len() {
                votes.clear();
                for seq in &seqs {
                    votes.push(match seq.and_then(|cs| cs.get(t)) {
                        Some(c) => Some(class_index_view(classes, c, task)?),
                        None => None,
                    });
                }
                matrix.push_item(classes.len() as u32, votes);
                item_pos.push((row, t as u32));
            }
        }
        TaskPartial::Bits { matrices, item_pos, record_len, sequence } => {
            let TaskKind::Bitvector { labels: bit_names } = &spec.kind else {
                unreachable!("bits partial implies bitvector")
            };
            if view.weak_sources(task).next().is_none() {
                return Ok(());
            }
            let elements = if *sequence {
                match view.payload(&spec.payload) {
                    Some(overton_store::PayloadView::Sequence(tokens)) => tokens.len(),
                    _ => return Ok(()),
                }
            } else {
                1
            };
            let sources_slice = view.task(task).expect("weak sources imply the task");
            let resolved = resolve_sources(sources_slice, &spec.sources);
            record_len.push((row, elements as u32));
            if bit_names.len() <= 64 {
                // Fast path: per source, one mask per element (`None` =
                // abstain on the whole record; a too-short sequence
                // abstains past its end).
                let masks: Vec<Option<Vec<u64>>> = resolved
                    .iter()
                    .map(|label| match (label, *sequence) {
                        (Some(LabelView::BitvectorOne(bits)), false) => {
                            Some(vec![bit_mask(bits, bit_names)])
                        }
                        (Some(LabelView::BitvectorSeq(rows)), true) => {
                            Some(rows.iter().map(|bits| bit_mask(bits, bit_names)).collect())
                        }
                        _ => None,
                    })
                    .collect();
                for t in 0..elements {
                    for (b, matrix) in matrices.iter_mut().enumerate() {
                        votes.clear();
                        for mask in &masks {
                            votes.push(
                                mask.as_ref()
                                    .and_then(|rows| rows.get(t))
                                    .map(|m| ((m >> b) & 1) as u32),
                            );
                        }
                        matrix.push_item(2, votes);
                    }
                    item_pos.push((row, t as u32));
                }
            } else {
                // Wide vocabularies (> 64 bits): scan each label's set
                // bits directly, as the eager path does.
                for t in 0..elements {
                    for (b, matrix) in matrices.iter_mut().enumerate() {
                        let bit = bit_names[b].as_str();
                        votes.clear();
                        for label in &resolved {
                            let bits: Option<&Vec<&str>> = match (label, *sequence) {
                                (Some(LabelView::BitvectorOne(bits)), false) => Some(bits),
                                (Some(LabelView::BitvectorSeq(rows)), true) => rows.get(t),
                                _ => None,
                            };
                            votes.push(bits.map(|bits| u32::from(bits.contains(&bit))));
                        }
                        matrix.push_item(2, votes);
                    }
                    item_pos.push((row, t as u32));
                }
            }
        }
    }
    Ok(())
}

/// Runs the combiner on a task's merged partial and scatters the resulting
/// distributions back to per-row probabilistic labels.
fn finish_task(
    spec: &TaskSpec,
    partial: TaskPartial,
    num_rows: usize,
    method: &CombineMethod,
) -> CombinedSupervision {
    let mut labels = vec![None; num_rows];
    match partial {
        TaskPartial::Single { matrix, items } => {
            let (dists, diags) = run_combiner(&matrix, &spec.sources, method);
            for (item, row) in items.iter().enumerate() {
                if let Some(dist) = &dists[item] {
                    labels[*row as usize] = Some(ProbLabel::Dist(dist.clone()));
                }
            }
            CombinedSupervision { labels, sources: diags }
        }
        TaskPartial::Seq { matrix, item_pos, record_len } => {
            let (dists, diags) = run_combiner(&matrix, &spec.sources, method);
            let mut per_record: BTreeMap<u32, Vec<Vec<f32>>> = BTreeMap::new();
            let mut skipped: std::collections::BTreeSet<u32> = Default::default();
            for (row, len) in &record_len {
                per_record.insert(*row, vec![Vec::new(); *len as usize]);
            }
            for (item, (row, t)) in item_pos.iter().enumerate() {
                match &dists[item] {
                    Some(dist) => {
                        per_record.get_mut(row).expect("registered")[*t as usize] = dist.clone()
                    }
                    None => {
                        skipped.insert(*row);
                    }
                }
            }
            for (row, rows) in per_record {
                if !skipped.contains(&row) {
                    labels[row as usize] = Some(ProbLabel::SeqDist(rows));
                }
            }
            CombinedSupervision { labels, sources: diags }
        }
        TaskPartial::Bits { matrices, item_pos, record_len, sequence } => {
            let n_sources = spec.sources.len();
            let mut per_bit_dists: Vec<Vec<Option<Vec<f32>>>> = Vec::with_capacity(matrices.len());
            let mut acc_sums: Vec<(f32, usize)> = vec![(0.0, 0); n_sources];
            let mut coverage: Vec<f32> = vec![0.0; n_sources];
            for matrix in &matrices {
                let (dists, diags) = run_combiner(matrix, &spec.sources, method);
                for (j, d) in diags.iter().enumerate() {
                    if let Some(a) = d.estimated_accuracy {
                        acc_sums[j].0 += a;
                        acc_sums[j].1 += 1;
                    }
                    coverage[j] = d.coverage;
                }
                per_bit_dists.push(dists);
            }
            let diags = spec
                .sources
                .iter()
                .enumerate()
                .map(|(j, n)| SourceDiagnostics {
                    name: n.clone(),
                    estimated_accuracy: (acc_sums[j].1 > 0)
                        .then(|| acc_sums[j].0 / acc_sums[j].1 as f32),
                    coverage: coverage[j],
                })
                .collect();
            let n_bits = matrices.len();
            let mut per_record: BTreeMap<u32, Vec<Vec<f32>>> = BTreeMap::new();
            let mut skipped: std::collections::BTreeSet<u32> = Default::default();
            for (row, len) in &record_len {
                per_record.insert(*row, vec![vec![0.0; n_bits]; *len as usize]);
            }
            for (item, (row, t)) in item_pos.iter().enumerate() {
                for (b, bit_dists) in per_bit_dists.iter().enumerate() {
                    match &bit_dists[item] {
                        Some(dist) => {
                            per_record.get_mut(row).expect("registered")[*t as usize][b] = dist[1]
                        }
                        None => {
                            skipped.insert(*row);
                        }
                    }
                }
            }
            for (row, rows) in per_record {
                if skipped.contains(&row) {
                    continue;
                }
                labels[row as usize] = Some(if sequence {
                    ProbLabel::SeqBits(rows)
                } else {
                    ProbLabel::Bits(rows.into_iter().next().expect("one element"))
                });
            }
            CombinedSupervision { labels, sources: diags }
        }
    }
}

fn task_spec(store: &ShardedStore, task: &str) -> Result<TaskSpec, CombineError> {
    let schema = store.schema();
    let task_def =
        schema.tasks.get(task).ok_or_else(|| CombineError::UnknownTask(task.to_string()))?;
    let payload_kind = schema
        .payloads
        .get(&task_def.payload)
        .map(|p| p.kind.clone())
        .unwrap_or(PayloadKind::Singleton);
    Ok(TaskSpec {
        name: task.to_string(),
        payload: task_def.payload.clone(),
        payload_kind,
        kind: task_def.kind.clone(),
        sources: store.index().sources_for_task(task),
    })
}

/// Scans the store once (shard-parallel, zero-copy) and builds every
/// task's merged partial.
fn scan_partials(
    store: &ShardedStore,
    specs: &[TaskSpec],
) -> Result<Vec<TaskPartial>, CombineError> {
    type ShardOut = Result<Vec<TaskPartial>, CombineError>;
    let per_shard: Vec<ShardOut> = store
        .par_scan(|scan| {
            let run = || -> Result<Vec<TaskPartial>, CombineError> {
                let mut partials: Vec<TaskPartial> = specs.iter().map(TaskPartial::new).collect();
                let mut votes: Vec<Option<u32>> = Vec::new();
                for (row, view) in scan.views() {
                    let view = view?;
                    for (spec, partial) in specs.iter().zip(&mut partials) {
                        extract_row(spec, row as u32, &view, partial, &mut votes)?;
                    }
                }
                Ok(partials)
            };
            Ok(run())
        })
        .map_err(CombineError::Store)?;
    let mut merged: Vec<TaskPartial> = specs.iter().map(TaskPartial::new).collect();
    for shard in per_shard {
        for (m, p) in merged.iter_mut().zip(shard?) {
            m.append(p);
        }
    }
    Ok(merged)
}

/// Combines supervision for one task by scanning a sealed store
/// (shard-parallel). Produces exactly the result of [`combine_task`] over
/// the equivalent dataset.
pub fn combine_task_store(
    store: &ShardedStore,
    task: &str,
    method: &CombineMethod,
) -> Result<CombinedSupervision, CombineError> {
    let spec = task_spec(store, task)?;
    if let CombineMethod::SingleSource(name) = method {
        if !spec.sources.iter().any(|s| s == name) {
            return Err(CombineError::UnknownSource {
                task: task.to_string(),
                source: name.clone(),
            });
        }
    }
    if spec.sources.is_empty() {
        // Nothing votes for this task: no combined supervision.
        return Ok(CombinedSupervision { labels: vec![None; store.len()], sources: Vec::new() });
    }
    let specs = vec![spec];
    let mut partials = scan_partials(store, &specs)?;
    Ok(finish_task(&specs[0], partials.pop().expect("one partial"), store.len(), method))
}

/// Combines supervision for **every** schema task in one shard-parallel
/// scan of the store — the eager path re-traverses the dataset once per
/// task; this decodes each row exactly once for all of them.
///
/// Tasks with no weak supervision sources (gold-only or unsupervised)
/// appear in the result with all-`None` labels and empty diagnostics —
/// their combiner never runs. Tasks for which a
/// [`CombineMethod::SingleSource`] source never votes are skipped (left
/// out of the result), matching how the pipeline treats per-task source
/// ablations.
pub fn combine_all(
    store: &ShardedStore,
    method: &CombineMethod,
) -> Result<BTreeMap<String, CombinedSupervision>, CombineError> {
    let mut specs = Vec::new();
    let mut results: BTreeMap<String, CombinedSupervision> = BTreeMap::new();
    for task in store.schema().tasks.keys() {
        let spec = task_spec(store, task)?;
        if spec.sources.is_empty() {
            results.insert(
                task.clone(),
                CombinedSupervision { labels: vec![None; store.len()], sources: Vec::new() },
            );
            continue;
        }
        if let CombineMethod::SingleSource(name) = method {
            if !spec.sources.iter().any(|s| s == name) {
                continue;
            }
        }
        specs.push(spec);
    }
    let partials = scan_partials(store, &specs)?;
    let workers = store.scan_workers().min(specs.len());
    if workers > 1 {
        // The per-task combiner runs are independent; fan them out over a
        // bounded worker pool (same shape as the store's shard scans).
        use std::sync::Mutex;
        let queue: Mutex<Vec<(usize, &TaskSpec, TaskPartial)>> = Mutex::new(
            specs.iter().zip(partials).enumerate().map(|(i, (s, p))| (i, s, p)).collect(),
        );
        let slots: Vec<Mutex<Option<CombinedSupervision>>> =
            (0..specs.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let Some((at, spec, partial)) = queue.lock().expect("task queue").pop() else {
                        break;
                    };
                    *slots[at].lock().expect("task slot") =
                        Some(finish_task(spec, partial, store.len(), method));
                });
            }
        });
        results.extend(
            specs
                .iter()
                .map(|s| s.name.clone())
                .zip(slots.into_iter().map(|m| m.into_inner().expect("slot").expect("finished"))),
        );
        return Ok(results);
    }
    results.extend(specs.iter().zip(partials).map(|(spec, partial)| {
        (spec.name.clone(), finish_task(spec, partial, store.len(), method))
    }));
    Ok(results)
}

/// Runs the chosen combiner over a matrix, returning per-item distributions
/// (`None` = the method produces no label for this item, e.g. a
/// single-source combiner whose source abstained) and per-source
/// diagnostics.
fn run_combiner(
    matrix: &LabelMatrix,
    source_names: &[String],
    method: &CombineMethod,
) -> (Vec<Option<Vec<f32>>>, Vec<SourceDiagnostics>) {
    let coverage: Vec<f32> = (0..matrix.n_sources()).map(|j| matrix.coverage(j)).collect();
    match method {
        CombineMethod::MajorityVote => {
            let dists = majority_vote(matrix).into_iter().map(Some).collect();
            let diags = source_names
                .iter()
                .zip(&coverage)
                .map(|(n, &c)| SourceDiagnostics {
                    name: n.clone(),
                    estimated_accuracy: None,
                    coverage: c,
                })
                .collect();
            (dists, diags)
        }
        CombineMethod::LabelModel(config) => {
            let model = LabelModel::fit(matrix, config);
            let dists = model.predict_proba(matrix).into_iter().map(Some).collect();
            let diags = source_names
                .iter()
                .enumerate()
                .map(|(j, n)| SourceDiagnostics {
                    name: n.clone(),
                    estimated_accuracy: Some(model.accuracies()[j]),
                    coverage: coverage[j],
                })
                .collect();
            (dists, diags)
        }
        CombineMethod::SingleSource(name) => {
            let j = source_names.iter().position(|s| s == name).expect("validated above");
            let dists = (0..matrix.n_items())
                .map(|i| {
                    let k = matrix.cardinality(i) as usize;
                    matrix.vote(i, j).map(|v| {
                        let mut d = vec![0.0; k];
                        d[v as usize] = 1.0;
                        d
                    })
                })
                .collect();
            let diags = source_names
                .iter()
                .zip(&coverage)
                .map(|(n, &c)| SourceDiagnostics {
                    name: n.clone(),
                    estimated_accuracy: None,
                    coverage: c,
                })
                .collect();
            (dists, diags)
        }
    }
}

fn class_index(classes: &[String], name: &str, task: &str) -> Result<u32, CombineError> {
    classes.iter().position(|c| c == name).map(|i| i as u32).ok_or_else(|| {
        CombineError::UnknownClass { task: task.to_string(), class: name.to_string() }
    })
}

fn combine_multiclass_singleton(
    dataset: &Dataset,
    task: &str,
    classes: &[String],
    sources: &[String],
    method: &CombineMethod,
) -> Result<CombinedSupervision, CombineError> {
    let k = classes.len() as u32;
    let mut matrix = LabelMatrix::new(sources.len());
    let mut item_record: Vec<usize> = Vec::new();
    for (ri, record) in dataset.records().iter().enumerate() {
        let votes = collect_votes(record, task, sources, |label| match label {
            TaskLabel::MulticlassOne(c) => Some(class_index(classes, c, task)),
            _ => None,
        });
        let votes = transpose_errors(votes)?;
        if votes.iter().any(Option::is_some) {
            matrix.push_item(k, &votes);
            item_record.push(ri);
        }
    }
    let (dists, diags) = run_combiner(&matrix, sources, method);
    let mut labels = vec![None; dataset.len()];
    for (item, ri) in item_record.iter().enumerate() {
        if let Some(dist) = &dists[item] {
            labels[*ri] = Some(ProbLabel::Dist(dist.clone()));
        }
    }
    Ok(CombinedSupervision { labels, sources: diags })
}

fn combine_multiclass_sequence(
    dataset: &Dataset,
    task: &str,
    classes: &[String],
    sources: &[String],
    method: &CombineMethod,
) -> Result<CombinedSupervision, CombineError> {
    let k = classes.len() as u32;
    let payload_name = &dataset.schema().tasks[task].payload;
    let mut matrix = LabelMatrix::new(sources.len());
    // (record, token) per item.
    let mut item_pos: Vec<(usize, usize)> = Vec::new();
    let mut record_len: BTreeMap<usize, usize> = BTreeMap::new();
    for (ri, record) in dataset.records().iter().enumerate() {
        let Some(PayloadValue::Sequence(tokens)) = record.payloads.get(payload_name) else {
            continue;
        };
        if record.weak_sources(task).next().is_none() {
            continue;
        }
        record_len.insert(ri, tokens.len());
        for t in 0..tokens.len() {
            let votes = collect_votes(record, task, sources, |label| match label {
                TaskLabel::MulticlassSeq(cs) => cs.get(t).map(|c| class_index(classes, c, task)),
                _ => None,
            });
            let votes = transpose_errors(votes)?;
            matrix.push_item(k, &votes);
            item_pos.push((ri, t));
        }
    }
    let (dists, diags) = run_combiner(&matrix, sources, method);
    let mut per_record: BTreeMap<usize, Vec<Vec<f32>>> = BTreeMap::new();
    let mut skipped: std::collections::BTreeSet<usize> = Default::default();
    for (ri, len) in &record_len {
        per_record.insert(*ri, vec![Vec::new(); *len]);
    }
    for (item, (ri, t)) in item_pos.iter().enumerate() {
        match &dists[item] {
            Some(dist) => per_record.get_mut(ri).expect("record registered")[*t] = dist.clone(),
            // A source labels a whole sequence or nothing; one missing
            // element means the combiner had nothing for this record.
            None => {
                skipped.insert(*ri);
            }
        }
    }
    let mut labels = vec![None; dataset.len()];
    for (ri, rows) in per_record {
        if !skipped.contains(&ri) {
            labels[ri] = Some(ProbLabel::SeqDist(rows));
        }
    }
    Ok(CombinedSupervision { labels, sources: diags })
}

fn combine_bitvector(
    dataset: &Dataset,
    task: &str,
    bit_names: &[String],
    sources: &[String],
    method: &CombineMethod,
    sequence: bool,
) -> Result<CombinedSupervision, CombineError> {
    let payload_name = &dataset.schema().tasks[task].payload;
    // One binary matrix per bit; items align across bits.
    let mut matrices: Vec<LabelMatrix> =
        (0..bit_names.len()).map(|_| LabelMatrix::new(sources.len())).collect();
    // item -> (record, element index or 0)
    let mut item_pos: Vec<(usize, usize)> = Vec::new();
    let mut record_len: BTreeMap<usize, usize> = BTreeMap::new();

    for (ri, record) in dataset.records().iter().enumerate() {
        if record.weak_sources(task).next().is_none() {
            continue;
        }
        let elements = if sequence {
            match record.payloads.get(payload_name) {
                Some(PayloadValue::Sequence(tokens)) => tokens.len(),
                _ => continue,
            }
        } else {
            1
        };
        record_len.insert(ri, elements);
        for t in 0..elements {
            for (b, bit) in bit_names.iter().enumerate() {
                let votes = collect_votes(record, task, sources, |label| {
                    let bits: Option<&Vec<String>> = match (label, sequence) {
                        (TaskLabel::BitvectorOne(bits), false) => Some(bits),
                        (TaskLabel::BitvectorSeq(rows), true) => rows.get(t),
                        _ => None,
                    };
                    bits.map(|bits| Ok(u32::from(bits.iter().any(|x| x == bit))))
                });
                let votes = transpose_errors(votes)?;
                matrices[b].push_item(2, &votes);
            }
            item_pos.push((ri, t));
        }
    }

    // Combine each bit independently; diagnostics averaged over bits.
    let mut per_bit_dists: Vec<Vec<Option<Vec<f32>>>> = Vec::with_capacity(bit_names.len());
    let mut acc_sums: Vec<(f32, usize)> = vec![(0.0, 0); sources.len()];
    let mut coverage: Vec<f32> = vec![0.0; sources.len()];
    for matrix in &matrices {
        let (dists, diags) = run_combiner(matrix, sources, method);
        for (j, d) in diags.iter().enumerate() {
            if let Some(a) = d.estimated_accuracy {
                acc_sums[j].0 += a;
                acc_sums[j].1 += 1;
            }
            coverage[j] = d.coverage;
        }
        per_bit_dists.push(dists);
    }
    let diags = sources
        .iter()
        .enumerate()
        .map(|(j, n)| SourceDiagnostics {
            name: n.clone(),
            estimated_accuracy: (acc_sums[j].1 > 0).then(|| acc_sums[j].0 / acc_sums[j].1 as f32),
            coverage: coverage[j],
        })
        .collect();

    let mut per_record: BTreeMap<usize, Vec<Vec<f32>>> = BTreeMap::new();
    let mut skipped: std::collections::BTreeSet<usize> = Default::default();
    for (ri, len) in &record_len {
        per_record.insert(*ri, vec![vec![0.0; bit_names.len()]; *len]);
    }
    for (item, (ri, t)) in item_pos.iter().enumerate() {
        for (b, bit_dists) in per_bit_dists.iter().enumerate() {
            // P(bit = 1) is the posterior mass on class 1.
            match &bit_dists[item] {
                Some(dist) => per_record.get_mut(ri).expect("registered")[*t][b] = dist[1],
                None => {
                    skipped.insert(*ri);
                }
            }
        }
    }
    let mut labels = vec![None; dataset.len()];
    for (ri, rows) in per_record {
        if skipped.contains(&ri) {
            continue;
        }
        labels[ri] = Some(if sequence {
            ProbLabel::SeqBits(rows)
        } else {
            ProbLabel::Bits(rows.into_iter().next().expect("one element"))
        });
    }
    Ok(CombinedSupervision { labels, sources: diags })
}

fn combine_select(
    dataset: &Dataset,
    task: &str,
    payload_name: &str,
    sources: &[String],
    method: &CombineMethod,
) -> Result<CombinedSupervision, CombineError> {
    let mut matrix = LabelMatrix::new(sources.len());
    let mut item_record: Vec<(usize, usize)> = Vec::new(); // (record, set size)
    for (ri, record) in dataset.records().iter().enumerate() {
        let Some(PayloadValue::Set(items)) = record.payloads.get(payload_name) else { continue };
        if items.is_empty() {
            continue;
        }
        let votes = collect_votes(record, task, sources, |label| match label {
            TaskLabel::Select(idx) => Some(Ok(*idx as u32)),
            _ => None,
        });
        let votes = transpose_errors(votes)?;
        if votes.iter().any(Option::is_some) {
            matrix.push_item(items.len() as u32, &votes);
            item_record.push((ri, items.len()));
        }
    }
    let (dists, diags) = run_combiner(&matrix, sources, method);
    let mut labels = vec![None; dataset.len()];
    for (item, (ri, _)) in item_record.iter().enumerate() {
        if let Some(dist) = &dists[item] {
            labels[*ri] = Some(ProbLabel::Dist(dist.clone()));
        }
    }
    Ok(CombinedSupervision { labels, sources: diags })
}

/// Extracts one vote per source from a record, using `extract` to map a
/// label to a class index (None = wrong granularity = abstain).
fn collect_votes(
    record: &Record,
    task: &str,
    sources: &[String],
    extract: impl Fn(&TaskLabel) -> Option<Result<u32, CombineError>>,
) -> Vec<Option<Result<u32, CombineError>>> {
    sources
        .iter()
        .map(|source| record.tasks.get(task).and_then(|m| m.get(source)).and_then(&extract))
        .collect()
}

/// Turns per-vote `Option<Result<..>>` into `Result<Vec<Option<..>>>`.
fn transpose_errors(
    votes: Vec<Option<Result<u32, CombineError>>>,
) -> Result<Vec<Option<u32>>, CombineError> {
    votes.into_iter().map(Option::transpose).collect()
}

/// The fraction of supervised training records for a task whose supervision
/// is weak-only (no gold label) — the "Amount of Weak Supervision" column of
/// Figure 3.
pub fn weak_supervision_fraction(dataset: &Dataset, task: &str) -> f32 {
    let mut supervised = 0usize;
    let mut weak_only = 0usize;
    for record in dataset.records() {
        if !record.has_tag(overton_store::TAG_TRAIN) {
            continue;
        }
        let has_weak = record.weak_sources(task).next().is_some();
        let has_gold = record.gold(task).is_some();
        if has_weak || has_gold {
            supervised += 1;
            if !has_gold {
                weak_only += 1;
            }
        }
    }
    if supervised == 0 {
        0.0
    } else {
        weak_only as f32 / supervised as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_store::{example_schema, Record, SetElement};

    fn dataset_with_intent_votes() -> Dataset {
        let mut ds = Dataset::new(example_schema());
        // weak1 is reliable, weak2 is noisy: weak1 says Height, weak2 varies.
        for i in 0..30 {
            let w2 = if i % 3 == 0 { "Age" } else { "Height" };
            let r = Record::new()
                .with_payload("query", PayloadValue::Singleton(format!("q{i}")))
                .with_label("Intent", "weak1", TaskLabel::MulticlassOne("Height".into()))
                .with_label("Intent", "weak2", TaskLabel::MulticlassOne(w2.into()))
                .with_tag("train");
            ds.push(r).unwrap();
        }
        ds
    }

    #[test]
    fn majority_vote_singleton() {
        let ds = dataset_with_intent_votes();
        let combined = combine_task(&ds, "Intent", &CombineMethod::MajorityVote).unwrap();
        assert_eq!(combined.supervised_count(), 30);
        let dist = match combined.labels[1].as_ref().unwrap() {
            ProbLabel::Dist(d) => d,
            other => panic!("expected Dist, got {other:?}"),
        };
        // Height is class 0 in the example schema's Intent classes.
        assert_eq!(dist[0], 1.0);
    }

    #[test]
    fn label_model_singleton_prefers_consistent_source() {
        let ds = dataset_with_intent_votes();
        let combined = combine_task(&ds, "Intent", &CombineMethod::default()).unwrap();
        let weak1 = combined.sources.iter().find(|s| s.name == "weak1").unwrap();
        let weak2 = combined.sources.iter().find(|s| s.name == "weak2").unwrap();
        assert!(weak1.estimated_accuracy.unwrap() > weak2.estimated_accuracy.unwrap());
    }

    #[test]
    fn single_source_method() {
        let ds = dataset_with_intent_votes();
        let combined =
            combine_task(&ds, "Intent", &CombineMethod::SingleSource("weak2".into())).unwrap();
        // Record 0: weak2 voted Age (class 1).
        let dist = match combined.labels[0].as_ref().unwrap() {
            ProbLabel::Dist(d) => d,
            other => panic!("{other:?}"),
        };
        assert_eq!(dist[1], 1.0);
    }

    #[test]
    fn unknown_source_errors() {
        let ds = dataset_with_intent_votes();
        let err = combine_task(&ds, "Intent", &CombineMethod::SingleSource("nope".into()));
        assert!(err.is_err());
    }

    #[test]
    fn unknown_task_errors() {
        let ds = dataset_with_intent_votes();
        assert!(combine_task(&ds, "NotATask", &CombineMethod::MajorityVote).is_err());
    }

    #[test]
    fn records_without_votes_get_none() {
        let mut ds = dataset_with_intent_votes();
        ds.push(Record::new().with_payload("query", PayloadValue::Singleton("unlabeled".into())))
            .unwrap();
        let combined = combine_task(&ds, "Intent", &CombineMethod::MajorityVote).unwrap();
        assert!(combined.labels[30].is_none());
        assert_eq!(combined.supervised_count(), 30);
    }

    #[test]
    fn sequence_task_combination() {
        let mut ds = Dataset::new(example_schema());
        for _ in 0..10 {
            let r = Record::new()
                .with_payload("tokens", PayloadValue::Sequence(vec!["how".into(), "tall".into()]))
                .with_label(
                    "POS",
                    "spacy",
                    TaskLabel::MulticlassSeq(vec!["ADV".into(), "ADJ".into()]),
                )
                .with_label(
                    "POS",
                    "heur",
                    TaskLabel::MulticlassSeq(vec!["ADV".into(), "VERB".into()]),
                )
                .with_tag("train");
            ds.push(r).unwrap();
        }
        let combined = combine_task(&ds, "POS", &CombineMethod::MajorityVote).unwrap();
        let rows = match combined.labels[0].as_ref().unwrap() {
            ProbLabel::SeqDist(rows) => rows,
            other => panic!("{other:?}"),
        };
        assert_eq!(rows.len(), 2);
        // Token 0: both agree on ADV (class 0) -> probability 1.
        assert_eq!(rows[0][0], 1.0);
        // Token 1: split between ADJ (1) and VERB (2).
        assert_eq!(rows[1][1], 0.5);
        assert_eq!(rows[1][2], 0.5);
    }

    #[test]
    fn bitvector_task_combination() {
        let mut ds = Dataset::new(example_schema());
        for _ in 0..10 {
            let r = Record::new()
                .with_payload("tokens", PayloadValue::Sequence(vec!["united".into()]))
                .with_label(
                    "EntityType",
                    "kb1",
                    TaskLabel::BitvectorSeq(vec![vec!["location".into(), "country".into()]]),
                )
                .with_label(
                    "EntityType",
                    "kb2",
                    TaskLabel::BitvectorSeq(vec![vec!["location".into()]]),
                )
                .with_tag("train");
            ds.push(r).unwrap();
        }
        let combined = combine_task(&ds, "EntityType", &CombineMethod::MajorityVote).unwrap();
        let rows = match combined.labels[0].as_ref().unwrap() {
            ProbLabel::SeqBits(rows) => rows,
            other => panic!("{other:?}"),
        };
        // Bits order: ["person", "location", "country", "title", "organization"]
        assert_eq!(rows[0][0], 0.0); // person: both vote 0
        assert_eq!(rows[0][1], 1.0); // location: both vote 1
        assert_eq!(rows[0][2], 0.5); // country: split
    }

    #[test]
    fn select_task_combination() {
        let mut ds = Dataset::new(example_schema());
        for _ in 0..10 {
            let r = Record::new()
                .with_payload("tokens", PayloadValue::Sequence(vec!["a".into(), "b".into()]))
                .with_payload(
                    "entities",
                    PayloadValue::Set(vec![
                        SetElement { id: "E0".into(), span: (0, 1) },
                        SetElement { id: "E1".into(), span: (1, 2) },
                        SetElement { id: "E2".into(), span: (0, 2) },
                    ]),
                )
                .with_label("IntentArg", "w1", TaskLabel::Select(1))
                .with_label("IntentArg", "w2", TaskLabel::Select(1))
                .with_label("IntentArg", "w3", TaskLabel::Select(2))
                .with_tag("train");
            ds.push(r).unwrap();
        }
        let combined = combine_task(&ds, "IntentArg", &CombineMethod::default()).unwrap();
        let dist = match combined.labels[0].as_ref().unwrap() {
            ProbLabel::Dist(d) => d,
            other => panic!("{other:?}"),
        };
        assert_eq!(dist.len(), 3);
        let arg = dist.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(arg, 1);
    }

    /// The store-backed shard-parallel combiner must be bit-for-bit
    /// equivalent to the eager per-task traversal, for every task shape
    /// and combine method.
    fn assert_store_parity(ds: &Dataset, task: &str, method: &CombineMethod) {
        let eager = combine_task(ds, task, method).unwrap();
        for shards in [1, 3] {
            let store = ds.seal_shards(shards).with_scan_workers(2);
            let sharded = combine_task_store(&store, task, method).unwrap();
            assert_eq!(eager, sharded, "task {task}, {shards} shards");
            let all = combine_all(&store, method).unwrap();
            assert_eq!(eager, all[task], "combine_all, task {task}, {shards} shards");
        }
    }

    #[test]
    fn store_combine_matches_eager_for_all_kinds() {
        // Singleton multiclass.
        let ds = dataset_with_intent_votes();
        for method in [
            CombineMethod::MajorityVote,
            CombineMethod::default(),
            CombineMethod::SingleSource("weak2".into()),
        ] {
            assert_store_parity(&ds, "Intent", &method);
        }

        // Sequence multiclass + per-token bitvector + select, mixed with
        // unsupervised records.
        let mut ds = Dataset::new(example_schema());
        for i in 0..12 {
            let r = Record::new()
                .with_payload("tokens", PayloadValue::Sequence(vec!["how".into(), "tall".into()]))
                .with_payload(
                    "entities",
                    PayloadValue::Set(vec![
                        SetElement { id: "E0".into(), span: (0, 1) },
                        SetElement { id: "E1".into(), span: (1, 2) },
                    ]),
                )
                .with_label(
                    "POS",
                    "spacy",
                    TaskLabel::MulticlassSeq(vec!["ADV".into(), "ADJ".into()]),
                )
                .with_label(
                    "EntityType",
                    "kb1",
                    TaskLabel::BitvectorSeq(vec![vec!["location".into()], vec![]]),
                )
                .with_label("IntentArg", "w1", TaskLabel::Select(i % 2))
                .with_label("IntentArg", "w2", TaskLabel::Select(0))
                .with_tag("train");
            ds.push(r).unwrap();
        }
        ds.push(Record::new().with_payload("query", PayloadValue::Singleton("bare".into())))
            .unwrap();
        for task in ["POS", "EntityType", "IntentArg"] {
            assert_store_parity(&ds, task, &CombineMethod::MajorityVote);
            assert_store_parity(&ds, task, &CombineMethod::default());
        }
    }

    #[test]
    fn store_combine_matches_eager_for_wide_bitvector() {
        // More than 64 bit labels: the mask fast path cannot apply, and
        // the fallback must still match the eager combiner exactly.
        let labels: Vec<String> = (0..70).map(|i| format!("\"b{i}\"")).collect();
        let json = format!(
            r#"{{
              "payloads": {{
                "q": {{ "type": "singleton" }},
                "toks": {{ "type": "sequence", "max_length": 8 }}
              }},
              "tasks": {{
                "Wide": {{ "payload": "q", "type": "bitvector", "labels": [{0}] }},
                "WideSeq": {{ "payload": "toks", "type": "bitvector", "labels": [{0}] }}
              }}
            }}"#,
            labels.join(", ")
        );
        let schema = overton_store::Schema::from_json(&json).unwrap();
        let mut ds = Dataset::new(schema);
        for i in 0..8usize {
            let r = Record::new()
                .with_payload("q", PayloadValue::Singleton(format!("q{i}")))
                .with_payload("toks", PayloadValue::Sequence(vec!["a".into(), "b".into()]))
                .with_label(
                    "Wide",
                    "s1",
                    TaskLabel::BitvectorOne(vec![format!("b{i}"), "b65".into()]),
                )
                .with_label("Wide", "s2", TaskLabel::BitvectorOne(vec!["b0".into()]))
                .with_label(
                    "WideSeq",
                    "s1",
                    TaskLabel::BitvectorSeq(vec![vec![format!("b{}", 60 + i)], vec!["b69".into()]]),
                )
                .with_tag("train");
            ds.push(r).unwrap();
        }
        assert_store_parity(&ds, "Wide", &CombineMethod::MajorityVote);
        assert_store_parity(&ds, "WideSeq", &CombineMethod::MajorityVote);
    }

    #[test]
    fn store_combine_unknown_task_and_source_error() {
        let ds = dataset_with_intent_votes();
        let store = ds.seal_shards(2);
        assert!(combine_task_store(&store, "NotATask", &CombineMethod::MajorityVote).is_err());
        let err = combine_task_store(&store, "Intent", &CombineMethod::SingleSource("nope".into()));
        assert!(matches!(err, Err(CombineError::UnknownSource { .. })));
        // combine_all skips tasks lacking the single source instead of
        // erroring; tasks with no weak sources at all appear as empty
        // placeholders (no combiner ran).
        let all = combine_all(&store, &CombineMethod::SingleSource("nope".into())).unwrap();
        assert!(!all.contains_key("Intent"));
        assert!(all.values().all(|c| c.sources.is_empty() && c.supervised_count() == 0));
    }

    #[test]
    fn gold_only_tasks_get_empty_placeholder() {
        // A task supervised only by gold: present in combine_all's result
        // with all-None labels and no diagnostics, and combinable via
        // combine_task_store without running a combiner.
        let mut ds = Dataset::new(example_schema());
        for i in 0..5 {
            ds.push(
                Record::new()
                    .with_payload("query", PayloadValue::Singleton(format!("q{i}")))
                    .with_label("Intent", "gold", TaskLabel::MulticlassOne("Height".into()))
                    .with_tag("train"),
            )
            .unwrap();
        }
        let store = ds.seal_shards(2);
        let all = combine_all(&store, &CombineMethod::default()).unwrap();
        let intent = &all["Intent"];
        assert_eq!(intent.supervised_count(), 0);
        assert!(intent.sources.is_empty());
        assert_eq!(intent.labels.len(), 5);
        let single = combine_task_store(&store, "Intent", &CombineMethod::default()).unwrap();
        assert_eq!(&single, intent);
    }

    #[test]
    fn weak_fraction_counts_gold() {
        let mut ds = dataset_with_intent_votes();
        // Add 10 train records that ALSO carry gold labels.
        for i in 0..10 {
            let r = Record::new()
                .with_payload("query", PayloadValue::Singleton(format!("g{i}")))
                .with_label("Intent", "gold", TaskLabel::MulticlassOne("Height".into()))
                .with_label("Intent", "weak1", TaskLabel::MulticlassOne("Height".into()))
                .with_tag("train");
            ds.push(r).unwrap();
        }
        let frac = weak_supervision_fraction(&ds, "Intent");
        assert!((frac - 0.75).abs() < 1e-6, "fraction {frac}");
    }
}

//! Combining multi-source supervision over a dataset, task by task.
//!
//! This is the "Combine Supervision" stage of Figure 1: for each task, the
//! (conflicting, incomplete) source votes are flattened into label matrices
//! at the task's granularity, a combiner resolves them, and the resulting
//! probabilistic labels are attached back to records for training.

use crate::label_model::{LabelModel, LabelModelConfig};
use crate::majority::majority_vote;
use crate::matrix::LabelMatrix;
use crate::prob::ProbLabel;
use overton_store::{Dataset, PayloadKind, PayloadValue, Record, TaskKind, TaskLabel};
use std::collections::BTreeMap;
use std::fmt;

/// How to resolve conflicting sources.
#[derive(Debug, Clone)]
pub enum CombineMethod {
    /// Unweighted majority vote (baseline).
    MajorityVote,
    /// Generative label model fit by EM (the Overton/Snorkel approach).
    LabelModel(LabelModelConfig),
    /// Trust a single named source, ignoring all others (ablation).
    SingleSource(String),
}

impl Default for CombineMethod {
    fn default() -> Self {
        CombineMethod::LabelModel(LabelModelConfig::default())
    }
}

/// Errors from supervision combination.
#[derive(Debug)]
pub enum CombineError {
    /// The task is not in the dataset's schema.
    UnknownTask(String),
    /// A label mentions a class missing from the task vocabulary.
    UnknownClass {
        /// Task whose vocabulary was violated.
        task: String,
        /// The out-of-vocabulary class name.
        class: String,
    },
    /// Requested source never appears for the task.
    UnknownSource {
        /// Task that was being combined.
        task: String,
        /// The missing source name.
        source: String,
    },
}

impl fmt::Display for CombineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CombineError::UnknownTask(t) => write!(f, "unknown task '{t}'"),
            CombineError::UnknownClass { task, class } => {
                write!(f, "task '{task}': label '{class}' not in vocabulary")
            }
            CombineError::UnknownSource { task, source } => {
                write!(f, "task '{task}': source '{source}' has no votes")
            }
        }
    }
}

impl std::error::Error for CombineError {}

/// Per-source diagnostics from a combination run.
#[derive(Debug, Clone)]
pub struct SourceDiagnostics {
    /// Source name.
    pub name: String,
    /// Estimated accuracy (label model) or `None` for other methods.
    pub estimated_accuracy: Option<f32>,
    /// Fraction of items the source voted on.
    pub coverage: f32,
}

/// The result of combining supervision for one task.
#[derive(Debug, Clone)]
pub struct CombinedSupervision {
    /// One entry per dataset record: `None` when the record carries no
    /// supervision for this task.
    pub labels: Vec<Option<ProbLabel>>,
    /// Per-source diagnostics (accuracy estimates feed the monitoring UI).
    pub sources: Vec<SourceDiagnostics>,
}

impl CombinedSupervision {
    /// Number of records with supervision.
    pub fn supervised_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }
}

/// Combines supervision for `task` across the whole dataset.
pub fn combine_task(
    dataset: &Dataset,
    task: &str,
    method: &CombineMethod,
) -> Result<CombinedSupervision, CombineError> {
    let schema = dataset.schema();
    let task_def =
        schema.tasks.get(task).ok_or_else(|| CombineError::UnknownTask(task.to_string()))?;
    let payload_kind = schema
        .payloads
        .get(&task_def.payload)
        .map(|p| p.kind.clone())
        .unwrap_or(PayloadKind::Singleton);

    let sources = dataset.sources_for_task(task);
    if let CombineMethod::SingleSource(name) = method {
        if !sources.iter().any(|s| s == name) {
            return Err(CombineError::UnknownSource {
                task: task.to_string(),
                source: name.clone(),
            });
        }
    }

    match (&task_def.kind, &payload_kind) {
        (TaskKind::Multiclass { classes }, PayloadKind::Singleton) => {
            combine_multiclass_singleton(dataset, task, classes, &sources, method)
        }
        (TaskKind::Multiclass { classes }, PayloadKind::Sequence { .. }) => {
            combine_multiclass_sequence(dataset, task, classes, &sources, method)
        }
        (TaskKind::Bitvector { labels }, PayloadKind::Singleton) => {
            combine_bitvector(dataset, task, labels, &sources, method, false)
        }
        (TaskKind::Bitvector { labels }, PayloadKind::Sequence { .. }) => {
            combine_bitvector(dataset, task, labels, &sources, method, true)
        }
        (TaskKind::Select, _) => combine_select(dataset, task, &task_def.payload, &sources, method),
        (kind, payload) => {
            // Multiclass/bitvector over a set payload is not used by the
            // paper's schema; treat per-element like a sequence if needed.
            unreachable!("unsupported task/payload combination: {kind:?} over {payload:?}")
        }
    }
}

/// Runs the chosen combiner over a matrix, returning per-item distributions
/// (`None` = the method produces no label for this item, e.g. a
/// single-source combiner whose source abstained) and per-source
/// diagnostics.
fn run_combiner(
    matrix: &LabelMatrix,
    source_names: &[String],
    method: &CombineMethod,
) -> (Vec<Option<Vec<f32>>>, Vec<SourceDiagnostics>) {
    let coverage: Vec<f32> = (0..matrix.n_sources()).map(|j| matrix.coverage(j)).collect();
    match method {
        CombineMethod::MajorityVote => {
            let dists = majority_vote(matrix).into_iter().map(Some).collect();
            let diags = source_names
                .iter()
                .zip(&coverage)
                .map(|(n, &c)| SourceDiagnostics {
                    name: n.clone(),
                    estimated_accuracy: None,
                    coverage: c,
                })
                .collect();
            (dists, diags)
        }
        CombineMethod::LabelModel(config) => {
            let model = LabelModel::fit(matrix, config);
            let dists = model.predict_proba(matrix).into_iter().map(Some).collect();
            let diags = source_names
                .iter()
                .enumerate()
                .map(|(j, n)| SourceDiagnostics {
                    name: n.clone(),
                    estimated_accuracy: Some(model.accuracies()[j]),
                    coverage: coverage[j],
                })
                .collect();
            (dists, diags)
        }
        CombineMethod::SingleSource(name) => {
            let j = source_names.iter().position(|s| s == name).expect("validated above");
            let dists = (0..matrix.n_items())
                .map(|i| {
                    let k = matrix.cardinality(i) as usize;
                    matrix.vote(i, j).map(|v| {
                        let mut d = vec![0.0; k];
                        d[v as usize] = 1.0;
                        d
                    })
                })
                .collect();
            let diags = source_names
                .iter()
                .zip(&coverage)
                .map(|(n, &c)| SourceDiagnostics {
                    name: n.clone(),
                    estimated_accuracy: None,
                    coverage: c,
                })
                .collect();
            (dists, diags)
        }
    }
}

fn class_index(classes: &[String], name: &str, task: &str) -> Result<u32, CombineError> {
    classes.iter().position(|c| c == name).map(|i| i as u32).ok_or_else(|| {
        CombineError::UnknownClass { task: task.to_string(), class: name.to_string() }
    })
}

fn combine_multiclass_singleton(
    dataset: &Dataset,
    task: &str,
    classes: &[String],
    sources: &[String],
    method: &CombineMethod,
) -> Result<CombinedSupervision, CombineError> {
    let k = classes.len() as u32;
    let mut matrix = LabelMatrix::new(sources.len());
    let mut item_record: Vec<usize> = Vec::new();
    for (ri, record) in dataset.records().iter().enumerate() {
        let votes = collect_votes(record, task, sources, |label| match label {
            TaskLabel::MulticlassOne(c) => Some(class_index(classes, c, task)),
            _ => None,
        });
        let votes = transpose_errors(votes)?;
        if votes.iter().any(Option::is_some) {
            matrix.push_item(k, &votes);
            item_record.push(ri);
        }
    }
    let (dists, diags) = run_combiner(&matrix, sources, method);
    let mut labels = vec![None; dataset.len()];
    for (item, ri) in item_record.iter().enumerate() {
        if let Some(dist) = &dists[item] {
            labels[*ri] = Some(ProbLabel::Dist(dist.clone()));
        }
    }
    Ok(CombinedSupervision { labels, sources: diags })
}

fn combine_multiclass_sequence(
    dataset: &Dataset,
    task: &str,
    classes: &[String],
    sources: &[String],
    method: &CombineMethod,
) -> Result<CombinedSupervision, CombineError> {
    let k = classes.len() as u32;
    let payload_name = &dataset.schema().tasks[task].payload;
    let mut matrix = LabelMatrix::new(sources.len());
    // (record, token) per item.
    let mut item_pos: Vec<(usize, usize)> = Vec::new();
    let mut record_len: BTreeMap<usize, usize> = BTreeMap::new();
    for (ri, record) in dataset.records().iter().enumerate() {
        let Some(PayloadValue::Sequence(tokens)) = record.payloads.get(payload_name) else {
            continue;
        };
        if record.weak_sources(task).next().is_none() {
            continue;
        }
        record_len.insert(ri, tokens.len());
        for t in 0..tokens.len() {
            let votes = collect_votes(record, task, sources, |label| match label {
                TaskLabel::MulticlassSeq(cs) => cs.get(t).map(|c| class_index(classes, c, task)),
                _ => None,
            });
            let votes = transpose_errors(votes)?;
            matrix.push_item(k, &votes);
            item_pos.push((ri, t));
        }
    }
    let (dists, diags) = run_combiner(&matrix, sources, method);
    let mut per_record: BTreeMap<usize, Vec<Vec<f32>>> = BTreeMap::new();
    let mut skipped: std::collections::BTreeSet<usize> = Default::default();
    for (ri, len) in &record_len {
        per_record.insert(*ri, vec![Vec::new(); *len]);
    }
    for (item, (ri, t)) in item_pos.iter().enumerate() {
        match &dists[item] {
            Some(dist) => per_record.get_mut(ri).expect("record registered")[*t] = dist.clone(),
            // A source labels a whole sequence or nothing; one missing
            // element means the combiner had nothing for this record.
            None => {
                skipped.insert(*ri);
            }
        }
    }
    let mut labels = vec![None; dataset.len()];
    for (ri, rows) in per_record {
        if !skipped.contains(&ri) {
            labels[ri] = Some(ProbLabel::SeqDist(rows));
        }
    }
    Ok(CombinedSupervision { labels, sources: diags })
}

fn combine_bitvector(
    dataset: &Dataset,
    task: &str,
    bit_names: &[String],
    sources: &[String],
    method: &CombineMethod,
    sequence: bool,
) -> Result<CombinedSupervision, CombineError> {
    let payload_name = &dataset.schema().tasks[task].payload;
    // One binary matrix per bit; items align across bits.
    let mut matrices: Vec<LabelMatrix> =
        (0..bit_names.len()).map(|_| LabelMatrix::new(sources.len())).collect();
    // item -> (record, element index or 0)
    let mut item_pos: Vec<(usize, usize)> = Vec::new();
    let mut record_len: BTreeMap<usize, usize> = BTreeMap::new();

    for (ri, record) in dataset.records().iter().enumerate() {
        if record.weak_sources(task).next().is_none() {
            continue;
        }
        let elements = if sequence {
            match record.payloads.get(payload_name) {
                Some(PayloadValue::Sequence(tokens)) => tokens.len(),
                _ => continue,
            }
        } else {
            1
        };
        record_len.insert(ri, elements);
        for t in 0..elements {
            for (b, bit) in bit_names.iter().enumerate() {
                let votes = collect_votes(record, task, sources, |label| {
                    let bits: Option<&Vec<String>> = match (label, sequence) {
                        (TaskLabel::BitvectorOne(bits), false) => Some(bits),
                        (TaskLabel::BitvectorSeq(rows), true) => rows.get(t),
                        _ => None,
                    };
                    bits.map(|bits| Ok(u32::from(bits.iter().any(|x| x == bit))))
                });
                let votes = transpose_errors(votes)?;
                matrices[b].push_item(2, &votes);
            }
            item_pos.push((ri, t));
        }
    }

    // Combine each bit independently; diagnostics averaged over bits.
    let mut per_bit_dists: Vec<Vec<Option<Vec<f32>>>> = Vec::with_capacity(bit_names.len());
    let mut acc_sums: Vec<(f32, usize)> = vec![(0.0, 0); sources.len()];
    let mut coverage: Vec<f32> = vec![0.0; sources.len()];
    for matrix in &matrices {
        let (dists, diags) = run_combiner(matrix, sources, method);
        for (j, d) in diags.iter().enumerate() {
            if let Some(a) = d.estimated_accuracy {
                acc_sums[j].0 += a;
                acc_sums[j].1 += 1;
            }
            coverage[j] = d.coverage;
        }
        per_bit_dists.push(dists);
    }
    let diags = sources
        .iter()
        .enumerate()
        .map(|(j, n)| SourceDiagnostics {
            name: n.clone(),
            estimated_accuracy: (acc_sums[j].1 > 0).then(|| acc_sums[j].0 / acc_sums[j].1 as f32),
            coverage: coverage[j],
        })
        .collect();

    let mut per_record: BTreeMap<usize, Vec<Vec<f32>>> = BTreeMap::new();
    let mut skipped: std::collections::BTreeSet<usize> = Default::default();
    for (ri, len) in &record_len {
        per_record.insert(*ri, vec![vec![0.0; bit_names.len()]; *len]);
    }
    for (item, (ri, t)) in item_pos.iter().enumerate() {
        for (b, bit_dists) in per_bit_dists.iter().enumerate() {
            // P(bit = 1) is the posterior mass on class 1.
            match &bit_dists[item] {
                Some(dist) => per_record.get_mut(ri).expect("registered")[*t][b] = dist[1],
                None => {
                    skipped.insert(*ri);
                }
            }
        }
    }
    let mut labels = vec![None; dataset.len()];
    for (ri, rows) in per_record {
        if skipped.contains(&ri) {
            continue;
        }
        labels[ri] = Some(if sequence {
            ProbLabel::SeqBits(rows)
        } else {
            ProbLabel::Bits(rows.into_iter().next().expect("one element"))
        });
    }
    Ok(CombinedSupervision { labels, sources: diags })
}

fn combine_select(
    dataset: &Dataset,
    task: &str,
    payload_name: &str,
    sources: &[String],
    method: &CombineMethod,
) -> Result<CombinedSupervision, CombineError> {
    let mut matrix = LabelMatrix::new(sources.len());
    let mut item_record: Vec<(usize, usize)> = Vec::new(); // (record, set size)
    for (ri, record) in dataset.records().iter().enumerate() {
        let Some(PayloadValue::Set(items)) = record.payloads.get(payload_name) else { continue };
        if items.is_empty() {
            continue;
        }
        let votes = collect_votes(record, task, sources, |label| match label {
            TaskLabel::Select(idx) => Some(Ok(*idx as u32)),
            _ => None,
        });
        let votes = transpose_errors(votes)?;
        if votes.iter().any(Option::is_some) {
            matrix.push_item(items.len() as u32, &votes);
            item_record.push((ri, items.len()));
        }
    }
    let (dists, diags) = run_combiner(&matrix, sources, method);
    let mut labels = vec![None; dataset.len()];
    for (item, (ri, _)) in item_record.iter().enumerate() {
        if let Some(dist) = &dists[item] {
            labels[*ri] = Some(ProbLabel::Dist(dist.clone()));
        }
    }
    Ok(CombinedSupervision { labels, sources: diags })
}

/// Extracts one vote per source from a record, using `extract` to map a
/// label to a class index (None = wrong granularity = abstain).
fn collect_votes(
    record: &Record,
    task: &str,
    sources: &[String],
    extract: impl Fn(&TaskLabel) -> Option<Result<u32, CombineError>>,
) -> Vec<Option<Result<u32, CombineError>>> {
    sources
        .iter()
        .map(|source| record.tasks.get(task).and_then(|m| m.get(source)).and_then(&extract))
        .collect()
}

/// Turns per-vote `Option<Result<..>>` into `Result<Vec<Option<..>>>`.
fn transpose_errors(
    votes: Vec<Option<Result<u32, CombineError>>>,
) -> Result<Vec<Option<u32>>, CombineError> {
    votes.into_iter().map(Option::transpose).collect()
}

/// The fraction of supervised training records for a task whose supervision
/// is weak-only (no gold label) — the "Amount of Weak Supervision" column of
/// Figure 3.
pub fn weak_supervision_fraction(dataset: &Dataset, task: &str) -> f32 {
    let mut supervised = 0usize;
    let mut weak_only = 0usize;
    for record in dataset.records() {
        if !record.has_tag(overton_store::TAG_TRAIN) {
            continue;
        }
        let has_weak = record.weak_sources(task).next().is_some();
        let has_gold = record.gold(task).is_some();
        if has_weak || has_gold {
            supervised += 1;
            if !has_gold {
                weak_only += 1;
            }
        }
    }
    if supervised == 0 {
        0.0
    } else {
        weak_only as f32 / supervised as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_store::{example_schema, Record, SetElement};

    fn dataset_with_intent_votes() -> Dataset {
        let mut ds = Dataset::new(example_schema());
        // weak1 is reliable, weak2 is noisy: weak1 says Height, weak2 varies.
        for i in 0..30 {
            let w2 = if i % 3 == 0 { "Age" } else { "Height" };
            let r = Record::new()
                .with_payload("query", PayloadValue::Singleton(format!("q{i}")))
                .with_label("Intent", "weak1", TaskLabel::MulticlassOne("Height".into()))
                .with_label("Intent", "weak2", TaskLabel::MulticlassOne(w2.into()))
                .with_tag("train");
            ds.push(r).unwrap();
        }
        ds
    }

    #[test]
    fn majority_vote_singleton() {
        let ds = dataset_with_intent_votes();
        let combined = combine_task(&ds, "Intent", &CombineMethod::MajorityVote).unwrap();
        assert_eq!(combined.supervised_count(), 30);
        let dist = match combined.labels[1].as_ref().unwrap() {
            ProbLabel::Dist(d) => d,
            other => panic!("expected Dist, got {other:?}"),
        };
        // Height is class 0 in the example schema's Intent classes.
        assert_eq!(dist[0], 1.0);
    }

    #[test]
    fn label_model_singleton_prefers_consistent_source() {
        let ds = dataset_with_intent_votes();
        let combined = combine_task(&ds, "Intent", &CombineMethod::default()).unwrap();
        let weak1 = combined.sources.iter().find(|s| s.name == "weak1").unwrap();
        let weak2 = combined.sources.iter().find(|s| s.name == "weak2").unwrap();
        assert!(weak1.estimated_accuracy.unwrap() > weak2.estimated_accuracy.unwrap());
    }

    #[test]
    fn single_source_method() {
        let ds = dataset_with_intent_votes();
        let combined =
            combine_task(&ds, "Intent", &CombineMethod::SingleSource("weak2".into())).unwrap();
        // Record 0: weak2 voted Age (class 1).
        let dist = match combined.labels[0].as_ref().unwrap() {
            ProbLabel::Dist(d) => d,
            other => panic!("{other:?}"),
        };
        assert_eq!(dist[1], 1.0);
    }

    #[test]
    fn unknown_source_errors() {
        let ds = dataset_with_intent_votes();
        let err = combine_task(&ds, "Intent", &CombineMethod::SingleSource("nope".into()));
        assert!(err.is_err());
    }

    #[test]
    fn unknown_task_errors() {
        let ds = dataset_with_intent_votes();
        assert!(combine_task(&ds, "NotATask", &CombineMethod::MajorityVote).is_err());
    }

    #[test]
    fn records_without_votes_get_none() {
        let mut ds = dataset_with_intent_votes();
        ds.push(Record::new().with_payload("query", PayloadValue::Singleton("unlabeled".into())))
            .unwrap();
        let combined = combine_task(&ds, "Intent", &CombineMethod::MajorityVote).unwrap();
        assert!(combined.labels[30].is_none());
        assert_eq!(combined.supervised_count(), 30);
    }

    #[test]
    fn sequence_task_combination() {
        let mut ds = Dataset::new(example_schema());
        for _ in 0..10 {
            let r = Record::new()
                .with_payload("tokens", PayloadValue::Sequence(vec!["how".into(), "tall".into()]))
                .with_label(
                    "POS",
                    "spacy",
                    TaskLabel::MulticlassSeq(vec!["ADV".into(), "ADJ".into()]),
                )
                .with_label(
                    "POS",
                    "heur",
                    TaskLabel::MulticlassSeq(vec!["ADV".into(), "VERB".into()]),
                )
                .with_tag("train");
            ds.push(r).unwrap();
        }
        let combined = combine_task(&ds, "POS", &CombineMethod::MajorityVote).unwrap();
        let rows = match combined.labels[0].as_ref().unwrap() {
            ProbLabel::SeqDist(rows) => rows,
            other => panic!("{other:?}"),
        };
        assert_eq!(rows.len(), 2);
        // Token 0: both agree on ADV (class 0) -> probability 1.
        assert_eq!(rows[0][0], 1.0);
        // Token 1: split between ADJ (1) and VERB (2).
        assert_eq!(rows[1][1], 0.5);
        assert_eq!(rows[1][2], 0.5);
    }

    #[test]
    fn bitvector_task_combination() {
        let mut ds = Dataset::new(example_schema());
        for _ in 0..10 {
            let r = Record::new()
                .with_payload("tokens", PayloadValue::Sequence(vec!["united".into()]))
                .with_label(
                    "EntityType",
                    "kb1",
                    TaskLabel::BitvectorSeq(vec![vec!["location".into(), "country".into()]]),
                )
                .with_label(
                    "EntityType",
                    "kb2",
                    TaskLabel::BitvectorSeq(vec![vec!["location".into()]]),
                )
                .with_tag("train");
            ds.push(r).unwrap();
        }
        let combined = combine_task(&ds, "EntityType", &CombineMethod::MajorityVote).unwrap();
        let rows = match combined.labels[0].as_ref().unwrap() {
            ProbLabel::SeqBits(rows) => rows,
            other => panic!("{other:?}"),
        };
        // Bits order: ["person", "location", "country", "title", "organization"]
        assert_eq!(rows[0][0], 0.0); // person: both vote 0
        assert_eq!(rows[0][1], 1.0); // location: both vote 1
        assert_eq!(rows[0][2], 0.5); // country: split
    }

    #[test]
    fn select_task_combination() {
        let mut ds = Dataset::new(example_schema());
        for _ in 0..10 {
            let r = Record::new()
                .with_payload("tokens", PayloadValue::Sequence(vec!["a".into(), "b".into()]))
                .with_payload(
                    "entities",
                    PayloadValue::Set(vec![
                        SetElement { id: "E0".into(), span: (0, 1) },
                        SetElement { id: "E1".into(), span: (1, 2) },
                        SetElement { id: "E2".into(), span: (0, 2) },
                    ]),
                )
                .with_label("IntentArg", "w1", TaskLabel::Select(1))
                .with_label("IntentArg", "w2", TaskLabel::Select(1))
                .with_label("IntentArg", "w3", TaskLabel::Select(2))
                .with_tag("train");
            ds.push(r).unwrap();
        }
        let combined = combine_task(&ds, "IntentArg", &CombineMethod::default()).unwrap();
        let dist = match combined.labels[0].as_ref().unwrap() {
            ProbLabel::Dist(d) => d,
            other => panic!("{other:?}"),
        };
        assert_eq!(dist.len(), 3);
        let arg = dist.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(arg, 1);
    }

    #[test]
    fn weak_fraction_counts_gold() {
        let mut ds = dataset_with_intent_votes();
        // Add 10 train records that ALSO carry gold labels.
        for i in 0..10 {
            let r = Record::new()
                .with_payload("query", PayloadValue::Singleton(format!("g{i}")))
                .with_label("Intent", "gold", TaskLabel::MulticlassOne("Height".into()))
                .with_label("Intent", "weak1", TaskLabel::MulticlassOne("Height".into()))
                .with_tag("train");
            ds.push(r).unwrap();
        }
        let frac = weak_supervision_fraction(&ds, "Intent");
        assert!((frac - 0.75).abs() < 1e-6, "fraction {frac}");
    }
}

//! The generative label model (data programming, Ratner et al. NIPS'16).
//!
//! Sources are modeled as conditionally independent given the true label,
//! with a per-source **accuracy** (probability of voting the truth when not
//! abstaining; errors are spread uniformly over the other classes) and
//! **propensity** (probability of voting at all). Parameters are estimated
//! by EM from the label matrix alone — no ground truth — and the resulting
//! posterior over each item's true label becomes the training distribution
//! ("Overton estimates the accuracy of these sources and then uses these
//! accuracies to compute a probability that each training point is
//! correct", §2.2).

use crate::matrix::LabelMatrix;

/// Hyperparameters for [`LabelModel::fit`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LabelModelConfig {
    /// Maximum EM iterations.
    pub max_iter: usize,
    /// Stop when the largest parameter change falls below this.
    pub tol: f32,
    /// Beta-prior pseudo-counts smoothing accuracy estimates (guards against
    /// degenerate 0/1 accuracies on small data).
    pub smoothing: f32,
    /// Initial accuracy assumed for every source (better than chance).
    pub init_accuracy: f32,
    /// Whether to estimate the class balance (only possible with uniform
    /// cardinality); otherwise a uniform prior is used.
    pub estimate_balance: bool,
}

impl Default for LabelModelConfig {
    fn default() -> Self {
        Self {
            max_iter: 100,
            tol: 1e-5,
            smoothing: 1.0,
            init_accuracy: 0.7,
            estimate_balance: true,
        }
    }
}

/// A fitted label model.
#[derive(Debug, Clone)]
pub struct LabelModel {
    accuracies: Vec<f32>,
    propensities: Vec<f32>,
    class_balance: Option<Vec<f32>>,
    iterations: usize,
}

impl LabelModel {
    /// Fits the model to a label matrix by EM.
    ///
    /// # Panics
    /// Panics if the matrix has no sources.
    pub fn fit(matrix: &LabelMatrix, config: &LabelModelConfig) -> Self {
        assert!(matrix.n_sources() > 0, "label model needs at least one source");
        let m = matrix.n_sources();
        let uniform_k = matrix.uniform_cardinality();
        let mut accuracies = vec![config.init_accuracy.clamp(0.05, 0.95); m];
        let mut balance: Option<Vec<f32>> = match (config.estimate_balance, uniform_k) {
            (true, Some(k)) if k > 0 => Some(vec![1.0 / k as f32; k as usize]),
            _ => None,
        };
        let propensities: Vec<f32> = (0..m).map(|j| matrix.coverage(j)).collect();

        let mut iterations = 0;
        for _ in 0..config.max_iter {
            iterations += 1;
            let posteriors = posterior_given(matrix, &accuracies, balance.as_deref());

            // M-step: accuracy_j = E[#correct votes] / #votes (+ smoothing).
            let mut new_acc = vec![0.0f32; m];
            let mut votes = vec![0.0f32; m];
            for (i, post) in posteriors.iter().enumerate() {
                for (j, vote) in matrix.votes(i).iter().enumerate() {
                    if let Some(v) = vote {
                        new_acc[j] += post[*v as usize];
                        votes[j] += 1.0;
                    }
                }
            }
            let mut max_delta = 0.0f32;
            for j in 0..m {
                let est = (new_acc[j] + config.smoothing) / (votes[j] + 2.0 * config.smoothing);
                let est = est.clamp(0.01, 0.99);
                max_delta = max_delta.max((est - accuracies[j]).abs());
                accuracies[j] = est;
            }
            if let Some(bal) = &mut balance {
                let k = bal.len();
                let mut new_bal = vec![config.smoothing; k];
                for post in &posteriors {
                    for (c, &p) in post.iter().enumerate() {
                        new_bal[c] += p;
                    }
                }
                let total: f32 = new_bal.iter().sum();
                for (b, nb) in bal.iter_mut().zip(&new_bal) {
                    let est = nb / total;
                    max_delta = max_delta.max((est - *b).abs());
                    *b = est;
                }
            }
            if max_delta < config.tol {
                break;
            }
        }
        Self { accuracies, propensities, class_balance: balance, iterations }
    }

    /// Estimated per-source accuracies.
    pub fn accuracies(&self) -> &[f32] {
        &self.accuracies
    }

    /// Observed per-source propensities (vote rates).
    pub fn propensities(&self) -> &[f32] {
        &self.propensities
    }

    /// Estimated class balance (None when cardinality varies per item).
    pub fn class_balance(&self) -> Option<&[f32]> {
        self.class_balance.as_deref()
    }

    /// EM iterations used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Posterior distribution over each item's true label.
    pub fn predict_proba(&self, matrix: &LabelMatrix) -> Vec<Vec<f32>> {
        posterior_given(matrix, &self.accuracies, self.class_balance.as_deref())
    }

    /// Hard posterior predictions (argmax; first class on ties).
    pub fn predict(&self, matrix: &LabelMatrix) -> Vec<u32> {
        self.predict_proba(matrix)
            .iter()
            .map(|dist| {
                let mut best = 0usize;
                for (c, &p) in dist.iter().enumerate() {
                    if p > dist[best] {
                        best = c;
                    }
                }
                best as u32
            })
            .collect()
    }
}

/// E-step: `P(y_i = c | votes, params)` in log space.
fn posterior_given(
    matrix: &LabelMatrix,
    accuracies: &[f32],
    balance: Option<&[f32]>,
) -> Vec<Vec<f32>> {
    (0..matrix.n_items())
        .map(|i| {
            let k = matrix.cardinality(i) as usize;
            let mut log_post: Vec<f64> = (0..k)
                .map(|c| match balance {
                    Some(b) if b.len() == k => (b[c].max(1e-9) as f64).ln(),
                    _ => (1.0 / k as f64).ln(),
                })
                .collect();
            for (j, vote) in matrix.votes(i).iter().enumerate() {
                let Some(v) = vote else { continue };
                let acc = accuracies[j] as f64;
                // With a single candidate the vote carries no information.
                if k <= 1 {
                    continue;
                }
                let wrong = ((1.0 - acc) / (k as f64 - 1.0)).max(1e-12);
                for (c, lp) in log_post.iter_mut().enumerate() {
                    *lp += if c as u32 == *v { acc.max(1e-12).ln() } else { wrong.ln() };
                }
            }
            // Normalize stably.
            let max = log_post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut probs: Vec<f64> = log_post.iter().map(|lp| (lp - max).exp()).collect();
            let z: f64 = probs.iter().sum();
            for p in &mut probs {
                *p /= z;
            }
            probs.into_iter().map(|p| p as f32).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Generates a synthetic label matrix from known source accuracies.
    /// Returns (matrix, true labels).
    pub(crate) fn synth(
        n: usize,
        k: u32,
        accs: &[f32],
        coverage: &[f32],
        seed: u64,
    ) -> (LabelMatrix, Vec<u32>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut matrix = LabelMatrix::new(accs.len());
        let mut truth = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.gen_range(0..k);
            truth.push(y);
            let votes: Vec<Option<u32>> = accs
                .iter()
                .zip(coverage)
                .map(|(&a, &c)| {
                    if rng.gen::<f32>() > c {
                        return None;
                    }
                    if rng.gen::<f32>() < a {
                        Some(y)
                    } else {
                        // Uniform wrong class.
                        let mut w = rng.gen_range(0..k - 1);
                        if w >= y {
                            w += 1;
                        }
                        Some(w)
                    }
                })
                .collect();
            matrix.push_item(k, &votes);
        }
        (matrix, truth)
    }

    fn accuracy(pred: &[u32], truth: &[u32]) -> f32 {
        let correct = pred.iter().zip(truth).filter(|(a, b)| a == b).count();
        correct as f32 / truth.len() as f32
    }

    #[test]
    fn recovers_source_accuracies() {
        let true_accs = [0.9, 0.7, 0.55];
        let (matrix, _) = synth(4000, 3, &true_accs, &[0.9, 0.8, 0.7], 7);
        let model = LabelModel::fit(&matrix, &LabelModelConfig::default());
        for (est, truth) in model.accuracies().iter().zip(&true_accs) {
            assert!(
                (est - truth).abs() < 0.05,
                "estimated {est}, true {truth} (all: {:?})",
                model.accuracies()
            );
        }
    }

    #[test]
    fn beats_majority_vote_with_unequal_sources() {
        // One excellent source + two noisy ones: MV is dragged down by the
        // noise; the label model learns to trust the good source.
        let (matrix, truth) = synth(3000, 2, &[0.95, 0.6, 0.6], &[1.0, 1.0, 1.0], 13);
        let model = LabelModel::fit(&matrix, &LabelModelConfig::default());
        let lm_acc = accuracy(&model.predict(&matrix), &truth);
        let mv_acc = accuracy(&crate::majority::majority_vote_hard(&matrix), &truth);
        assert!(lm_acc > mv_acc + 0.02, "label model {lm_acc} should beat majority vote {mv_acc}");
        assert!(lm_acc > 0.9, "label model accuracy {lm_acc}");
    }

    #[test]
    fn posterior_rows_sum_to_one() {
        let (matrix, _) = synth(100, 4, &[0.8, 0.6], &[0.7, 0.5], 3);
        let model = LabelModel::fit(&matrix, &LabelModelConfig::default());
        for dist in model.predict_proba(&matrix) {
            let s: f32 = dist.iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "sums to {s}");
            assert!(dist.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn abstain_only_items_fall_back_to_prior() {
        let mut matrix = LabelMatrix::new(2);
        matrix.push_item(2, &[Some(0), Some(0)]);
        matrix.push_item(2, &[None, None]);
        let model = LabelModel::fit(&matrix, &LabelModelConfig::default());
        let post = model.predict_proba(&matrix);
        // Item 1 has no evidence: posterior equals the class balance.
        let bal = model.class_balance().unwrap();
        assert!((post[1][0] - bal[0]).abs() < 1e-5);
    }

    #[test]
    fn varying_cardinality_select_items() {
        // Select task: items have different candidate-set sizes. Three
        // sources are needed for the accuracies to be identifiable (with
        // two, only their product is constrained by agreement rates).
        let mut rng = SmallRng::seed_from_u64(21);
        let mut matrix = LabelMatrix::new(3);
        let mut truth = Vec::new();
        for _ in 0..2000 {
            let k = rng.gen_range(2..6u32);
            let y = rng.gen_range(0..k);
            truth.push(y);
            let votes: Vec<Option<u32>> = [0.9f32, 0.55, 0.7]
                .iter()
                .map(|&a| {
                    if rng.gen::<f32>() < a {
                        Some(y)
                    } else {
                        let mut w = rng.gen_range(0..k - 1);
                        if w >= y {
                            w += 1;
                        }
                        Some(w)
                    }
                })
                .collect();
            matrix.push_item(k, &votes);
        }
        let model = LabelModel::fit(&matrix, &LabelModelConfig::default());
        assert!(model.class_balance().is_none(), "no balance for varying k");
        assert!(
            model.accuracies()[0] > model.accuracies()[1] + 0.1,
            "should rank the good source higher: {:?}",
            model.accuracies()
        );
        let acc = accuracy(&model.predict(&matrix), &truth);
        assert!(acc > 0.85, "posterior accuracy {acc}");
    }

    #[test]
    fn skewed_class_balance_is_estimated() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut matrix = LabelMatrix::new(2);
        for _ in 0..3000 {
            let y = u32::from(rng.gen::<f32>() < 0.2); // 80% class 0
            let votes: Vec<Option<u32>> = (0..2)
                .map(|_| if rng.gen::<f32>() < 0.85 { Some(y) } else { Some(1 - y) })
                .collect();
            matrix.push_item(2, &votes);
        }
        let model = LabelModel::fit(&matrix, &LabelModelConfig::default());
        let bal = model.class_balance().unwrap();
        assert!((bal[0] - 0.8).abs() < 0.08, "balance {bal:?}");
    }

    #[test]
    fn converges_and_reports_iterations() {
        let (matrix, _) = synth(500, 2, &[0.8, 0.8], &[1.0, 1.0], 11);
        let model = LabelModel::fit(&matrix, &LabelModelConfig::default());
        assert!(model.iterations() >= 1);
        assert!(model.iterations() <= 100);
    }

    #[test]
    fn single_candidate_items_are_harmless() {
        let mut matrix = LabelMatrix::new(1);
        matrix.push_item(1, &[Some(0)]); // only one candidate: trivially true
        matrix.push_item(3, &[Some(2)]);
        let model = LabelModel::fit(&matrix, &LabelModelConfig::default());
        let post = model.predict_proba(&matrix);
        assert_eq!(post[0], vec![1.0]);
    }
}

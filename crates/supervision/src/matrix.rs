//! The label matrix: items x sources observations with abstains.

/// A dense matrix of weak labels. `labels[i][j]` is source `j`'s vote on
/// item `i`: `Some(class)` or `None` (abstain). Items may have different
/// cardinalities (select tasks choose among per-item candidate sets), so
/// each item carries its own `k`.
#[derive(Debug, Clone)]
pub struct LabelMatrix {
    n_sources: usize,
    labels: Vec<Option<u32>>,
    cardinalities: Vec<u32>,
}

impl LabelMatrix {
    /// Creates an empty matrix with `n_sources` columns.
    pub fn new(n_sources: usize) -> Self {
        Self { n_sources, labels: Vec::new(), cardinalities: Vec::new() }
    }

    /// Creates a matrix where every item shares cardinality `k`.
    ///
    /// # Panics
    /// Panics if `rows` is ragged or a label is out of `0..k`.
    pub fn from_rows(k: u32, rows: &[Vec<Option<u32>>]) -> Self {
        let n_sources = rows.first().map_or(0, Vec::len);
        let mut m = Self::new(n_sources);
        for row in rows {
            m.push_item(k, row);
        }
        m
    }

    /// Appends one item with its own cardinality.
    ///
    /// # Panics
    /// Panics if `votes.len() != n_sources`, `k == 0`, or a vote is `>= k`.
    pub fn push_item(&mut self, k: u32, votes: &[Option<u32>]) {
        assert_eq!(votes.len(), self.n_sources, "vote row width mismatch");
        assert!(k > 0, "item cardinality must be positive");
        for v in votes.iter().flatten() {
            assert!(*v < k, "label {v} out of cardinality {k}");
        }
        self.labels.extend_from_slice(votes);
        self.cardinalities.push(k);
    }

    /// Appends all items of `other`, preserving their order (merging
    /// per-shard partial matrices back into one global matrix).
    ///
    /// # Panics
    /// Panics if the source counts differ.
    pub fn append(&mut self, other: &LabelMatrix) {
        assert_eq!(self.n_sources, other.n_sources, "source count mismatch");
        self.labels.extend_from_slice(&other.labels);
        self.cardinalities.extend_from_slice(&other.cardinalities);
    }

    /// Number of items (rows).
    pub fn n_items(&self) -> usize {
        self.cardinalities.len()
    }

    /// Number of sources (columns).
    pub fn n_sources(&self) -> usize {
        self.n_sources
    }

    /// True when the matrix has no items.
    pub fn is_empty(&self) -> bool {
        self.cardinalities.is_empty()
    }

    /// The cardinality of item `i`.
    pub fn cardinality(&self, i: usize) -> u32 {
        self.cardinalities[i]
    }

    /// The maximum cardinality across items (0 when empty).
    pub fn max_cardinality(&self) -> u32 {
        self.cardinalities.iter().copied().max().unwrap_or(0)
    }

    /// True if every item has the same cardinality.
    pub fn uniform_cardinality(&self) -> Option<u32> {
        let first = *self.cardinalities.first()?;
        self.cardinalities.iter().all(|&k| k == first).then_some(first)
    }

    /// Source `j`'s vote on item `i`.
    pub fn vote(&self, i: usize, j: usize) -> Option<u32> {
        self.labels[i * self.n_sources + j]
    }

    /// All votes on item `i`.
    pub fn votes(&self, i: usize) -> &[Option<u32>] {
        &self.labels[i * self.n_sources..(i + 1) * self.n_sources]
    }

    /// Fraction of non-abstain votes for source `j`.
    pub fn coverage(&self, j: usize) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let n = (0..self.n_items()).filter(|&i| self.vote(i, j).is_some()).count();
        n as f32 / self.n_items() as f32
    }

    /// Fraction of items with at least one non-abstain vote.
    pub fn labeled_fraction(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let n = (0..self.n_items()).filter(|&i| self.votes(i).iter().any(Option::is_some)).count();
        n as f32 / self.n_items() as f32
    }

    /// Fraction of items where two given sources disagree (both voting).
    pub fn disagreement(&self, a: usize, b: usize) -> f32 {
        let mut both = 0usize;
        let mut diff = 0usize;
        for i in 0..self.n_items() {
            if let (Some(x), Some(y)) = (self.vote(i, a), self.vote(i, b)) {
                both += 1;
                if x != y {
                    diff += 1;
                }
            }
        }
        if both == 0 {
            0.0
        } else {
            diff as f32 / both as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let m = LabelMatrix::from_rows(
            3,
            &[vec![Some(0), None, Some(2)], vec![Some(1), Some(1), None]],
        );
        assert_eq!(m.n_items(), 2);
        assert_eq!(m.n_sources(), 3);
        assert_eq!(m.vote(0, 0), Some(0));
        assert_eq!(m.vote(0, 1), None);
        assert_eq!(m.votes(1), &[Some(1), Some(1), None]);
        assert_eq!(m.uniform_cardinality(), Some(3));
    }

    #[test]
    fn varying_cardinality() {
        let mut m = LabelMatrix::new(2);
        m.push_item(2, &[Some(0), Some(1)]);
        m.push_item(5, &[Some(4), None]);
        assert_eq!(m.cardinality(0), 2);
        assert_eq!(m.cardinality(1), 5);
        assert_eq!(m.max_cardinality(), 5);
        assert_eq!(m.uniform_cardinality(), None);
    }

    #[test]
    #[should_panic(expected = "out of cardinality")]
    fn out_of_range_label_rejected() {
        let mut m = LabelMatrix::new(1);
        m.push_item(2, &[Some(2)]);
    }

    #[test]
    fn append_concatenates_items() {
        let mut a = LabelMatrix::from_rows(3, &[vec![Some(0), None, Some(2)]]);
        let mut b = LabelMatrix::new(3);
        b.push_item(5, &[Some(4), Some(1), None]);
        a.append(&b);
        assert_eq!(a.n_items(), 2);
        assert_eq!(a.votes(1), &[Some(4), Some(1), None]);
        assert_eq!(a.cardinality(0), 3);
        assert_eq!(a.cardinality(1), 5);
    }

    #[test]
    fn coverage_and_labeled_fraction() {
        let m = LabelMatrix::from_rows(
            2,
            &[vec![Some(0), None], vec![None, None], vec![Some(1), Some(0)], vec![Some(0), None]],
        );
        assert!((m.coverage(0) - 0.75).abs() < 1e-6);
        assert!((m.coverage(1) - 0.25).abs() < 1e-6);
        assert!((m.labeled_fraction() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn disagreement_counts_only_cooccurring() {
        let m = LabelMatrix::from_rows(
            2,
            &[vec![Some(0), Some(0)], vec![Some(0), Some(1)], vec![Some(1), None]],
        );
        assert!((m.disagreement(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_matrix_edges() {
        let m = LabelMatrix::new(3);
        assert!(m.is_empty());
        assert_eq!(m.coverage(0), 0.0);
        assert_eq!(m.labeled_fraction(), 0.0);
        assert_eq!(m.max_cardinality(), 0);
    }
}

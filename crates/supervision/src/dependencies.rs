//! Source-dependency diagnostics.
//!
//! The label model assumes sources are conditionally independent given the
//! truth. Correlated sources (one LF derived from another, two annotators
//! sharing guidelines) violate that and silently inflate confidence —
//! Varma et al. (ICML'19), cited by the paper, learn such structure. This
//! module provides the monitoring half: detect source pairs that **err
//! together**, so an engineer can merge or drop one.
//!
//! The statistic: for a pair `(a, b)`, take the plurality consensus of the
//! *remaining* sources as a truth proxy, and compare the rate at which `a`
//! and `b` make the *same* mistake against what independent errors would
//! produce (`e_a * e_b / (k - 1)`). Dependent pairs show large positive
//! excess; independent pairs are near zero regardless of their accuracy.

use crate::matrix::LabelMatrix;

/// Excess co-error between a pair of sources.
#[derive(Debug, Clone, PartialEq)]
pub struct DependencyDiagnostic {
    /// First source index.
    pub source_a: usize,
    /// Second source index.
    pub source_b: usize,
    /// Observed rate of identical errors (vs. the leave-pair-out consensus).
    pub observed_co_error: f64,
    /// The rate independent errors would produce.
    pub expected_co_error: f64,
    /// `observed - expected`; large positive values indicate dependence.
    pub excess: f64,
    /// Items that contributed (both voted, consensus existed).
    pub support: usize,
}

/// Computes pairwise co-error diagnostics. Pairs are returned sorted by
/// descending excess. Requires at least 3 sources (the consensus must
/// exclude the pair under test).
pub fn source_dependencies(matrix: &LabelMatrix) -> Vec<DependencyDiagnostic> {
    let m = matrix.n_sources();
    if m < 3 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for a in 0..m {
        for b in (a + 1)..m {
            let mut support = 0usize;
            let mut err_a = 0usize;
            let mut err_b = 0usize;
            let mut same_error = 0usize;
            let mut inv_k_minus_1 = 0.0f64;
            for i in 0..matrix.n_items() {
                let (Some(va), Some(vb)) = (matrix.vote(i, a), matrix.vote(i, b)) else {
                    continue;
                };
                let k = matrix.cardinality(i);
                if k < 2 {
                    continue;
                }
                let Some(consensus) = leave_pair_out_consensus(matrix, i, a, b) else {
                    continue;
                };
                support += 1;
                inv_k_minus_1 += 1.0 / f64::from(k - 1);
                if va != consensus {
                    err_a += 1;
                }
                if vb != consensus {
                    err_b += 1;
                }
                if va == vb && va != consensus {
                    same_error += 1;
                }
            }
            if support == 0 {
                continue;
            }
            let n = support as f64;
            let (ea, eb) = (err_a as f64 / n, err_b as f64 / n);
            let observed = same_error as f64 / n;
            // Independent errors land on the same wrong class with
            // probability 1/(k-1) (averaged over items).
            let expected = ea * eb * (inv_k_minus_1 / n);
            out.push(DependencyDiagnostic {
                source_a: a,
                source_b: b,
                observed_co_error: observed,
                expected_co_error: expected,
                excess: observed - expected,
                support,
            });
        }
    }
    out.sort_by(|x, y| y.excess.partial_cmp(&x.excess).unwrap());
    out
}

/// Plurality vote among all sources except `a` and `b`; `None` on ties or
/// when nobody voted.
fn leave_pair_out_consensus(matrix: &LabelMatrix, item: usize, a: usize, b: usize) -> Option<u32> {
    let k = matrix.cardinality(item) as usize;
    let mut counts = vec![0u32; k];
    for (j, vote) in matrix.votes(item).iter().enumerate() {
        if j == a || j == b {
            continue;
        }
        if let Some(v) = vote {
            counts[*v as usize] += 1;
        }
    }
    let max = *counts.iter().max()?;
    if max == 0 {
        return None;
    }
    let winners: Vec<usize> = (0..k).filter(|&c| counts[c] == max).collect();
    (winners.len() == 1).then(|| winners[0] as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Three independent sources plus a fourth that copies source 0 with
    /// small noise.
    fn matrix_with_copycat(n: usize, seed: u64) -> LabelMatrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut matrix = LabelMatrix::new(5);
        for _ in 0..n {
            let y = rng.gen_range(0..3u32);
            let vote = |y: u32, acc: f32, rng: &mut SmallRng| {
                if rng.gen::<f32>() < acc {
                    y
                } else {
                    let mut w = rng.gen_range(0..2u32);
                    if w >= y {
                        w += 1;
                    }
                    w
                }
            };
            let v0 = vote(y, 0.8, &mut rng);
            let v1 = vote(y, 0.75, &mut rng);
            let v2 = vote(y, 0.7, &mut rng);
            let v4 = vote(y, 0.72, &mut rng);
            // Copycat: follows v0 95% of the time.
            let v3 = if rng.gen::<f32>() < 0.95 { v0 } else { vote(y, 0.8, &mut rng) };
            matrix.push_item(3, &[Some(v0), Some(v1), Some(v2), Some(v3), Some(v4)]);
        }
        matrix
    }

    #[test]
    fn copycat_pair_ranks_first() {
        let matrix = matrix_with_copycat(4000, 1);
        let deps = source_dependencies(&matrix);
        assert!(!deps.is_empty());
        let top = &deps[0];
        assert_eq!((top.source_a, top.source_b), (0, 3), "top pair: {top:?}");
        assert!(top.excess > 0.08, "excess {:.3}", top.excess);
    }

    #[test]
    fn independent_pairs_score_well_below_the_dependent_pair() {
        // A wrong consensus (swayed by the copycat pair itself) correlates
        // everyone's "errors" slightly, so independent pairs are not at
        // exactly zero — but they stay far below the dependent pair.
        let matrix = matrix_with_copycat(4000, 2);
        let deps = source_dependencies(&matrix);
        let top = deps[0].excess;
        for d in &deps {
            if d.source_b != 3 && d.source_a != 3 {
                assert!(
                    d.excess < top * 0.5,
                    "independent pair too close to the copycat pair: {d:?} (top {top:.3})"
                );
            }
        }
    }

    #[test]
    fn two_sources_yield_nothing() {
        let matrix = LabelMatrix::from_rows(2, &[vec![Some(0), Some(1)]]);
        assert!(source_dependencies(&matrix).is_empty());
    }

    #[test]
    fn empty_matrix_yields_no_diagnostics() {
        let matrix = LabelMatrix::new(4);
        assert!(source_dependencies(&matrix).is_empty());
    }
}

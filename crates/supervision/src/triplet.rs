//! Closed-form (method-of-moments) accuracy estimation via the triplet
//! method, a Snorkel-family alternative to EM for binary tasks.
//!
//! For sources mapped to votes in `{-1, +1}` (abstain excluded) that are
//! conditionally independent given the truth, the vote correlations satisfy
//! `E[l_i l_j] = a_i a_j` where `a_j = 2*accuracy_j - 1`. Any triplet
//! `(i, j, k)` then gives `|a_i| = sqrt(|M_ij * M_ik / M_jk|)`; we take the
//! median over all triplets for robustness and resolve signs by assuming
//! sources are better than random on average.

use crate::matrix::LabelMatrix;

/// Accuracy estimates from the triplet method.
#[derive(Debug, Clone)]
pub struct TripletEstimate {
    /// Per-source accuracy in `[0, 1]`.
    pub accuracies: Vec<f32>,
}

/// Estimates binary-source accuracies without EM.
///
/// # Panics
/// Panics unless the matrix is binary (all cardinalities 2) with at least 3
/// sources.
#[allow(clippy::needless_range_loop)] // symmetric (a, b) moment fill is clearest indexed
pub fn triplet_accuracies(matrix: &LabelMatrix) -> TripletEstimate {
    assert_eq!(matrix.uniform_cardinality(), Some(2), "triplet method requires binary labels");
    let m = matrix.n_sources();
    assert!(m >= 3, "triplet method needs >= 3 sources, got {m}");

    // Pairwise second moments over co-voting items.
    let mut moments = vec![vec![0.0f64; m]; m];
    for a in 0..m {
        for b in (a + 1)..m {
            let mut sum = 0.0f64;
            let mut count = 0usize;
            for i in 0..matrix.n_items() {
                if let (Some(x), Some(y)) = (matrix.vote(i, a), matrix.vote(i, b)) {
                    let xs = if x == 1 { 1.0 } else { -1.0 };
                    let ys = if y == 1 { 1.0 } else { -1.0 };
                    sum += xs * ys;
                    count += 1;
                }
            }
            let mom = if count == 0 { 0.0 } else { sum / count as f64 };
            moments[a][b] = mom;
            moments[b][a] = mom;
        }
    }

    let mut accuracies = Vec::with_capacity(m);
    for i in 0..m {
        let mut estimates: Vec<f64> = Vec::new();
        for j in 0..m {
            if j == i {
                continue;
            }
            for k in (j + 1)..m {
                if k == i {
                    continue;
                }
                let denom = moments[j][k];
                if denom.abs() < 1e-6 {
                    continue;
                }
                let sq = (moments[i][j] * moments[i][k] / denom).abs();
                estimates.push(sq.sqrt().min(1.0));
            }
        }
        let a_i = median(&mut estimates).unwrap_or(0.0);
        // Sign convention: sources are (on average) better than random, so
        // take the positive root; accuracy = (a + 1) / 2.
        accuracies.push(((a_i + 1.0) / 2.0) as f32);
    }
    TripletEstimate { accuracies }
}

fn median(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = values.len() / 2;
    Some(if values.len() % 2 == 1 { values[mid] } else { (values[mid - 1] + values[mid]) / 2.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn synth_binary(n: usize, accs: &[f32], seed: u64) -> LabelMatrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut matrix = LabelMatrix::new(accs.len());
        for _ in 0..n {
            let y = u32::from(rng.gen_bool(0.5));
            let votes: Vec<Option<u32>> =
                accs.iter().map(|&a| Some(if rng.gen::<f32>() < a { y } else { 1 - y })).collect();
            matrix.push_item(2, &votes);
        }
        matrix
    }

    #[test]
    fn recovers_accuracies_within_tolerance() {
        let true_accs = [0.9, 0.75, 0.6, 0.8];
        let matrix = synth_binary(8000, &true_accs, 17);
        let est = triplet_accuracies(&matrix);
        for (e, t) in est.accuracies.iter().zip(&true_accs) {
            assert!((e - t).abs() < 0.06, "estimated {e}, true {t}");
        }
    }

    #[test]
    fn agrees_with_em_ranking() {
        let true_accs = [0.92, 0.7, 0.55];
        let matrix = synth_binary(6000, &true_accs, 29);
        let trip = triplet_accuracies(&matrix);
        let em = crate::label_model::LabelModel::fit(
            &matrix,
            &crate::label_model::LabelModelConfig::default(),
        );
        // Both estimators must rank the sources identically.
        let rank = |accs: &[f32]| {
            let mut idx: Vec<usize> = (0..accs.len()).collect();
            idx.sort_by(|&a, &b| accs[b].partial_cmp(&accs[a]).unwrap());
            idx
        };
        assert_eq!(rank(&trip.accuracies), rank(em.accuracies()));
    }

    #[test]
    #[should_panic(expected = "requires binary")]
    fn non_binary_rejected() {
        let m = LabelMatrix::from_rows(3, &[vec![Some(0), Some(1), Some(2)]]);
        let _ = triplet_accuracies(&m);
    }

    #[test]
    #[should_panic(expected = "needs >= 3 sources")]
    fn too_few_sources_rejected() {
        let m = LabelMatrix::from_rows(2, &[vec![Some(0), Some(1)]]);
        let _ = triplet_accuracies(&m);
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&mut []), None);
        assert_eq!(median(&mut [3.0]), Some(3.0));
        assert_eq!(median(&mut [3.0, 1.0]), Some(2.0));
        assert_eq!(median(&mut [5.0, 1.0, 3.0]), Some(3.0));
    }
}

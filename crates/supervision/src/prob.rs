//! Probabilistic training labels — the label model's output, the trainer's
//! input.

use serde::{Deserialize, Serialize};

/// A probabilistic label for one record on one task, at the task's
/// granularity. Distributions sum to 1; bit probabilities are independent
/// per bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProbLabel {
    /// Distribution over classes (multiclass/singleton) or over candidate
    /// set elements (select).
    Dist(Vec<f32>),
    /// Per-sequence-element class distributions.
    SeqDist(Vec<Vec<f32>>),
    /// Per-bit `P(bit = 1)` (bitvector/singleton).
    Bits(Vec<f32>),
    /// Per-sequence-element bit probabilities.
    SeqBits(Vec<Vec<f32>>),
}

impl ProbLabel {
    /// Builds a one-hot distribution.
    pub fn one_hot(class: usize, k: usize) -> Self {
        let mut dist = vec![0.0; k];
        dist[class] = 1.0;
        ProbLabel::Dist(dist)
    }

    /// The argmax class for `Dist` labels, `None` otherwise.
    pub fn argmax(&self) -> Option<usize> {
        match self {
            ProbLabel::Dist(d) => {
                let mut best = 0;
                for (i, &p) in d.iter().enumerate() {
                    if p > d[best] {
                        best = i;
                    }
                }
                Some(best)
            }
            _ => None,
        }
    }

    /// Largest probability in the label (confidence proxy).
    pub fn max_prob(&self) -> f32 {
        let fold = |xs: &[f32]| xs.iter().copied().fold(0.0f32, f32::max);
        match self {
            ProbLabel::Dist(d) => fold(d),
            ProbLabel::Bits(b) => fold(b),
            ProbLabel::SeqDist(rows) | ProbLabel::SeqBits(rows) => {
                rows.iter().map(|r| fold(r)).fold(0.0f32, f32::max)
            }
        }
    }

    /// Whether all contained probabilities are within `[0, 1]` and (for
    /// distributions) rows sum to ~1.
    pub fn is_valid(&self) -> bool {
        let in_range = |xs: &[f32]| xs.iter().all(|&p| (0.0..=1.0 + 1e-4).contains(&p));
        let sums = |xs: &[f32]| (xs.iter().sum::<f32>() - 1.0).abs() < 1e-3;
        match self {
            ProbLabel::Dist(d) => in_range(d) && sums(d),
            ProbLabel::SeqDist(rows) => rows.iter().all(|r| in_range(r) && sums(r)),
            ProbLabel::Bits(b) => in_range(b),
            ProbLabel::SeqBits(rows) => rows.iter().all(|r| in_range(r)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_and_argmax() {
        let l = ProbLabel::one_hot(2, 4);
        assert_eq!(l.argmax(), Some(2));
        assert!(l.is_valid());
        assert_eq!(l.max_prob(), 1.0);
    }

    #[test]
    fn validity_checks() {
        assert!(ProbLabel::Dist(vec![0.3, 0.7]).is_valid());
        assert!(!ProbLabel::Dist(vec![0.3, 0.3]).is_valid());
        assert!(ProbLabel::Bits(vec![0.2, 0.9]).is_valid());
        assert!(!ProbLabel::Bits(vec![1.5]).is_valid());
        assert!(ProbLabel::SeqDist(vec![vec![1.0, 0.0], vec![0.5, 0.5]]).is_valid());
    }

    #[test]
    fn argmax_only_for_dist() {
        assert_eq!(ProbLabel::Bits(vec![0.9]).argmax(), None);
    }
}

//! Majority-vote baseline combiner.

use crate::matrix::LabelMatrix;

/// Combines votes by unweighted majority. Ties split probability mass
/// uniformly among the tied classes; items with no votes get a uniform
/// distribution.
///
/// This is the baseline the label model is compared against (the paper's
/// "previous system" resolved conflicting supervision ad hoc; majority vote
/// is the strongest generic ad-hoc rule).
pub fn majority_vote(matrix: &LabelMatrix) -> Vec<Vec<f32>> {
    (0..matrix.n_items())
        .map(|i| {
            let k = matrix.cardinality(i) as usize;
            let mut counts = vec![0u32; k];
            for vote in matrix.votes(i).iter().flatten() {
                counts[*vote as usize] += 1;
            }
            let max = counts.iter().copied().max().unwrap_or(0);
            if max == 0 {
                return vec![1.0 / k as f32; k];
            }
            let winners = counts.iter().filter(|&&c| c == max).count() as f32;
            counts.iter().map(|&c| if c == max { 1.0 / winners } else { 0.0 }).collect()
        })
        .collect()
}

/// Hard predictions from the majority distribution (first class on ties).
pub fn majority_vote_hard(matrix: &LabelMatrix) -> Vec<u32> {
    majority_vote(matrix)
        .iter()
        .map(|dist| {
            let mut best = 0;
            for (c, &p) in dist.iter().enumerate() {
                if p > dist[best] {
                    best = c;
                }
            }
            best as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_majority_wins() {
        let m = LabelMatrix::from_rows(3, &[vec![Some(1), Some(1), Some(2)]]);
        let dist = majority_vote(&m);
        assert_eq!(dist[0], vec![0.0, 1.0, 0.0]);
        assert_eq!(majority_vote_hard(&m), vec![1]);
    }

    #[test]
    fn ties_split_mass() {
        let m = LabelMatrix::from_rows(2, &[vec![Some(0), Some(1)]]);
        let dist = majority_vote(&m);
        assert_eq!(dist[0], vec![0.5, 0.5]);
    }

    #[test]
    fn all_abstain_is_uniform() {
        let m = LabelMatrix::from_rows(4, &[vec![None, None]]);
        let dist = majority_vote(&m);
        assert_eq!(dist[0], vec![0.25; 4]);
    }

    #[test]
    fn abstains_do_not_count() {
        let m = LabelMatrix::from_rows(2, &[vec![Some(0), None, None]]);
        assert_eq!(majority_vote(&m)[0], vec![1.0, 0.0]);
    }
}

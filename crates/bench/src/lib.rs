//! Shared experiment harness for reproducing the paper's tables and
//! figures. Each `benches/*.rs` target (harness = false) regenerates one
//! artifact; this crate holds the common machinery: product definitions at
//! different resource levels, the pre-Overton baseline system, and the
//! composite end-to-end error metric.

#![warn(missing_docs)]

use overton::{build, OvertonBuild, OvertonOptions};
use overton_model::{
    evaluate, prepare, train_model, CompiledModel, EncoderKind, ModelConfig, TrainConfig,
};
use overton_nlp::{SourceSpec, WorkloadConfig};
use overton_store::{Dataset, Schema, TaskKind};
use overton_supervision::CombineMethod;
use std::collections::BTreeMap;

/// The four resource levels of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceLevel {
    /// Tens of engineers, large budget, large existing training sets.
    High,
    /// Mid-size team, some annotators.
    MediumA,
    /// Mid-size team, almost no annotators.
    MediumB,
    /// Small team, weak sources only.
    Low,
}

impl ResourceLevel {
    /// Display name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            ResourceLevel::High => "High",
            ResourceLevel::MediumA => "Medium",
            ResourceLevel::MediumB => "Medium",
            ResourceLevel::Low => "Low",
        }
    }

    /// The workload backing a product at this resource level. Resourcing
    /// controls training-set size, annotator budget (gold fraction) and
    /// weak-source quality.
    pub fn workload(self, seed: u64) -> WorkloadConfig {
        let base = WorkloadConfig { n_dev: 250, n_test: 600, seed, ..Default::default() };
        match self {
            ResourceLevel::High => {
                WorkloadConfig { n_train: 4000, gold_train_fraction: 0.20, ..base }
            }
            ResourceLevel::MediumA => {
                WorkloadConfig { n_train: 2200, gold_train_fraction: 0.04, ..base }
            }
            ResourceLevel::MediumB => {
                WorkloadConfig { n_train: 1600, gold_train_fraction: 0.02, ..base }
            }
            ResourceLevel::Low => WorkloadConfig {
                n_train: 900,
                gold_train_fraction: 0.01,
                // The classic low-resource regime: no annotators, but
                // many cheap, individually-crummy labeling functions.
                intent_sources: vec![
                    SourceSpec::new("lf_keyword", 0.68, 0.85),
                    SourceSpec::new("lf_pattern", 0.62, 0.80),
                    SourceSpec::new("lf_guess", 0.58, 0.75),
                    SourceSpec::new("lf_regex", 0.60, 0.80),
                    SourceSpec::new("lf_embed", 0.55, 0.70),
                ],
                pos_sources: vec![
                    SourceSpec::new("spacy_sim", 0.85, 1.0),
                    SourceSpec::new("lf_lexicon", 0.65, 0.8),
                ],
                type_sources: vec![SourceSpec::new("eproj", 0.78, 0.9)],
                arg_sources: vec![
                    SourceSpec::new("lf_default_sense", 1.0, 1.0),
                    SourceSpec::new("lf_heuristic", 0.72, 0.9),
                    SourceSpec::stochastic("crowd_arg", 0.80, 0.45),
                ],
                ..base
            },
        }
    }
}

/// Standard Overton options used across experiments (no search — search is
/// its own ablation; experiments isolate one variable at a time).
pub fn overton_options(epochs: usize) -> OvertonOptions {
    OvertonOptions {
        train: TrainConfig { epochs, early_stop_patience: 0, ..Default::default() },
        ..Default::default()
    }
}

/// Builds the full Overton system on a dataset.
pub fn build_overton(dataset: &Dataset, epochs: usize) -> OvertonBuild {
    build(dataset, &overton_options(epochs)).expect("overton build")
}

/// The primary production heuristic per task — the single source a legacy
/// pipeline is built around (a legacy system has no supervision
/// management, so it cannot combine its sources).
pub fn primary_source(task: &str) -> &'static str {
    match task {
        "Intent" => "lf_keyword",
        "POS" => "spacy_sim",
        "EntityType" => "eproj",
        "IntentArg" => "lf_default_sense",
        _ => "gold",
    }
}

/// The "previous production system" baseline (paper §3: "systems that
/// Overton models replace are typically deep models and heuristics ...
/// in our estimation because there is no model independence"):
/// independent single-task models, each trained on its **primary heuristic
/// source** (no label model — the legacy system cannot resolve conflicting
/// supervision), no slice-based learning, fixed small architecture, no
/// search. Gold labels, where annotators provided them, are used by both
/// systems.
///
/// Returns per-task test accuracy.
pub fn build_baseline(dataset: &Dataset, epochs: usize) -> BTreeMap<String, f64> {
    let mut per_task = BTreeMap::new();
    for task in dataset.schema().tasks.keys() {
        let sub_schema = single_task_schema(dataset.schema(), task);
        let sub_dataset = retarget(dataset, &sub_schema);
        let method = if sub_dataset.sources_for_task(task).iter().any(|s| s == primary_source(task))
        {
            CombineMethod::SingleSource(primary_source(task).to_string())
        } else {
            CombineMethod::MajorityVote
        };
        let prepared = prepare(&sub_dataset, &method).expect("baseline prepare");
        let config =
            ModelConfig { encoder: EncoderKind::MeanBag, slice_heads: false, ..Default::default() };
        let mut model = CompiledModel::compile(&sub_schema, &prepared.space, &config, None);
        train_model(
            &mut model,
            &prepared.train,
            &prepared.dev,
            &TrainConfig { epochs, early_stop_patience: 0, ..Default::default() },
        );
        let eval = evaluate(&model, &sub_dataset, &sub_dataset.test_indices(), &prepared.space);
        per_task.insert(task.clone(), eval.accuracy(task));
    }
    per_task
}

/// A schema restricted to one task (payloads are kept; a single-task model
/// cannot share representations with other tasks).
pub fn single_task_schema(schema: &Schema, task: &str) -> Schema {
    let mut out = schema.clone();
    out.tasks.retain(|name, _| name == task);
    out
}

/// Clones a dataset under a (task-restricted) schema, dropping labels for
/// removed tasks.
pub fn retarget(dataset: &Dataset, schema: &Schema) -> Dataset {
    let mut out = Dataset::new(schema.clone());
    for record in dataset.records() {
        let mut r = record.clone();
        r.tasks.retain(|task, _| schema.tasks.contains_key(task));
        out.push_unchecked(r);
    }
    out
}

/// End-to-end per-query error: a factoid query is answered correctly iff
/// BOTH the intent and its argument are right (the paper's running example
/// is an end-to-end product; any stage failing fails the query).
pub fn end_to_end_error(intent_acc: f64, arg_acc: f64, joint: Option<f64>) -> f64 {
    match joint {
        Some(j) => 1.0 - j,
        // Independence approximation when joint accuracy is unavailable
        // (the baseline's separate models make joint bookkeeping awkward).
        None => 1.0 - intent_acc * arg_acc,
    }
}

/// Joint Intent+IntentArg accuracy of an Overton build on the test split.
pub fn joint_accuracy(built: &OvertonBuild, dataset: &Dataset) -> f64 {
    use overton_model::TaskOutput;
    use overton_store::TaskLabel;
    let mut correct = 0usize;
    let mut total = 0usize;
    for (record_idx, prediction) in &built.evaluation.predictions {
        let record = &dataset.records()[*record_idx];
        let Some(TaskLabel::MulticlassOne(gold_intent)) = record.gold("Intent") else { continue };
        let Some(TaskLabel::Select(gold_arg)) = record.gold("IntentArg") else { continue };
        total += 1;
        let intent_ok = matches!(
            prediction.tasks.get("Intent"),
            Some(TaskOutput::Multiclass { class, .. })
                if intent_name(dataset.schema(), *class).as_deref() == Some(gold_intent)
        );
        let arg_ok = matches!(
            prediction.tasks.get("IntentArg"),
            Some(TaskOutput::Select { index, .. }) if index == gold_arg
        );
        if intent_ok && arg_ok {
            correct += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

fn intent_name(schema: &Schema, class: usize) -> Option<String> {
    match &schema.tasks.get("Intent")?.kind {
        TaskKind::Multiclass { classes } => classes.get(class).cloned(),
        _ => None,
    }
}

/// Prints a fixed-width table row (used by all figure harnesses).
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>w$}  "));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_nlp::generate_workload;

    #[test]
    fn resource_levels_scale_down() {
        let high = ResourceLevel::High.workload(0);
        let low = ResourceLevel::Low.workload(0);
        assert!(high.n_train > low.n_train);
        assert!(high.gold_train_fraction > low.gold_train_fraction);
        // Low-resource teams compensate with MORE, crummier LFs; their best
        // source is still worse than the high tier's best.
        let best = |cfg: &WorkloadConfig| {
            cfg.intent_sources.iter().map(|s| s.accuracy).fold(0.0f64, f64::max)
        };
        assert!(best(&high) > best(&low));
    }

    #[test]
    fn baseline_builds_per_task_models() {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 120,
            n_dev: 30,
            n_test: 40,
            seed: 2,
            ..Default::default()
        });
        let accs = build_baseline(&ds, 2);
        assert_eq!(accs.len(), 4);
        for (task, acc) in &accs {
            assert!((0.0..=1.0).contains(acc), "{task}: {acc}");
        }
    }

    #[test]
    fn joint_accuracy_bounded_by_task_accuracies() {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 200,
            n_dev: 40,
            n_test: 60,
            seed: 3,
            ..Default::default()
        });
        let built = build_overton(&ds, 3);
        let joint = joint_accuracy(&built, &ds);
        assert!(joint <= built.test_accuracy("Intent") + 1e-9);
        assert!(joint <= built.test_accuracy("IntentArg") + 1e-9);
    }

    #[test]
    fn end_to_end_error_prefers_joint() {
        assert!((end_to_end_error(0.9, 0.9, None) - (1.0 - 0.81)).abs() < 1e-12);
        assert!((end_to_end_error(0.9, 0.9, Some(0.85)) - 0.15).abs() < 1e-12);
    }
}

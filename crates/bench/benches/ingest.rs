//! **Ingest** — the front-door benchmark: streaming the two-file contract
//! into shard builders versus the eager `Dataset` path, on a 50k-record
//! workload.
//!
//! The streamed path ([`ShardedStore::from_files`]) parses each JSONL
//! line, validates it, and encodes it straight into the current shard
//! blob — no `Vec<Record>` is ever materialized, so peak memory stays one
//! record deep. The eager path ([`Dataset::from_jsonl_file`]) collects
//! every record into the editable vector first and seals afterwards —
//! what `overton::build` callers did before the `Project` front door.
//! Both produce row-for-row identical stores (asserted before timing).
//!
//! Run with: `cargo bench -p overton-bench --bench ingest`

use criterion::{criterion_group, criterion_main, Criterion};
use overton_nlp::{write_two_file_workload, WorkloadConfig};
use overton_store::{Dataset, Schema, ShardedStore};
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// The tentpole scale: 50k records through the front door.
const N_RECORDS: usize = 50_000;

fn config() -> WorkloadConfig {
    WorkloadConfig {
        n_train: N_RECORDS - 3_000,
        n_dev: 1_000,
        n_test: 2_000,
        seed: 17,
        ..Default::default()
    }
}

/// The eager baseline: parse + validate every line into a `Vec<Record>`,
/// then push-and-seal.
fn eager_ingest(schema_path: &Path, data_path: &Path) -> ShardedStore {
    let schema = Schema::from_json_file(schema_path).expect("schema parses");
    let dataset = Dataset::from_jsonl_file(schema, data_path).expect("data parses");
    dataset.seal()
}

/// The streamed path: lines go straight into shard blobs.
fn streamed_ingest(schema_path: &Path, data_path: &Path) -> ShardedStore {
    ShardedStore::from_files(schema_path, data_path).expect("two-file ingest")
}

fn bench_ingest(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("overton-bench-ingest-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    println!("writing {N_RECORDS}-record two-file workload ...");
    let t = Instant::now();
    let (schema_path, data_path) =
        write_two_file_workload(&config(), &dir).expect("write workload");
    let bytes = std::fs::metadata(&data_path).expect("data file").len();
    println!(
        "  {} in {:.1?} ({:.1} MiB)",
        data_path.display(),
        t.elapsed(),
        bytes as f64 / (1024.0 * 1024.0)
    );

    // Both paths must agree row for row before any timing claims.
    let eager = eager_ingest(&schema_path, &data_path);
    let streamed = streamed_ingest(&schema_path, &data_path);
    assert_eq!(eager.len(), N_RECORDS);
    assert_eq!(streamed.len(), N_RECORDS);
    assert_eq!(
        eager.index().train_rows(),
        streamed.index().train_rows(),
        "index disagrees between ingest paths"
    );
    for row in [0usize, N_RECORDS / 2, N_RECORDS - 1] {
        assert_eq!(eager.get(row).unwrap(), streamed.get(row).unwrap(), "row {row} disagrees");
    }

    // Headline best-of-3 comparison (the criterion medians below repeat
    // it with more samples).
    let best_of = |f: &dyn Fn() -> ShardedStore| {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                black_box(f().len());
                t.elapsed()
            })
            .min()
            .expect("three runs")
    };
    let eager_time = best_of(&|| eager_ingest(&schema_path, &data_path));
    let streamed_time = best_of(&|| streamed_ingest(&schema_path, &data_path));
    println!(
        "two-file ingest of {N_RECORDS} records: eager Dataset push+seal {:.2?} vs \
         file-streamed shard builders {:.2?} ({:.2}x)",
        eager_time,
        streamed_time,
        eager_time.as_secs_f64() / streamed_time.as_secs_f64().max(1e-9),
    );

    let mut group = c.benchmark_group("ingest");
    group.sample_size(5);
    group.bench_function("eager_dataset_push_seal_50k", |b| {
        b.iter(|| black_box(eager_ingest(&schema_path, &data_path)).len());
    });
    group.bench_function("streamed_shard_builders_50k", |b| {
        b.iter(|| black_box(streamed_ingest(&schema_path, &data_path)).len());
    });
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);

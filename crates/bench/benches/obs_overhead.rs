//! **P6** — observability overhead: the worker pool serving identical
//! traffic with and without the obs hook attached. The hot-path cost of
//! observation is one atomic load plus a bounded-channel `try_send` per
//! request (sample construction included); the acceptance bar is that the
//! observed path stays within **1.5x** of the unobserved one, asserted at
//! the end of the run.
//!
//! Run with: `cargo bench -p overton-bench --bench obs_overhead`

use criterion::{criterion_group, criterion_main, Criterion};
use overton_model::{CompiledModel, DeployableModel, FeatureSpace, ModelConfig, Server};
use overton_nlp::{generate_workload, KnowledgeBase, TrafficConfig, TrafficStream, WorkloadConfig};
use overton_obs::{default_rules, Monitor, ObsConfig};
use overton_serving::{CascadeEngine, ServingConfig, TrafficBaseline, WorkerPool};
use overton_store::Record;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const REQUESTS: usize = 1024;
const WINDOW: u64 = 128;

fn setup() -> (DeployableModel, TrafficBaseline, Vec<Record>) {
    let ds = generate_workload(&WorkloadConfig {
        n_train: 400,
        n_dev: 50,
        n_test: 100,
        seed: 5,
        ..Default::default()
    });
    let space = FeatureSpace::build(&ds);
    let model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
    let artifact = DeployableModel::package(&model, &space, std::collections::BTreeMap::new());
    let server = Server::load(&artifact);
    let reference: Vec<Record> =
        ds.test_indices().iter().map(|&i| ds.records()[i].clone()).collect();
    let baseline = TrafficBaseline::collect(&server, &reference).expect("baseline");
    let records = TrafficStream::new(
        &KnowledgeBase::standard(),
        TrafficConfig { qps: 1000.0, seed: 6, ..Default::default() },
    )
    .records(REQUESTS);
    (artifact, baseline, records)
}

fn unobserved_pool(artifact: &DeployableModel) -> WorkerPool {
    WorkerPool::start(
        Arc::new(CascadeEngine::single(Server::load(artifact))),
        ServingConfig { workers: 4, max_batch: 32 },
        None,
    )
}

fn observed_pool(artifact: &DeployableModel, baseline: &TrafficBaseline) -> (WorkerPool, Monitor) {
    let pool = WorkerPool::start(
        Arc::new(CascadeEngine::single(Server::load(artifact))),
        ServingConfig { workers: 4, max_batch: 32 },
        Some(baseline.clone()),
    );
    let config = ObsConfig {
        window_len: WINDOW,
        rules: default_rules(pool.telemetry().slice_names()),
        ..Default::default()
    };
    let monitor = Monitor::attach(&pool, config, None).expect("attach monitor");
    (pool, monitor)
}

fn drive(pool: &WorkerPool, records: &[Record], monitor: Option<&mut Monitor>) {
    for reply in pool.process(records.to_vec()) {
        black_box(reply.result.expect("valid"));
    }
    if let Some(m) = monitor {
        m.pump();
    }
}

fn bench_obs_overhead(c: &mut Criterion) {
    let (artifact, baseline, records) = setup();
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);

    let pool = unobserved_pool(&artifact);
    group.bench_function(&format!("unobserved_x{REQUESTS}"), |bench| {
        bench.iter(|| drive(&pool, &records, None));
    });
    pool.shutdown();

    let (pool, mut monitor) = observed_pool(&artifact, &baseline);
    group.bench_function(&format!("observed_x{REQUESTS}"), |bench| {
        bench.iter(|| drive(&pool, &records, Some(&mut monitor)));
    });
    group.finish();

    // The acceptance check: a fresh, interleaved head-to-head timing of
    // the two paths (interleaving rounds averages out machine noise),
    // asserting the observed serving path stays within 1.5x.
    const ROUNDS: usize = 6;
    let plain = unobserved_pool(&artifact);
    let (obs_pool, mut obs_monitor) = observed_pool(&artifact, &baseline);
    // Warm both pools before timing.
    drive(&plain, &records, None);
    drive(&obs_pool, &records, Some(&mut obs_monitor));
    let (mut plain_total, mut observed_total) =
        (std::time::Duration::ZERO, std::time::Duration::ZERO);
    for _ in 0..ROUNDS {
        let start = Instant::now();
        drive(&plain, &records, None);
        plain_total += start.elapsed();
        let start = Instant::now();
        drive(&obs_pool, &records, Some(&mut obs_monitor));
        observed_total += start.elapsed();
    }
    let ratio = observed_total.as_secs_f64() / plain_total.as_secs_f64();
    println!(
        "obs_overhead: unobserved {:?}, observed {:?} over {ROUNDS}x{REQUESTS} requests \
         (ratio {ratio:.3}; {} windows closed, {} samples dropped)",
        plain_total / ROUNDS as u32,
        observed_total / ROUNDS as u32,
        obs_monitor.stats().closed(),
        obs_pool.telemetry().observer_dropped(),
    );
    assert!(obs_monitor.stats().closed() > 0, "the monitor must actually be fed");
    assert!(ratio <= 1.5, "observed serving path is {ratio:.2}x the unobserved one (budget: 1.5x)");
    plain.shutdown();
    obs_pool.shutdown();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);

//! **P5** — serving throughput: the per-record `Server::predict` loop vs
//! the batched forward path vs the worker pool, on the same model and the
//! same records. The batched path exists because `Graph::param` copies
//! every weight matrix into the inference tape: per-record graphs re-copy
//! the whole model per query, batched graphs once per batch.
//!
//! Run with: `cargo bench -p overton-bench --bench serving_throughput`

use criterion::{criterion_group, criterion_main, Criterion};
use overton_model::{CompiledModel, DeployableModel, FeatureSpace, ModelConfig, Server};
use overton_nlp::{generate_workload, KnowledgeBase, TrafficConfig, TrafficStream, WorkloadConfig};
use overton_serving::net::{NetClient, NetConfig, NetServer, PredictOutcome, ShedPolicy};
use overton_serving::{CascadeEngine, ServingConfig, WorkerPool};
use overton_store::Record;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCH: usize = 32;
const REQUESTS: usize = 256;

fn setup() -> (Server, Vec<Record>) {
    let ds = generate_workload(&WorkloadConfig {
        n_train: 400,
        n_dev: 50,
        n_test: 50,
        seed: 5,
        ..Default::default()
    });
    let space = FeatureSpace::build(&ds);
    let model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
    let artifact = DeployableModel::package(&model, &space, BTreeMap::new());
    let kb = KnowledgeBase::standard();
    let records = TrafficStream::new(
        &kb,
        TrafficConfig { qps: 1000.0, seed: 6, with_gold: false, ..Default::default() },
    )
    .records(REQUESTS);
    (Server::load(&artifact), records)
}

fn bench_serving(c: &mut Criterion) {
    let (server, records) = setup();
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);

    group.bench_function(&format!("per_record_x{REQUESTS}"), |bench| {
        bench.iter(|| {
            for record in &records {
                black_box(server.predict(record).expect("valid"));
            }
        });
    });

    group.bench_function(&format!("batched_{BATCH}_x{REQUESTS}"), |bench| {
        bench.iter(|| {
            for chunk in records.chunks(BATCH) {
                for result in server.predict_batch(chunk) {
                    black_box(result.expect("valid"));
                }
            }
        });
    });

    group.bench_function(&format!("batched_full_x{REQUESTS}"), |bench| {
        bench.iter(|| {
            for result in server.predict_batch(&records) {
                black_box(result.expect("valid"));
            }
        });
    });

    let (pooled_server, _) = setup();
    let engine = Arc::new(CascadeEngine::single(pooled_server));
    let pool = WorkerPool::start(engine, ServingConfig { workers: 4, max_batch: BATCH }, None);
    group.bench_function(&format!("pool_4workers_{BATCH}_x{REQUESTS}"), |bench| {
        bench.iter(|| {
            for reply in pool.process(records.clone()) {
                black_box(reply.result.expect("valid"));
            }
        });
    });

    group.finish();
    pool.shutdown();
}

/// The same pooled path, but through the socket tier: JSON over loopback
/// TCP into `NetServer`, one keep-alive connection. The delta against
/// `pool_4workers` is the wire tax (framing + JSON both ways).
fn bench_socket(c: &mut Criterion) {
    let (server, records) = setup();
    let engine = Arc::new(CascadeEngine::single(server));
    let pool = Arc::new(WorkerPool::start(
        Arc::clone(&engine),
        ServingConfig { workers: 4, max_batch: BATCH },
        None,
    ));
    let net = NetServer::start(
        TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
        Arc::clone(&pool),
        NetConfig::default(),
    )
    .expect("start net server");
    let mut client = NetClient::connect(net.local_addr()).expect("connect loopback");

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.bench_function(&format!("socket_loopback_{BATCH}_x{REQUESTS}"), |bench| {
        bench.iter(|| {
            for chunk in records.chunks(BATCH) {
                match client.predict(chunk).expect("loopback predict") {
                    PredictOutcome::Answered(results) => {
                        for result in results {
                            black_box(result.expect("valid"));
                        }
                    }
                    PredictOutcome::Shed { .. } => panic!("idle server shed"),
                }
            }
        });
    });
    group.finish();

    drop(client);
    net.drain();
    socket_overload_sheds_but_does_not_collapse(records.clone());
    socket_tracing_overhead_is_bounded(records);
}

/// Not a timing benchmark — a load assertion that runs with the bench
/// suite. Drive the socket tier at ~2x its worker capacity and require
/// the overload answer to be *shedding*, not collapse: some requests get
/// `503 Retry-After`, and the p99 latency of the *accepted* requests
/// stays bounded because the queue is capped at the high-water mark.
fn socket_overload_sheds_but_does_not_collapse(records: Vec<Record>) {
    const CLIENTS: usize = 8; // vs 2 workers: well past capacity
    const ROUNDS: usize = 12;
    let p99_bound = Duration::from_secs(2);

    let (server, _) = setup();
    let engine = Arc::new(CascadeEngine::single(server));
    let pool = Arc::new(WorkerPool::start(
        Arc::clone(&engine),
        ServingConfig { workers: 2, max_batch: BATCH },
        None,
    ));
    let net = NetServer::start(
        TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
        Arc::clone(&pool),
        NetConfig {
            max_connections: CLIENTS + 2,
            shed: ShedPolicy { queue_high_water: 64, retry_after: Duration::from_secs(1) },
            ..NetConfig::default()
        },
    )
    .expect("start net server");
    let addr = net.local_addr();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let records = records.clone();
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect loopback");
                let mut accepted: Vec<Duration> = Vec::new();
                let mut shed = 0u64;
                for _ in 0..ROUNDS {
                    for chunk in records.chunks(BATCH) {
                        let begin = Instant::now();
                        match client.predict(chunk).expect("overload predict") {
                            PredictOutcome::Answered(results) => {
                                for result in results {
                                    black_box(result.expect("valid"));
                                }
                                accepted.push(begin.elapsed());
                            }
                            PredictOutcome::Shed { .. } => shed += 1,
                        }
                    }
                }
                (accepted, shed)
            })
        })
        .collect();

    let mut latencies: Vec<Duration> = Vec::new();
    let mut shed = 0u64;
    for worker in workers {
        let (lat, s) = worker.join().expect("overload client thread");
        latencies.extend(lat);
        shed += s;
    }
    net.drain();

    assert!(!latencies.is_empty(), "overload run answered nothing at all");
    latencies.sort();
    let p99 = latencies[(latencies.len() - 1) * 99 / 100];
    println!(
        "socket overload: {} accepted, {} shed, p99 {:?} (bound {:?})",
        latencies.len(),
        shed,
        p99,
        p99_bound
    );
    assert!(shed > 0, "2x-capacity load must trip the shed policy at least once");
    assert!(
        p99 < p99_bound,
        "accepted-request p99 {p99:?} breached {p99_bound:?}: the tier is collapsing, not shedding"
    );
}

/// Tracing-overhead assertion (also not a timing benchmark): the same
/// traffic through a trace-off server and a trace-on server where every
/// request carries an `x-overton-trace` header — the most expensive
/// tracing path: always admitted, inserted into the recent ring, folded
/// into the stage histograms and the slowest-K set. Rounds interleave so
/// machine-load drift hits both sides equally; total wall time with
/// tracing must stay within 1.10x of tracing off.
fn socket_tracing_overhead_is_bounded(records: Vec<Record>) {
    const ROUNDS: usize = 8;
    const MAX_RATIO: f64 = 1.10;

    let start_server = |trace: Option<overton_serving::TraceConfig>| {
        let (server, _) = setup();
        let engine = Arc::new(CascadeEngine::single(server));
        let pool = Arc::new(WorkerPool::start(
            Arc::clone(&engine),
            ServingConfig { workers: 4, max_batch: BATCH },
            None,
        ));
        let net = NetServer::start(
            TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
            Arc::clone(&pool),
            NetConfig { trace, ..NetConfig::default() },
        )
        .expect("start net server");
        let client = NetClient::connect(net.local_addr()).expect("connect loopback");
        (net, client)
    };
    let (plain_net, mut plain) = start_server(None);
    let (traced_net, mut traced) = start_server(Some(overton_serving::TraceConfig::default()));

    let pass = |client: &mut NetClient, trace_id: Option<&str>| -> Duration {
        let begin = Instant::now();
        for chunk in records.chunks(BATCH) {
            match client.predict_traced(chunk, trace_id).expect("tracing-overhead predict") {
                (PredictOutcome::Answered(results), _) => {
                    for result in results {
                        black_box(result.expect("valid"));
                    }
                }
                (PredictOutcome::Shed { .. }, _) => panic!("idle server shed"),
            }
        }
        begin.elapsed()
    };

    // Warm both paths (first-touch allocation, lazy TLS, page faults).
    pass(&mut plain, None);
    pass(&mut traced, Some("warmup"));

    let mut plain_total = Duration::ZERO;
    let mut traced_total = Duration::ZERO;
    for round in 0..ROUNDS {
        plain_total += pass(&mut plain, None);
        let id = format!("bench-{round}");
        traced_total += pass(&mut traced, Some(&id));
    }
    plain_net.drain();
    traced_net.drain();

    let ratio = traced_total.as_secs_f64() / plain_total.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "socket tracing overhead: off {plain_total:?}, on {traced_total:?}, ratio {ratio:.3} \
         (bound {MAX_RATIO})"
    );
    assert!(
        ratio <= MAX_RATIO,
        "tracing added {ratio:.3}x (> {MAX_RATIO}x) to socket serving wall time"
    );
}

criterion_group!(benches, bench_serving, bench_socket);
criterion_main!(benches);

//! **P5** — serving throughput: the per-record `Server::predict` loop vs
//! the batched forward path vs the worker pool, on the same model and the
//! same records. The batched path exists because `Graph::param` copies
//! every weight matrix into the inference tape: per-record graphs re-copy
//! the whole model per query, batched graphs once per batch.
//!
//! Run with: `cargo bench -p overton-bench --bench serving_throughput`

use criterion::{criterion_group, criterion_main, Criterion};
use overton_model::{CompiledModel, DeployableModel, FeatureSpace, ModelConfig, Server};
use overton_nlp::{generate_workload, KnowledgeBase, TrafficConfig, TrafficStream, WorkloadConfig};
use overton_serving::{CascadeEngine, ServingConfig, WorkerPool};
use overton_store::Record;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;

const BATCH: usize = 32;
const REQUESTS: usize = 256;

fn setup() -> (Server, Vec<Record>) {
    let ds = generate_workload(&WorkloadConfig {
        n_train: 400,
        n_dev: 50,
        n_test: 50,
        seed: 5,
        ..Default::default()
    });
    let space = FeatureSpace::build(&ds);
    let model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
    let artifact = DeployableModel::package(&model, &space, BTreeMap::new());
    let kb = KnowledgeBase::standard();
    let records = TrafficStream::new(
        &kb,
        TrafficConfig { qps: 1000.0, seed: 6, with_gold: false, ..Default::default() },
    )
    .records(REQUESTS);
    (Server::load(&artifact), records)
}

fn bench_serving(c: &mut Criterion) {
    let (server, records) = setup();
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);

    group.bench_function(&format!("per_record_x{REQUESTS}"), |bench| {
        bench.iter(|| {
            for record in &records {
                black_box(server.predict(record).expect("valid"));
            }
        });
    });

    group.bench_function(&format!("batched_{BATCH}_x{REQUESTS}"), |bench| {
        bench.iter(|| {
            for chunk in records.chunks(BATCH) {
                for result in server.predict_batch(chunk) {
                    black_box(result.expect("valid"));
                }
            }
        });
    });

    group.bench_function(&format!("batched_full_x{REQUESTS}"), |bench| {
        bench.iter(|| {
            for result in server.predict_batch(&records) {
                black_box(result.expect("valid"));
            }
        });
    });

    let (pooled_server, _) = setup();
    let engine = Arc::new(CascadeEngine::single(pooled_server));
    let pool = WorkerPool::start(engine, ServingConfig { workers: 4, max_batch: BATCH }, None);
    group.bench_function(&format!("pool_4workers_{BATCH}_x{REQUESTS}"), |bench| {
        bench.iter(|| {
            for reply in pool.process(records.clone()) {
                black_box(reply.result.expect("valid"));
            }
        });
    });

    group.finish();
    pool.shutdown();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);

//! **A1** — ablation of the supervision combiner: generative label model
//! (EM) vs. majority vote vs. trusting the single best source, plus the
//! closed-form triplet estimator's accuracy recovery.
//!
//! This isolates the design decision of §2.2 ("Overton learns the accuracy
//! of these sources ... and uses these accuracies to compute a probability
//! that each training point is correct").
//!
//! Run with: `cargo bench -p overton-bench --bench ablation_label_model`

use overton::{build, OvertonOptions};
use overton_bench::print_row;
use overton_model::TrainConfig;
use overton_nlp::{generate_workload, SourceSpec, WorkloadConfig};
use overton_supervision::{
    triplet_accuracies, CombineMethod, LabelMatrix, LabelModel, LabelModelConfig,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Part 1: label-quality comparison on a controlled matrix.
    println!("Part 1: posterior label accuracy on synthetic votes");
    println!("(true source accuracies 0.92 / 0.70 / 0.58 / 0.75, full coverage)\n");
    let true_accs = [0.92f32, 0.70, 0.58, 0.75];
    let mut rng = SmallRng::seed_from_u64(55);
    let mut matrix = LabelMatrix::new(true_accs.len());
    let mut truth = Vec::new();
    for _ in 0..6000 {
        let y = rng.gen_range(0..4u32);
        let votes: Vec<Option<u32>> = true_accs
            .iter()
            .map(|&a| {
                Some(if rng.gen::<f32>() < a {
                    y
                } else {
                    let mut w = rng.gen_range(0..3u32);
                    if w >= y {
                        w += 1;
                    }
                    w
                })
            })
            .collect();
        matrix.push_item(4, &votes);
        truth.push(y);
    }
    let acc_of = |preds: &[u32]| {
        preds.iter().zip(&truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
    };
    let mv = overton_supervision::majority_vote_hard(&matrix);
    let lm = LabelModel::fit(&matrix, &LabelModelConfig::default());
    let lm_preds = lm.predict(&matrix);
    let best_single: Vec<u32> = (0..matrix.n_items()).map(|i| matrix.vote(i, 0).unwrap()).collect();

    let widths = [26usize, 12];
    print_row(&["combiner".into(), "label acc".into()], &widths);
    print_row(&["single best source".into(), format!("{:.3}", acc_of(&best_single))], &widths);
    print_row(&["majority vote".into(), format!("{:.3}", acc_of(&mv))], &widths);
    print_row(&["label model (EM)".into(), format!("{:.3}", acc_of(&lm_preds))], &widths);

    println!("\nestimated source accuracies:");
    let binary_matrix = {
        // Binary projection for the triplet method: class 0 vs rest.
        let mut m = LabelMatrix::new(true_accs.len());
        let mut rng = SmallRng::seed_from_u64(56);
        for _ in 0..6000 {
            let y = u32::from(rng.gen_bool(0.5));
            let votes: Vec<Option<u32>> = true_accs
                .iter()
                .map(|&a| Some(if rng.gen::<f32>() < a { y } else { 1 - y }))
                .collect();
            m.push_item(2, &votes);
        }
        m
    };
    let triplet = triplet_accuracies(&binary_matrix);
    let em_binary = LabelModel::fit(&binary_matrix, &LabelModelConfig::default());
    print_row(&["source".into(), "true".into(), "EM".into(), "triplet".into()], &[10, 8, 8, 8]);
    for (j, true_acc) in true_accs.iter().enumerate() {
        print_row(
            &[
                format!("source{j}"),
                format!("{true_acc:.2}"),
                format!("{:.3}", em_binary.accuracies()[j]),
                format!("{:.3}", triplet.accuracies[j]),
            ],
            &[10, 8, 8, 8],
        );
    }

    // Part 2: end-to-end impact on the product.
    println!("\nPart 2: end-to-end test accuracy by combiner (same model, same budget)\n");
    let dataset = generate_workload(&WorkloadConfig {
        n_train: 1200,
        n_dev: 200,
        n_test: 500,
        seed: 57,
        intent_sources: vec![
            SourceSpec::new("lf_keyword", 0.85, 0.95),
            SourceSpec::new("lf_pattern", 0.55, 0.9),
            SourceSpec::new("lf_noisy", 0.45, 0.9),
        ],
        ..Default::default()
    });
    let train = TrainConfig { epochs: 6, early_stop_patience: 0, ..Default::default() };
    let methods: Vec<(&str, CombineMethod)> = vec![
        ("majority vote", CombineMethod::MajorityVote),
        ("label model", CombineMethod::LabelModel(LabelModelConfig::default())),
        ("single source (lf_keyword)", CombineMethod::SingleSource("lf_keyword".into())),
    ];
    let widths2 = [28usize, 12, 12];
    print_row(&["combiner".into(), "Intent".into(), "IntentArg".into()], &widths2);
    for (name, method) in methods {
        let built = build(
            &dataset,
            &OvertonOptions { combine: method, train: train.clone(), ..Default::default() },
        )
        .expect("build");
        print_row(
            &[
                name.into(),
                format!("{:.3}", built.test_accuracy("Intent")),
                format!("{:.3}", built.test_accuracy("IntentArg")),
            ],
            &widths2,
        );
    }
    println!("\n(expected: label model >= majority vote, both >= the noisier single sources)");
}

//! **Figure 4a (E2)** — relative test quality vs. weak-training-set scale
//! (1x → 32x) for three representative tasks, one per payload type:
//! Singleton (Intent, accuracy), Sequence (POS, accuracy) and Set
//! (IntentArg, accuracy). The paper reports a consistent rise, with a
//! 12%+ bump on two tasks and ~5% on one from 1x to 32x.
//!
//! Run with: `cargo bench -p overton-bench --bench fig4a_scaling`

use overton_bench::{build_overton, print_row};
use overton_nlp::{generate_workload, WorkloadConfig};

fn main() {
    let base_train = 200usize; // the "1x" scale
    let scales = [1usize, 2, 4, 8, 16, 32];
    let epochs = 6;
    let seeds = [777u64, 1778];

    let mut baselines: Option<(f64, f64, f64)> = None;
    let widths = [8usize, 10, 22, 22, 22];
    println!(
        "Figure 4a: relative quality vs weak-supervision scale (1x = {base_train} examples, mean of {} seeds)\n",
        seeds.len()
    );
    print_row(
        &[
            "Scale".into(),
            "Train".into(),
            "Singleton (Intent)".into(),
            "Sequence (POS)".into(),
            "Set (IntentArg)".into(),
        ],
        &widths,
    );

    // Fixed dev/test per seed; only the weak training pool grows.
    // Generating the largest dataset once and downsampling (like the
    // paper) keeps the distribution identical across scales.
    let max_scale = *scales.last().unwrap();
    let fulls: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            generate_workload(&WorkloadConfig {
                n_train: base_train * max_scale,
                n_dev: 250,
                n_test: 600,
                seed,
                ..Default::default()
            })
        })
        .collect();

    for &scale in &scales {
        let n = base_train * scale;
        let (mut intent, mut pos, mut arg) = (0.0, 0.0, 0.0);
        for full in &fulls {
            let train_subset: Vec<usize> = full.train_indices().into_iter().take(n).collect();
            let keep: Vec<usize> = train_subset
                .into_iter()
                .chain(full.dev_indices())
                .chain(full.test_indices())
                .collect();
            let dataset = full.subset(&keep);
            let built = build_overton(&dataset, epochs);
            intent += built.test_accuracy("Intent") / fulls.len() as f64;
            pos += built.test_accuracy("POS") / fulls.len() as f64;
            arg += built.test_accuracy("IntentArg") / fulls.len() as f64;
        }
        let (b_intent, b_pos, b_arg) = *baselines.get_or_insert((intent, pos, arg));
        print_row(
            &[
                format!("{scale}x"),
                n.to_string(),
                format!("{:.1}% (acc {:.3})", 100.0 * intent / b_intent, intent),
                format!("{:.1}% (acc {:.3})", 100.0 * pos / b_pos, pos),
                format!("{:.1}% (acc {:.3})", 100.0 * arg / b_arg, arg),
            ],
            &widths,
        );
    }
    println!("\n(relative quality = metric(scale) / metric(1x), as in the paper;");
    println!(" paper: +12%+ on two tasks, +5% on one, rising monotonically)");
}

//! **Live store** — incremental retrain vs full re-ingest at the
//! tentpole scale: a 50k-row sealed base plus a 5k-row sealed delta.
//!
//! The cold path is what a scheduled rebuild does without the live
//! store: re-parse the merged two-file contract (55k JSONL lines),
//! rebuild the feature space, re-run architecture search, and train
//! from random init. The incremental path is the live-store loop:
//! pin a base+delta [`StoreSnapshot`], reuse the previous artifact's
//! feature space and searched architecture, and continue training from
//! its weights. Both paths run under the *same* `OvertonOptions`; the
//! incremental run skips search by design (a fresh architecture would
//! orphan the warm weights).
//!
//! Emits `BENCH_live_store.json` and panics (failing the CI step) when
//! the incremental path is not >= 1.5x faster, or when two identical
//! incremental runs disagree on a single promoted weight (training is
//! seeded and deterministic, so they must be bit-identical).
//!
//! Run with: `cargo bench -p overton-bench --bench live_store`

use overton::store::LiveStore;
use overton::{OvertonOptions, Project};
use overton_model::{SearchConfig, TrainConfig, TuningSpec};
use overton_nlp::{generate_workload, WorkloadConfig};
use overton_store::Dataset;
use overton_tensor::ParamStore;
use std::time::Instant;

/// 47k train + 1k dev + 2k test = the 50k-row sealed base.
const BASE_TRAIN: usize = 47_000;
const BASE_DEV: usize = 1_000;
const BASE_TEST: usize = 2_000;
/// One sealed delta of captured live traffic.
const DELTA_ROWS: usize = 5_000;

/// The rebuild budget both paths run under: coarse search plus a short
/// final training pass.
fn options() -> OvertonOptions {
    OvertonOptions {
        tuning: Some(TuningSpec::default()),
        search: SearchConfig {
            trials: 6,
            threads: 4,
            train: TrainConfig { epochs: 2, early_stop_patience: 0, ..Default::default() },
            ..Default::default()
        },
        train: TrainConfig { epochs: 3, early_stop_patience: 0, ..Default::default() },
        ..Default::default()
    }
}

fn params_equal(a: &ParamStore, b: &ParamStore) -> bool {
    a.len() == b.len()
        && a.ids().zip(b.ids()).all(|(x, y)| a.name(x) == b.name(y) && a.value(x) == b.value(y))
}

fn main() {
    let dir = std::env::temp_dir().join(format!("overton-bench-live-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("bench scratch dir");

    println!(
        "live store: incremental retrain vs full re-ingest \
         ({}k-row base, {}k-row delta)",
        (BASE_TRAIN + BASE_DEV + BASE_TEST) / 1000,
        DELTA_ROWS / 1000
    );
    let base = generate_workload(&WorkloadConfig {
        n_train: BASE_TRAIN,
        n_dev: BASE_DEV,
        n_test: BASE_TEST,
        seed: 17,
        ..Default::default()
    });
    let delta = generate_workload(&WorkloadConfig {
        n_train: DELTA_ROWS,
        n_dev: 0,
        n_test: 0,
        seed: 404,
        ..Default::default()
    });

    // The previous production run (untimed): the artifact the
    // incremental path warm-starts from. A fixed architecture is enough
    // here; what matters is its feature space and trained weights.
    println!("  building the previous artifact on the base (untimed)...");
    let previous = Project::from_dataset(&base)
        .with_options(OvertonOptions {
            train: TrainConfig { epochs: 3, early_stop_patience: 0, ..Default::default() },
            ..Default::default()
        })
        .run()
        .expect("previous run");
    let artifact = previous.artifact().expect("previous artifact").clone();

    // The live store: sealed base plus one sealed delta, snapshot pinned.
    let live = LiveStore::create_from(dir.join("live"), base.seal()).expect("live store");
    for record in delta.records() {
        live.append(record.clone()).expect("append delta row");
    }
    live.flush().expect("seal delta");
    let snapshot = live.snapshot();
    assert_eq!(snapshot.len(), BASE_TRAIN + BASE_DEV + BASE_TEST + DELTA_ROWS);

    // The cold path's input: the merged world as a fresh two-file
    // contract, exactly what a rebuild without the live store re-ingests.
    let schema_path = dir.join("schema.json");
    let data_path = dir.join("data.jsonl");
    let mut merged = Dataset::new(base.schema().clone());
    for record in base.records().iter().chain(delta.records()) {
        merged.push_unchecked(record.clone());
    }
    std::fs::write(&schema_path, base.schema().to_json()).expect("write schema.json");
    merged.write_jsonl_file(&data_path).expect("write data.jsonl");

    println!("  cold: re-ingest both files, search, train from scratch...");
    let start = Instant::now();
    let cold = Project::from_files(&schema_path, &data_path)
        .with_options(options())
        .run()
        .expect("cold run");
    let cold_s = start.elapsed().as_secs_f64();
    assert!(!cold.report().warm_started);

    // Two identical incremental runs: the slower one is the measured
    // time (conservative), and their promoted weights must agree bit
    // for bit — seeded training from the same snapshot and the same
    // warm weights has exactly one trajectory.
    let mut incremental_times = Vec::new();
    let mut params: Vec<ParamStore> = Vec::new();
    for round in 0..2 {
        println!("  incremental (round {}): snapshot + warm start...", round + 1);
        let start = Instant::now();
        let run = Project::from_snapshot(&snapshot)
            .with_options(options())
            .warm_started(artifact.clone())
            .run()
            .expect("incremental run");
        incremental_times.push(start.elapsed().as_secs_f64());
        let incr = run.artifact().expect("incremental artifact");
        assert!(run.report().warm_started);
        assert_eq!(run.report().snapshot_generation, Some(snapshot.generation()));
        assert_eq!(incr.config, artifact.config, "warm start must keep the architecture");
        params.push(incr.params.clone());
    }
    let incremental_s = incremental_times.iter().cloned().fold(0.0, f64::max);
    let weight_parity = params_equal(&params[0], &params[1]);
    assert!(weight_parity, "identical incremental runs promoted different weights");

    let speedup = cold_s / incremental_s;
    println!(
        "  cold {cold_s:.2} s  incremental {incremental_s:.2} s  speedup {speedup:.2}x  \
         weight parity: ok"
    );
    assert!(
        speedup >= 1.5,
        "incremental retrain must be >= 1.5x over full re-ingest, got {speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"base_rows\": {},\n  \"delta_rows\": {},\n  \"cold_s\": {cold_s},\n  \
         \"incremental_s\": {incremental_s},\n  \"speedup\": {speedup:.3},\n  \
         \"weight_parity\": {weight_parity}\n}}\n",
        BASE_TRAIN + BASE_DEV + BASE_TEST,
        DELTA_ROWS
    );
    std::fs::write("BENCH_live_store.json", &json).expect("write BENCH_live_store.json");
    println!("wrote BENCH_live_store.json");
    std::fs::remove_dir_all(&dir).ok();
}

//! **Figure 4b (E3)** — with-BERT vs. without-BERT relative quality across
//! weak-training-set scales.
//!
//! "with-BERT" here is a genuinely pretrained contextual encoder: a masked-
//! token model trained on an in-domain corpus whose embedding table
//! initializes the production model (see `overton-model::pretrained`).
//! The paper's finding: pretraining helps at small scale (notably the Set
//! task), but the advantage collapses into a ±2% band once weak supervision
//! is plentiful.
//!
//! Run with: `cargo bench -p overton-bench --bench fig4b_pretraining`

use overton::{build, OvertonOptions};
use overton_bench::print_row;
use overton_model::{EmbeddingKind, ModelConfig, PretrainConfig, TrainConfig};
use overton_nlp::{generate_workload, pretraining_corpus, KnowledgeBase, WorkloadConfig};

fn main() {
    let base_train = 300usize;
    let scales = [1usize, 2, 4, 8, 16, 32];
    let epochs = 6;

    // Pretrain once on a large in-domain corpus.
    println!("pretraining the masked-token encoder (\"BERT-sim\")...");
    let corpus = pretraining_corpus(&KnowledgeBase::standard(), 6000, 11);
    let artifact = overton_model::pretrain(
        &corpus,
        &PretrainConfig { dim: 32, epochs: 4, ..Default::default() },
    );
    println!("pretraining done (final masked-token loss {:.3})\n", artifact.final_loss);

    let max_scale = *scales.last().unwrap();
    let full = generate_workload(&WorkloadConfig {
        n_train: base_train * max_scale,
        n_dev: 250,
        n_test: 600,
        seed: 888,
        ..Default::default()
    });

    let widths = [8usize, 10, 16, 16, 16, 16];
    println!("Figure 4b: with-BERT vs without-BERT (relative quality, percent)\n");
    print_row(
        &[
            "Scale".into(),
            "Train".into(),
            "Singleton".into(),
            "Sequence".into(),
            "Set".into(),
            "Mean".into(),
        ],
        &widths,
    );

    for &scale in &scales {
        let n = base_train * scale;
        let train_subset: Vec<usize> = full.train_indices().into_iter().take(n).collect();
        let keep: Vec<usize> =
            train_subset.into_iter().chain(full.dev_indices()).chain(full.test_indices()).collect();
        let dataset = full.subset(&keep);

        let without = build(
            &dataset,
            &OvertonOptions {
                train: TrainConfig { epochs, early_stop_patience: 0, ..Default::default() },
                ..Default::default()
            },
        )
        .expect("without-BERT build");

        let with = build(
            &dataset,
            &OvertonOptions {
                base_model: ModelConfig {
                    embedding: EmbeddingKind::Pretrained,
                    token_dim: artifact.dim(),
                    ..Default::default()
                },
                pretrained: Some(artifact.clone()),
                train: TrainConfig { epochs, early_stop_patience: 0, ..Default::default() },
                ..Default::default()
            },
        )
        .expect("with-BERT build");

        let rel = |task: &str| 100.0 * with.test_accuracy(task) / without.test_accuracy(task);
        let (ri, rp, ra) = (rel("Intent"), rel("POS"), rel("IntentArg"));
        print_row(
            &[
                format!("{scale}x"),
                n.to_string(),
                format!("{ri:.1}%"),
                format!("{rp:.1}%"),
                format!("{ra:.1}%"),
                format!("{:.1}%", (ri + rp + ra) / 3.0),
            ],
            &widths,
        );
    }
    println!("\n(100% = no change; paper: gains at small scale, then a ±2% band at 32x)");
}

//! **Figure 3 (E1)** — error reduction of Overton over the previous
//! production system at four resource levels, with the weak-supervision
//! share of training data.
//!
//! Paper's table:
//! ```text
//! Resourcing  Error Reduction   Amount of Weak Supervision
//! High        65% (2.9x)        80%
//! Medium      82% (5.6x)        96%
//! Medium      72% (3.6x)        98%
//! Low         40% (1.7x)        99%
//! ```
//!
//! Overton = label model + multitask + slice heads. Baseline = per-task
//! models + majority vote + no slices (what the paper says Overton
//! replaced). Error is end-to-end: a query is correct iff intent AND
//! argument are both right.
//!
//! Run with: `cargo bench -p overton-bench --bench fig3_error_reduction`

use overton_bench::{
    build_baseline, build_overton, end_to_end_error, joint_accuracy, print_row, ResourceLevel,
};
use overton_monitor::{error_reduction_factor, error_reduction_percent};
use overton_nlp::generate_workload;
use overton_supervision::weak_supervision_fraction;

fn main() {
    let epochs = 6;
    let widths = [10usize, 12, 12, 18, 24];
    println!("Figure 3: Overton vs previous system (end-to-end query error)\n");
    print_row(
        &[
            "Resourcing".into(),
            "Prev err".into(),
            "Overton err".into(),
            "Error Reduction".into(),
            "Weak Supervision".into(),
        ],
        &widths,
    );

    for (i, level) in
        [ResourceLevel::High, ResourceLevel::MediumA, ResourceLevel::MediumB, ResourceLevel::Low]
            .into_iter()
            .enumerate()
    {
        let dataset = generate_workload(&level.workload(100 + i as u64));

        // Weak-supervision share (mean over tasks), as in the paper's
        // rightmost column.
        let tasks: Vec<&String> = dataset.schema().tasks.keys().collect();
        let weak_share =
            tasks.iter().map(|t| f64::from(weak_supervision_fraction(&dataset, t))).sum::<f64>()
                / tasks.len() as f64;

        let overton = build_overton(&dataset, epochs);
        let overton_error = end_to_end_error(
            overton.test_accuracy("Intent"),
            overton.test_accuracy("IntentArg"),
            Some(joint_accuracy(&overton, &dataset)),
        );

        let baseline = build_baseline(&dataset, epochs);
        let baseline_error = end_to_end_error(baseline["Intent"], baseline["IntentArg"], None);

        let pct = error_reduction_percent(baseline_error, overton_error);
        let factor = error_reduction_factor(baseline_error, overton_error);
        print_row(
            &[
                level.name().into(),
                format!("{baseline_error:.3}"),
                format!("{overton_error:.3}"),
                format!("{pct:.0}% ({factor:.1}x)"),
                format!("{:.0}%", weak_share * 100.0),
            ],
            &widths,
        );
    }
    println!("\n(paper: High 65% (2.9x) / 80%, Medium 82% (5.6x) / 96%,");
    println!(" Medium 72% (3.6x) / 98%, Low 40% (1.7x) / 99%)");
}

//! **E4 (paper §2.2)** — slice-based learning on a rare, hard slice:
//! "A production system improved its performance on a slice of complex but
//! rare disambiguations by over 50 points of F1 using the same training
//! data."
//!
//! Two models, identical data and budget; the only difference is the
//! engineer *declaring* the slice — which compiles in indicator + expert
//! capacity and focuses training on the slice (Chen et al., NeurIPS'19).
//! The slice is rare (~2% of queries) and its correct answers contradict
//! the dominant default-sense pattern; in a capacity-constrained production
//! model, the shared parameters never fit it — exactly the regime the paper
//! describes.
//!
//! Run with: `cargo bench -p overton-bench --bench slice_improvement`

use overton::{build, OvertonOptions};
use overton_bench::print_row;
use overton_model::{ModelConfig, TrainConfig};
use overton_nlp::{generate_workload, SourceSpec, WorkloadConfig};

fn main() {
    // Slice supervision is decent (the "refine the labels in that slice"
    // loop has already happened); what is missing without declaration is
    // model capacity + focus.
    let dataset = generate_workload(&WorkloadConfig {
        n_train: 2500,
        n_dev: 250,
        n_test: 1200,
        seed: 4242,
        slice_rate: 0.02,
        vague_rate: 0.03,
        arg_sources: vec![
            SourceSpec::new("lf_default_sense", 1.0, 1.0),
            SourceSpec::new("lf_heuristic", 0.85, 0.9),
            SourceSpec::new("crowd_arg", 0.95, 0.3),
        ],
        ..Default::default()
    });
    let slice = "complex-disambiguation";
    let n_slice_train: usize =
        dataset.in_slice(slice).iter().filter(|&&i| dataset.records()[i].has_tag("train")).count();
    println!(
        "workload: {} train records, {} in slice:{slice} ({:.1}%)\n",
        dataset.train_indices().len(),
        n_slice_train,
        100.0 * n_slice_train as f64 / dataset.train_indices().len() as f64
    );

    // A small production model: the capacity-constrained regime where
    // shared parameters cannot afford the rare exception pattern.
    let base = ModelConfig { token_dim: 8, hidden_dim: 8, entity_dim: 8, ..Default::default() };
    let train = TrainConfig {
        epochs: 5,
        early_stop_patience: 0,
        // Declared slices receive strong training focus (loss-side half of
        // slice-based learning; only active when slice heads exist).
        slice_loss_boost: 8.0,
        indicator_loss_weight: 0.5,
        ..Default::default()
    };
    let run = |slice_heads: bool| {
        build(
            &dataset,
            &OvertonOptions {
                base_model: ModelConfig { slice_heads, ..base.clone() },
                train: train.clone(),
                ..Default::default()
            },
        )
        .expect("build")
    };

    println!("training WITHOUT the slice declared...");
    let without = run(false);
    println!("training WITH the slice declared (indicator + expert + focus)...\n");
    let with = run(true);

    let widths = [28usize, 14, 14, 12];
    print_row(
        &["IntentArg metric".into(), "undeclared".into(), "declared".into(), "delta".into()],
        &widths,
    );
    let rows: Vec<(&str, f64, f64)> = vec![
        ("overall accuracy", without.test_accuracy("IntentArg"), with.test_accuracy("IntentArg")),
        (
            "slice accuracy (F1)",
            without.evaluation.slice_accuracy("IntentArg", slice).unwrap_or(0.0),
            with.evaluation.slice_accuracy("IntentArg", slice).unwrap_or(0.0),
        ),
    ];
    for (name, a, b) in rows {
        print_row(
            &[
                name.into(),
                format!("{a:.3}"),
                format!("{b:.3}"),
                format!("{:+.1} pts", 100.0 * (b - a)),
            ],
            &widths,
        );
    }
    println!(
        "\n(paper: >50 F1 points improvement on the rare complex-disambiguation slice,\n \
         with no loss of overall quality; same training data for both models)"
    );
}

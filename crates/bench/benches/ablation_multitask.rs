//! **A2** — multitask vs. independent single-task models.
//!
//! The paper credits multitask learning with letting Overton "accept
//! supervision at whatever granularity is available" and with ancillary
//! tasks improving the shared representation. Here the same workload is
//! trained (a) as one multitask model and (b) as four independent
//! single-task models with the same per-model budget, both using the label
//! model for supervision.
//!
//! Run with: `cargo bench -p overton-bench --bench ablation_multitask`

use overton_bench::{build_overton, print_row, retarget, single_task_schema};
use overton_model::{evaluate, prepare, train_model, CompiledModel, ModelConfig, TrainConfig};
use overton_nlp::{generate_workload, WorkloadConfig};
use overton_supervision::CombineMethod;

fn main() {
    // A smaller training pool accentuates the value of sharing.
    let dataset = generate_workload(&WorkloadConfig {
        n_train: 500,
        n_dev: 150,
        n_test: 500,
        seed: 31337,
        ..Default::default()
    });
    let epochs = 6;

    println!("training the multitask model...");
    let multitask = build_overton(&dataset, epochs);

    println!("training four independent single-task models...\n");
    let mut single = std::collections::BTreeMap::new();
    for task in dataset.schema().tasks.keys() {
        let sub_schema = single_task_schema(dataset.schema(), task);
        let sub_dataset = retarget(&dataset, &sub_schema);
        let prepared = prepare(&sub_dataset, &CombineMethod::default()).expect("prepare");
        let mut model =
            CompiledModel::compile(&sub_schema, &prepared.space, &ModelConfig::default(), None);
        train_model(
            &mut model,
            &prepared.train,
            &prepared.dev,
            &TrainConfig { epochs, early_stop_patience: 0, ..Default::default() },
        );
        let eval = evaluate(&model, &sub_dataset, &sub_dataset.test_indices(), &prepared.space);
        single.insert(task.clone(), eval.accuracy(task));
    }

    let widths = [12usize, 14, 14, 10];
    print_row(&["task".into(), "single-task".into(), "multitask".into(), "delta".into()], &widths);
    for (task, single_acc) in &single {
        let multi_acc = multitask.test_accuracy(task);
        print_row(
            &[
                task.clone(),
                format!("{single_acc:.3}"),
                format!("{multi_acc:.3}"),
                format!("{:+.1} pts", 100.0 * (multi_acc - single_acc)),
            ],
            &widths,
        );
    }
    println!("\n(expected: multitask matches or beats single-task on most tasks,");
    println!(" with one shared model instead of four to maintain)");
}

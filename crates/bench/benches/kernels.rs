//! **K1–K3** — release-mode smoke for the hardware-fast compute core:
//! blocked GEMM vs the naive loop at production shapes, deterministic
//! data-parallel training scaling, and the i8 quantized small-model
//! forward vs f32. Emits `BENCH_kernels.json` with the measured medians
//! and panics (failing the CI step) when a floor is missed:
//!
//! - blocked GEMM must be >= 2x naive at 256^3 and beat it clearly at
//!   `predict_batch`-like shapes;
//! - `grad_workers = 4` must be >= 1.8x over serial (asserted only when
//!   the host actually has >= 4 cores);
//! - the quantized small forward must be >= 1.5x over the f32 tape path.
//!
//! Run with: `cargo bench -p overton-bench --bench kernels`

use overton_model::{
    CompiledExample, CompiledModel, FeatureSpace, ModelConfig, QuantizedModel, TrainConfig,
};
use overton_nlp::{generate_workload, WorkloadConfig};
use overton_tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Median wall time of `reps` runs of `f`, in seconds (one warmup run).
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn random_matrix(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// The seed's dense fallback loop (i-k-j, contiguous inner loop), kept
/// here verbatim as the baseline the blocked kernels are measured against.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, _k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = b.row(kk);
            let out_row = out.row_mut(i);
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

struct GemmResult {
    label: String,
    naive_s: f64,
    blocked_s: f64,
    speedup: f64,
}

fn bench_gemm(m: usize, k: usize, n: usize, reps: usize, rng: &mut SmallRng) -> GemmResult {
    let a = random_matrix(m, k, rng);
    let b = random_matrix(k, n, rng);
    // Keep the results alive so neither loop is dead code.
    let mut sink = 0.0f32;
    let naive_s = median_secs(reps, || sink += naive_matmul(&a, &b).as_slice()[0]);
    let blocked_s = median_secs(reps, || sink += a.matmul(&b).as_slice()[0]);
    assert!(sink.is_finite());
    assert!(
        naive_matmul(&a, &b).max_abs_diff(&a.matmul(&b)) == 0.0,
        "blocked GEMM is not bit-exact with the naive loop at {m}x{k}x{n}"
    );
    GemmResult { label: format!("{m}x{k}x{n}"), naive_s, blocked_s, speedup: naive_s / blocked_s }
}

fn training_examples() -> (overton_store::Dataset, FeatureSpace, Vec<CompiledExample>) {
    let ds = generate_workload(&WorkloadConfig {
        n_train: 48,
        n_dev: 10,
        n_test: 40,
        seed: 17,
        ..Default::default()
    });
    let space = FeatureSpace::build(&ds);
    let train: Vec<CompiledExample> = ds
        .train_indices()
        .iter()
        .map(|&i| {
            let record = &ds.records()[i];
            let mut ex = CompiledExample::from_record(record, i, &space, ds.schema());
            for task in ds.schema().tasks.keys() {
                if let Some(p) = overton_model::gold_to_prob(ds.schema(), record, task) {
                    ex.targets.insert(task.clone(), p);
                }
            }
            ex
        })
        .collect();
    (ds, space, train)
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(42);
    let reps = 5;

    println!("K1: blocked GEMM vs naive loop (median of {reps})");
    let shapes = [(256, 256, 256), (200, 64, 64), (200, 128, 128)];
    let gemm: Vec<GemmResult> =
        shapes.iter().map(|&(m, k, n)| bench_gemm(m, k, n, reps, &mut rng)).collect();
    for r in &gemm {
        println!(
            "  {:>12}  naive {:>8.3} ms  blocked {:>8.3} ms  speedup {:.2}x",
            r.label,
            r.naive_s * 1e3,
            r.blocked_s * 1e3,
            r.speedup
        );
    }
    assert!(
        gemm[0].speedup >= 2.0,
        "blocked GEMM must be >= 2x naive at 256^3, got {:.2}x",
        gemm[0].speedup
    );
    for r in &gemm[1..] {
        assert!(
            r.speedup >= 1.3,
            "blocked GEMM must clearly beat naive at {} (predict_batch shape), got {:.2}x",
            r.label,
            r.speedup
        );
    }

    println!("K2: data-parallel training scaling (fixed seed, identical trajectories)");
    let (ds, space, train) = training_examples();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let time_with_workers = |workers: usize| {
        let mut model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
        let config = TrainConfig {
            epochs: 2,
            early_stop_patience: 0,
            grad_workers: workers,
            ..Default::default()
        };
        let start = Instant::now();
        let report = overton_model::train_model(&mut model, &train, &[], &config);
        (start.elapsed().as_secs_f64(), report.history)
    };
    let (serial_s, serial_history) = time_with_workers(1);
    let (parallel_s, parallel_history) = time_with_workers(4);
    let train_speedup = serial_s / parallel_s;
    println!(
        "  cores {cores}  1 worker {:.3} s  4 workers {:.3} s  speedup {train_speedup:.2}x",
        serial_s, parallel_s
    );
    assert!(serial_history == parallel_history, "grad_workers changed the training trajectory");
    // The scaling floor only means something on a host that can actually
    // run 4 workers; either way the outcome is stated explicitly so the
    // CI log (which greps for these markers) can't silently skip it.
    let k2_floor_enforced = cores >= 4;
    if k2_floor_enforced {
        assert!(
            train_speedup >= 1.8,
            "4 gradient workers must be >= 1.8x over serial on a {cores}-core host, \
             got {train_speedup:.2}x"
        );
        println!("  K2 floor: ENFORCED (>= 1.8x on {cores} cores, got {train_speedup:.2}x)");
    } else {
        println!("  K2 floor: SKIPPED ({cores} core(s) < 4)");
    }

    println!("K3: quantized small-model forward vs f32 tape path (median of {reps})");
    let small_cfg = ModelConfig { hidden_dim: 16, token_dim: 16, ..Default::default() };
    let small = CompiledModel::compile(ds.schema(), &space, &small_cfg, None);
    let quantized = QuantizedModel::from_model(&small);
    let test: Vec<CompiledExample> = ds
        .test_indices()
        .iter()
        .map(|&i| CompiledExample::from_record(&ds.records()[i], i, &space, ds.schema()))
        .collect();
    // Interleave f32/quantized rounds and compare per-round ratios: on a
    // busy host, drift hits both paths of a round equally, so the median
    // ratio is far more stable than the ratio of independent medians.
    let round = |f: &dyn Fn()| {
        let start = Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };
    let f32_round: &dyn Fn() = &|| {
        for ex in &test {
            std::hint::black_box(small.predict(ex));
        }
    };
    let quant_round: &dyn Fn() = &|| {
        for ex in &test {
            std::hint::black_box(quantized.predict(ex));
        }
    };
    f32_round();
    quant_round();
    let rounds = 25;
    let mut f32_times = Vec::with_capacity(rounds);
    let mut quant_times = Vec::with_capacity(rounds);
    let mut ratios = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let f = round(f32_round);
        let q = round(quant_round);
        f32_times.push(f);
        quant_times.push(q);
        ratios.push(f / q);
    }
    f32_times.sort_by(f64::total_cmp);
    quant_times.sort_by(f64::total_cmp);
    ratios.sort_by(f64::total_cmp);
    let f32_s = f32_times[rounds / 2];
    let quant_s = quant_times[rounds / 2];
    let quant_speedup = ratios[rounds / 2];
    println!(
        "  f32 {:.3} ms/batch  quantized {:.3} ms/batch  speedup {quant_speedup:.2}x",
        f32_s * 1e3,
        quant_s * 1e3
    );
    assert!(
        quant_speedup >= 1.5,
        "quantized small forward must be >= 1.5x over f32, got {quant_speedup:.2}x"
    );

    let mut json = String::from("{\n  \"gemm\": [\n");
    for (i, r) in gemm.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shape\": \"{}\", \"naive_s\": {}, \"blocked_s\": {}, \"speedup\": {:.3}}}{}\n",
            r.label,
            r.naive_s,
            r.blocked_s,
            r.speedup,
            if i + 1 < gemm.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"training\": {{\"cores\": {cores}, \"serial_s\": {serial_s}, \
         \"workers4_s\": {parallel_s}, \"speedup\": {train_speedup:.3}, \
         \"floor_enforced\": {k2_floor_enforced}}},\n"
    ));
    json.push_str(&format!(
        "  \"quantized\": {{\"f32_s\": {f32_s}, \"quantized_s\": {quant_s}, \
         \"speedup\": {quant_speedup:.3}}}\n}}\n"
    ));
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}

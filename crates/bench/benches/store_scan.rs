//! **P5** — the data-spine benchmark: shard-parallel scan + supervision
//! combination over a sealed [`ShardedStore`] versus the single-threaded
//! eager `Vec<Record>` path, on a ≥100k-record synthetic workload.
//!
//! The eager path re-traverses the record vector once per task (four
//! times here) and re-derives sources/splits as it goes; the sealed store
//! is scanned **once** through zero-copy row views, every shard building
//! partial label matrices in parallel that merge in shard order. Both
//! paths produce bit-for-bit identical combined supervision (asserted
//! below before timing).
//!
//! Run with: `cargo bench -p overton-bench --bench store_scan`

use criterion::{criterion_group, criterion_main, Criterion};
use overton_nlp::{generate_workload, generate_workload_sealed, WorkloadConfig};
use overton_store::{Dataset, ShardedStore};
use overton_supervision::{combine_all, combine_task, CombineMethod};
use std::hint::black_box;
use std::time::Instant;

/// ≥100k records, per the data-layer acceptance bar.
const N_RECORDS: usize = 100_000;
/// All four workload tasks (sorted, as the schema stores them).
const TASKS: [&str; 4] = ["EntityType", "Intent", "IntentArg", "POS"];

fn config() -> WorkloadConfig {
    WorkloadConfig { n_train: N_RECORDS, n_dev: 0, n_test: 0, seed: 11, ..Default::default() }
}

/// The baseline: the eager per-task driver over `Vec<Record>` (one full
/// traversal per task).
fn eager_combine(dataset: &Dataset) -> usize {
    TASKS
        .iter()
        .map(|task| {
            combine_task(dataset, task, &CombineMethod::MajorityVote)
                .expect("combine succeeds")
                .supervised_count()
        })
        .sum()
}

/// The sharded path: one zero-copy shard-parallel scan combining all
/// tasks.
fn sharded_combine(store: &ShardedStore) -> usize {
    combine_all(store, &CombineMethod::MajorityVote)
        .expect("combine succeeds")
        .values()
        .map(|c| c.supervised_count())
        .sum()
}

fn bench_store_scan(c: &mut Criterion) {
    println!("generating {N_RECORDS}-record workload ...");
    let t = Instant::now();
    let dataset = generate_workload(&config());
    println!("  eager dataset in {:.1?}", t.elapsed());

    let t = Instant::now();
    let store = generate_workload_sealed(&config());
    println!(
        "  sealed store in {:.1?}: {} rows, {} shards, {:.1} MiB encoded",
        t.elapsed(),
        store.len(),
        store.num_shards(),
        store.total_bytes() as f64 / (1024.0 * 1024.0),
    );

    // Both drivers must agree before any timing claims.
    let eager_supervised = eager_combine(&dataset);
    let sharded_supervised = sharded_combine(&store);
    assert_eq!(eager_supervised, sharded_supervised, "drivers disagree");

    // Headline best-of-3 comparison (the criterion medians below repeat
    // it with more samples).
    let best_of = |f: &dyn Fn() -> usize| {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed()
            })
            .min()
            .expect("three runs")
    };
    let eager_time = best_of(&|| eager_combine(&dataset));
    let sharded_time = best_of(&|| sharded_combine(&store));
    println!(
        "scan+combine x{} tasks over {N_RECORDS} records: eager Vec<Record> {:.2?} vs \
         sharded par_scan {:.2?} ({:.2}x)",
        TASKS.len(),
        eager_time,
        sharded_time,
        eager_time.as_secs_f64() / sharded_time.as_secs_f64().max(1e-9),
    );

    let mut group = c.benchmark_group("store_scan");
    group.sample_size(5);
    group.bench_function("seal_100k", |b| {
        b.iter(|| black_box(dataset.seal()).len());
    });
    group.bench_function("eager_vec_combine_4tasks", |b| {
        b.iter(|| black_box(eager_combine(&dataset)));
    });
    group.bench_function("sharded_par_combine_all", |b| {
        b.iter(|| black_box(sharded_combine(&store)));
    });
    group.bench_function("eager_vec_full_traversal", |b| {
        b.iter(|| {
            let n: usize = dataset.records().iter().map(|r| r.tags.len() + r.payloads.len()).sum();
            black_box(n)
        });
    });
    group.bench_function("sharded_par_scan_views", |b| {
        b.iter(|| {
            let partials = store
                .par_scan(|scan| {
                    let mut n = 0usize;
                    for (_, view) in scan.views() {
                        let view = view?;
                        n += view.tags.len() + view.payloads.len();
                    }
                    Ok(n)
                })
                .expect("scan succeeds");
            black_box(partials.into_iter().sum::<usize>())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_store_scan);
criterion_main!(benches);

//! **P1–P4** — criterion microbenchmarks for the substrates: tensor
//! kernels, row-store scan/lookup, label-model fitting, and full training
//! steps. These have no paper counterpart; they guard the performance of
//! the infrastructure the experiments run on.
//!
//! Run with: `cargo bench -p overton-bench --bench micro_perf`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use overton_model::{CompiledModel, FeatureSpace, ModelConfig};
use overton_nlp::{generate_workload, WorkloadConfig};
use overton_store::rowstore::RowStore;
use overton_supervision::{LabelMatrix, LabelModel, LabelModelConfig};
use overton_tensor::{Graph, Matrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_tensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    group.sample_size(30);
    let a = Matrix::full(64, 64, 0.5);
    let b = Matrix::full(64, 64, 0.25);
    group.bench_function("matmul_64x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b)));
    });
    group.bench_function("forward_backward_mlp", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let x = g.leaf(Matrix::full(16, 64, 0.1));
            let w = g.leaf(Matrix::full(64, 64, 0.01));
            let h = g.matmul(x, w);
            let act = g.relu(h);
            let loss = g.mean_all(act);
            g.backward(loss);
            black_box(g.grad(w).is_some())
        });
    });
    group.finish();
}

fn bench_rowstore(c: &mut Criterion) {
    let mut group = c.benchmark_group("rowstore");
    group.sample_size(30);
    let dataset = generate_workload(&WorkloadConfig {
        n_train: 1000,
        n_dev: 0,
        n_test: 0,
        seed: 1,
        ..Default::default()
    });
    group.bench_function("build_1k_rows", |bench| {
        bench.iter(|| black_box(RowStore::build(dataset.records())));
    });
    let store = RowStore::build(dataset.records());
    group.bench_function("scan_1k_rows", |bench| {
        bench.iter(|| {
            let mut n = 0usize;
            for r in store.scan() {
                n += r.expect("decodes").payloads.len();
            }
            black_box(n)
        });
    });
    group.bench_function("point_lookup", |bench| {
        let mut i = 0usize;
        bench.iter(|| {
            i = (i + 37) % store.len();
            black_box(store.get(i).expect("decodes"))
        });
    });
    group.finish();
}

fn bench_label_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_model");
    group.sample_size(20);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut matrix = LabelMatrix::new(5);
    for _ in 0..2000 {
        let y = rng.gen_range(0..4u32);
        let votes: Vec<Option<u32>> = (0..5)
            .map(|_| {
                if rng.gen_bool(0.2) {
                    None
                } else if rng.gen_bool(0.8) {
                    Some(y)
                } else {
                    Some(rng.gen_range(0..4))
                }
            })
            .collect();
        matrix.push_item(4, &votes);
    }
    group.bench_function("fit_em_2k_items_5_sources", |bench| {
        bench.iter(|| black_box(LabelModel::fit(&matrix, &LabelModelConfig::default())));
    });
    let model = LabelModel::fit(&matrix, &LabelModelConfig::default());
    group.bench_function("posterior_2k_items", |bench| {
        bench.iter(|| black_box(model.predict_proba(&matrix)));
    });
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("training");
    group.sample_size(20);
    let dataset = generate_workload(&WorkloadConfig {
        n_train: 64,
        n_dev: 8,
        n_test: 8,
        seed: 2,
        gold_train_fraction: 1.0,
        ..Default::default()
    });
    let space = FeatureSpace::build(&dataset);
    let model = CompiledModel::compile(dataset.schema(), &space, &ModelConfig::default(), None);
    let examples: Vec<_> = dataset
        .train_indices()
        .into_iter()
        .map(|i| {
            let record = &dataset.records()[i];
            let mut ex =
                overton_model::CompiledExample::from_record(record, i, &space, dataset.schema());
            for task in dataset.schema().tasks.keys() {
                if let Some(p) = overton_model::gold_to_prob(dataset.schema(), record, task) {
                    ex.targets.insert(task.clone(), p);
                }
            }
            ex
        })
        .collect();
    group.bench_function("forward_backward_one_example", |bench| {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut i = 0usize;
        bench.iter_batched(
            || {
                i = (i + 1) % examples.len();
                examples[i].clone()
            },
            |ex| {
                let mut g = Graph::new();
                let pass = model.forward(&mut g, &ex, true, &mut rng);
                if let Some(loss) = model.loss(&mut g, &pass, &ex, 0.3) {
                    g.backward(loss);
                }
                black_box(g.len())
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("predict_one_example", |bench| {
        let mut i = 0usize;
        bench.iter(|| {
            i = (i + 1) % examples.len();
            black_box(model.predict(&examples[i]))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_tensor, bench_rowstore, bench_label_model, bench_training);
criterion_main!(benches);

//! **A3** — coarse architecture search on/off (paper §2.4: "first versions
//! of all Overton systems are tuned using standard approaches", and §4 on
//! coarse-grained search).
//!
//! Compares the fixed default architecture against the winner of a
//! random search over the tuning spec of Figure 2a (encoder family, sizes,
//! aggregation), with the winner retrained to the same final budget.
//!
//! Run with: `cargo bench -p overton-bench --bench ablation_search`

use overton::{build, OvertonOptions};
use overton_bench::print_row;
use overton_model::{SearchConfig, TrainConfig, TuningSpec};
use overton_nlp::{generate_workload, WorkloadConfig};

fn main() {
    let dataset = generate_workload(&WorkloadConfig {
        n_train: 800,
        n_dev: 200,
        n_test: 500,
        seed: 2024,
        ..Default::default()
    });
    let train = TrainConfig { epochs: 6, early_stop_patience: 0, ..Default::default() };

    println!("building with the fixed default architecture...");
    let fixed = build(&dataset, &OvertonOptions { train: train.clone(), ..Default::default() })
        .expect("fixed build");

    println!("building with coarse architecture search (6 trials, short budget)...\n");
    let searched = build(
        &dataset,
        &OvertonOptions {
            tuning: Some(TuningSpec::default()),
            search: SearchConfig {
                trials: 6,
                threads: 4,
                train: TrainConfig { epochs: 2, early_stop_patience: 0, ..Default::default() },
                ..Default::default()
            },
            train,
            ..Default::default()
        },
    )
    .expect("searched build");

    println!("search trials (dev score, best first):");
    for trial in &searched.trials {
        println!(
            "  {:?} token_dim={} hidden={} agg={:?}: dev {:.4}",
            trial.config.encoder,
            trial.config.token_dim,
            trial.config.hidden_dim,
            trial.config.aggregation,
            trial.dev_score
        );
    }
    println!("\nchosen: {:?} (default was Cnn/32/48)\n", searched.chosen_config.encoder);

    let widths = [12usize, 12, 12];
    print_row(&["task".into(), "fixed".into(), "searched".into()], &widths);
    for task in dataset.schema().tasks.keys() {
        print_row(
            &[
                task.clone(),
                format!("{:.3}", fixed.test_accuracy(task)),
                format!("{:.3}", searched.test_accuracy(task)),
            ],
            &widths,
        );
    }
    print_row(
        &[
            "mean".into(),
            format!("{:.3}", fixed.mean_test_accuracy()),
            format!("{:.3}", searched.mean_test_accuracy()),
        ],
        &widths,
    );
    println!("\n(expected: search matches or improves the fixed default — the point is");
    println!(" that the ENGINEER never picks the architecture, not that search is magic)");
}

//! CLI-level socket tests, driven through the real `overton` binary:
//! `serve --listen` must fail fast — nonzero, naming the address — on a
//! bad or busy address, and `--probe` must round-trip a prediction
//! through a real TCP connection on a built project.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn overton(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_overton")).args(args).output().expect("spawn overton binary")
}

fn temp_project(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("overton-cli-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp project dir");
    dir
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn unparseable_listen_addr_exits_nonzero_naming_the_addr() {
    let dir = temp_project("badaddr");
    // The bind happens before any artifact loading, so an empty project
    // directory is enough to reach it.
    let out = overton(&["serve", dir.to_str().unwrap(), "--listen", "definitely-not-an-address"]);
    assert!(!out.status.success(), "bad --listen addr must exit nonzero");
    let err = stderr_of(&out);
    assert!(
        err.contains("definitely-not-an-address"),
        "error must name the offending address, got: {err}"
    );
    assert!(err.contains("cannot listen on"), "got: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn busy_port_exits_nonzero_naming_the_addr() {
    let dir = temp_project("busyport");
    // Hold the port ourselves; std listeners don't set SO_REUSEADDR, so
    // the second bind reliably fails on every platform we build on.
    let holder = TcpListener::bind("127.0.0.1:0").expect("bind holder port");
    let addr = holder.local_addr().unwrap().to_string();
    let out = overton(&["serve", dir.to_str().unwrap(), "--listen", &addr]);
    assert!(!out.status.success(), "busy port must exit nonzero");
    let err = stderr_of(&out);
    assert!(err.contains(&addr), "error must name the busy address, got: {err}");
    assert!(err.contains("cannot listen on"), "got: {err}");
    drop(holder);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn probe_without_listen_is_rejected() {
    let dir = temp_project("probeonly");
    let out = overton(&["serve", dir.to_str().unwrap(), "--probe"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--probe needs --listen"));
    let _ = std::fs::remove_dir_all(&dir);
}

fn build_tiny_project(dir: &Path) {
    let out =
        overton(&["init", dir.to_str().unwrap(), "--train", "40", "--dev", "10", "--test", "20"]);
    assert!(out.status.success(), "init failed: {}", stderr_of(&out));
    let out = overton(&["build", dir.to_str().unwrap(), "--epochs", "1"]);
    assert!(out.status.success(), "build failed: {}", stderr_of(&out));
}

#[test]
fn probe_round_trips_through_a_real_socket_and_drains() {
    let dir = temp_project("probe");
    build_tiny_project(&dir);
    // Port 0: the kernel picks a free port, printed in "listening on".
    let out = overton(&["serve", dir.to_str().unwrap(), "--listen", "127.0.0.1:0", "--probe"]);
    let stdout = stdout_of(&out);
    assert!(
        out.status.success(),
        "probe serve failed\nstdout: {stdout}\nstderr: {}",
        stderr_of(&out)
    );
    assert!(stdout.contains("listening on 127.0.0.1:"), "got: {stdout}");
    assert!(stdout.contains("probe round-trip ok"), "got: {stdout}");
    assert!(stdout.contains("trace round-trip ok (8 spans)"), "got: {stdout}");
    assert!(stdout.contains("metrics scrape ok"), "got: {stdout}");
    assert!(stdout.contains("drained"), "got: {stdout}");
    // The post-drain telemetry covers the probe's served requests: the
    // 4-record batch plus the single-record traced round-trip.
    assert!(stdout.contains("served 5 "), "got: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

//! `overton` — the two-file contract as a command line.
//!
//! A *project directory* holds the paper's entire engineer contract:
//!
//! ```text
//! <dir>/schema.json   payloads + tasks
//! <dir>/data.jsonl    one record per line (supervision, tags, slices)
//! ```
//!
//! Every other artifact is produced by the tool under `<dir>/runs/<id>/`
//! (sealed store, per-stage artifacts, `report.json`) and
//! `<dir>/registry/`. No Rust — or any other code — is required of the
//! engineer: edit the data file, `overton build`, read `overton report`.

use overton::model::Server;
use overton::nlp::{
    write_two_file_workload, DriftConfig, DriftingTrafficStream, KnowledgeBase, TrafficConfig,
    WorkloadConfig,
};
use overton::obs::{default_rules, Monitor, ObsConfig, ObsLog, Watchdog, WatchdogConfig};
use overton::serving::net::{self, NetClient, NetConfig, NetServer, PredictOutcome};
use overton::serving::{CascadeEngine, ServingConfig, TrafficBaseline, WorkerPool};
use overton::store::live::LIVE_MANIFEST;
use overton::store::{LiveStore, Schema, ShardedStore};
use overton::{model::DeployableModel, monitor::QualityReport, OvertonOptions, Project, Stage};
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
overton — the Overton two-file contract, no code required

USAGE:
    overton <command> <project-dir> [options]

COMMANDS:
    init      write an example schema.json + data.jsonl workload pair
    build     run the staged pipeline on the two files (ingest → evaluate)
    evaluate  re-run evaluation of a persisted run (no retraining)
    serve     serve a persisted run's test split through the worker pool
    monitor   replay the deployment's obslog: windowed history + alerts
    meter     print the project's test-set reuse budget ledger
              (<dir>/meter.json): initial budget, per-run debits, remaining
    report    print a persisted run's stage telemetry + quality reports
    trace     render spans: a run's trace.jsonl (trace <project-dir>), or
              a live server's slowest requests (trace <addr>, e.g.
              trace 127.0.0.1:7878)
    append    append <dir> <file>: append JSONL records into the project's
              live store (<dir>/live), sealing them as a delta segment
    compact   merge the live store's sealed deltas into its base (atomic,
              crash-safe; readers pinned to older snapshots are unaffected)
    store     store verify <dir>: run checksum verification across the
              live store's base + delta segments (or a plain sealed store
              directory), printing per-segment status

OPTIONS:
    --run <id>        operate on this run (default: the latest)
    --from <stage>    (build) resume the run from this stage:
                      ingest|combine|search|train|package|evaluate
                      (a resumed run keeps the options it started with)
    --epochs <n>      (build) training epochs for new runs [default: 8]
    --grad-workers <n> (build) threads sharing each optimizer step's
                      gradient computation [default: 1]. Any value yields
                      bit-identical weights; this is a wall-time knob only
    --train <n>       (init) training records        [default: 800]
    --dev <n>         (init) dev records             [default: 100]
    --test <n>        (init) test records            [default: 200]
    --seed <n>        (init/serve) RNG seed          [default: 0]
    --requests <n>    (serve) how many records to serve [default: all]
    --workers <n>     (serve) worker threads         [default: 4]
    --listen <addr>   (serve) serve over TCP on <addr> (e.g. 127.0.0.1:7878;
                      port 0 picks a free port) instead of replaying the
                      test split; drain with SIGTERM/Ctrl-C. Also exposes
                      GET /metrics (Prometheus text), /traces and
                      /trace/<id>; requests may carry an x-overton-trace
                      header to name their trace
    --probe           (serve --listen) one loopback round-trip through the
                      socket, then drain and exit (CI smoke)
    --high-water <n>  (serve --listen) shed /predict with 503 once the
                      pool queue reaches <n> [default: 256]
    --max-conns <n>   (serve --listen) connection cap; excess connections
                      get an immediate 503 [default: 64]
    --obs             (serve) observe the pool: windowed stats, drift
                      alerts, and an obslog under registry/<name>/obslog
    --drift           (serve) serve a seeded DriftingTrafficStream (slice
                      mix + vague-query shift halfway in; implies --obs)
    --capture         (serve) after serving, append gold-labeled traffic
                      from watchdog-escalated slices into <dir>/live for
                      the next incremental retrain (implies --obs)
    --window <n>      (serve) requests per tumbling window [default: 250]
    --csv             (monitor) dump the windowed history as CSV
    --id <trace-id>   (trace <addr>) fetch one trace by id instead of the
                      slowest-request list
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("overton: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return Err("missing command".into());
    };
    if command == "--help" || command == "-h" || command == "help" {
        print!("{USAGE}");
        return Ok(());
    }
    // `store verify <dir>` nests a subcommand before the directory.
    if command == "store" {
        return match args.get(1).map(String::as_str) {
            Some("verify") => {
                let dir = args
                    .get(2)
                    .filter(|a| !a.starts_with("--"))
                    .ok_or_else(|| format!("missing <dir>\n\n{USAGE}"))?;
                store_verify(Path::new(dir))
            }
            other => Err(format!(
                "unknown store subcommand {:?}; try `overton store verify <dir>`",
                other.unwrap_or("")
            )),
        };
    }
    let dir = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| format!("missing <project-dir>\n\n{USAGE}"))?;
    let dir = PathBuf::from(dir);
    // `append <dir> <file>` takes one more positional operand.
    if command == "append" {
        let file = args
            .get(2)
            .filter(|a| !a.starts_with("--"))
            .ok_or_else(|| format!("missing <file>: append <dir> <file>\n\n{USAGE}"))?;
        let _ = Flags::parse(&args[3..])?;
        return append(&dir, Path::new(file));
    }
    let flags = Flags::parse(&args[2..])?;
    match command.as_str() {
        "init" => init(&dir, &flags),
        "build" => build(&dir, &flags),
        "evaluate" => evaluate(&dir, &flags),
        "serve" => serve(&dir, &flags),
        "monitor" => monitor(&dir, &flags),
        "meter" => meter(&dir),
        "report" => report(&dir, &flags),
        "trace" => trace(&dir, &flags),
        "compact" => compact(&dir),
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

/// Parsed command-line options (all optional, all `--flag value`).
#[derive(Default)]
struct Flags {
    run: Option<String>,
    from: Option<Stage>,
    epochs: Option<usize>,
    grad_workers: Option<usize>,
    train: Option<usize>,
    dev: Option<usize>,
    test: Option<usize>,
    seed: Option<u64>,
    requests: Option<usize>,
    workers: Option<usize>,
    listen: Option<String>,
    probe: bool,
    high_water: Option<usize>,
    max_conns: Option<usize>,
    obs: bool,
    drift: bool,
    capture: bool,
    window: Option<u64>,
    csv: bool,
    id: Option<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = Flags::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().map(String::as_str).ok_or(format!("{name} needs a value"));
            match flag.as_str() {
                "--run" => flags.run = Some(value("--run")?.to_string()),
                "--from" => {
                    let name = value("--from")?;
                    flags.from = Some(Stage::parse(name).ok_or(format!("unknown stage '{name}'"))?);
                }
                "--epochs" => flags.epochs = Some(parse_num(value("--epochs")?, "--epochs")?),
                "--grad-workers" => {
                    flags.grad_workers =
                        Some(parse_num(value("--grad-workers")?, "--grad-workers")?)
                }
                "--train" => flags.train = Some(parse_num(value("--train")?, "--train")?),
                "--dev" => flags.dev = Some(parse_num(value("--dev")?, "--dev")?),
                "--test" => flags.test = Some(parse_num(value("--test")?, "--test")?),
                "--seed" => flags.seed = Some(parse_num(value("--seed")?, "--seed")?),
                "--requests" => {
                    flags.requests = Some(parse_num(value("--requests")?, "--requests")?)
                }
                "--workers" => flags.workers = Some(parse_num(value("--workers")?, "--workers")?),
                "--listen" => flags.listen = Some(value("--listen")?.to_string()),
                "--probe" => flags.probe = true,
                "--high-water" => {
                    flags.high_water = Some(parse_num(value("--high-water")?, "--high-water")?)
                }
                "--max-conns" => {
                    flags.max_conns = Some(parse_num(value("--max-conns")?, "--max-conns")?)
                }
                "--obs" => flags.obs = true,
                "--drift" => {
                    flags.drift = true;
                    flags.obs = true;
                }
                "--capture" => {
                    flags.capture = true;
                    flags.obs = true;
                }
                "--window" => flags.window = Some(parse_num(value("--window")?, "--window")?),
                "--csv" => flags.csv = true,
                "--id" => flags.id = Some(value("--id")?.to_string()),
                other => return Err(format!("unknown option '{other}'\n\n{USAGE}")),
            }
        }
        Ok(flags)
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("{flag}: '{value}' is not a number"))
}

/// The project over `<dir>/schema.json` + `<dir>/data.jsonl`, persisting
/// runs under `<dir>/runs/`.
fn project(dir: &Path, flags: &Flags) -> Project {
    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "overton".into());
    let mut options = OvertonOptions::default();
    options.train.epochs = flags.epochs.unwrap_or(8);
    options.train.grad_workers = flags.grad_workers.unwrap_or(1);
    Project::from_files(dir.join("schema.json"), dir.join("data.jsonl"))
        .named(&name)
        .with_options(options)
        .at(dir)
}

fn run_id(dir: &Path, flags: &Flags) -> Result<String, String> {
    if let Some(id) = &flags.run {
        return Ok(id.clone());
    }
    project(dir, flags)
        .latest_run_id()
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("no runs under {}; run `overton build` first", dir.display()))
}

fn init(dir: &Path, flags: &Flags) -> Result<(), String> {
    let config = WorkloadConfig {
        n_train: flags.train.unwrap_or(800),
        n_dev: flags.dev.unwrap_or(100),
        n_test: flags.test.unwrap_or(200),
        seed: flags.seed.unwrap_or(0),
        ..Default::default()
    };
    let (schema, data) = write_two_file_workload(&config, dir).map_err(|e| e.to_string())?;
    println!("wrote {}", schema.display());
    println!(
        "wrote {} ({} records: {} train / {} dev / {} test)",
        data.display(),
        config.n_train + config.n_dev + config.n_test,
        config.n_train,
        config.n_dev,
        config.n_test
    );
    println!("next: overton build {}", dir.display());
    Ok(())
}

fn build(dir: &Path, flags: &Flags) -> Result<(), String> {
    let project = project(dir, flags);
    let mut run = match flags.from {
        Some(stage) => {
            let id = run_id(dir, flags)?;
            println!("resuming {id} from stage {stage}");
            project.resume(&id, stage).map_err(|e| e.to_string())?
        }
        None if flags.run.is_some() => {
            return Err("--run only selects an existing run; add --from <stage> to resume it \
                 (or drop --run to start a new run)"
                .into());
        }
        None => project.start().map_err(|e| e.to_string())?,
    };
    while let Some(stage) = run.next_stage() {
        println!("stage {stage}...");
        run.advance().map_err(|e| e.to_string())?;
        let done = run.report().stages.last().expect("stage just ran");
        println!("  {} records in {} ms", done.records, done.wall_ms);
    }
    println!();
    print!("{}", run.report());
    if let Some(run_dir) = run.dir() {
        println!("run directory: {}", run_dir.display());
    }
    Ok(())
}

fn evaluate(dir: &Path, flags: &Flags) -> Result<(), String> {
    let id = run_id(dir, flags)?;
    let project = project(dir, flags);
    let mut run = project.resume(&id, Stage::Evaluate).map_err(|e| e.to_string())?;
    run.complete().map_err(|e| e.to_string())?;
    for report in run.evaluation().expect("run evaluated").reports.values() {
        println!("{report}");
    }
    print!("{}", run.report());
    Ok(())
}

/// The deployment name a project directory implies (its basename, the
/// same rule [`project`] uses) — fixes where the obslog lives:
/// `<dir>/registry/<name>/obslog`.
fn obslog_dir(dir: &Path) -> PathBuf {
    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "overton".into());
    dir.join("registry").join(name).join("obslog")
}

/// Prints a monitor's obslog write failures, if it recorded any. A
/// failed append is a permanent gap in the durable history, so every
/// path that owns a monitor surfaces it instead of swallowing it.
fn report_log_failures(monitor: &Monitor) {
    if monitor.log_errors() > 0 {
        eprintln!(
            "overton: warning: {} obslog write failure(s); the windowed history has gaps \
             (last: {})",
            monitor.log_errors(),
            monitor.last_log_error().unwrap_or("unknown")
        );
    }
}

fn serve(dir: &Path, flags: &Flags) -> Result<(), String> {
    // Bind before anything expensive: a busy port or an unparseable
    // --listen address fails in milliseconds, naming the address, instead
    // of after a full artifact load.
    let listener = match &flags.listen {
        Some(addr) => Some(net::bind(addr).map_err(|e| e.to_string())?),
        None => {
            if flags.probe {
                return Err("--probe needs --listen".into());
            }
            None
        }
    };
    let id = run_id(dir, flags)?;
    let run_dir = dir.join("runs").join(&id);
    let artifact_path = run_dir.join("artifact.model.json");
    let bytes = std::fs::read(&artifact_path)
        .map_err(|e| format!("cannot read {}: {e}", artifact_path.display()))?;
    let artifact = DeployableModel::from_bytes(&bytes).map_err(|e| e.to_string())?;
    let server = Server::load(&artifact);

    // The run's persisted traffic baseline (written at evaluate) arms the
    // drift detectors; older runs serve without one. A baseline that
    // exists but does not parse is an error, not a silent downgrade —
    // otherwise drift detection would be off while looking on.
    let baseline_path = run_dir.join("baseline.json");
    let baseline: Option<TrafficBaseline> = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Some(
            serde_json::from_str(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?,
        ),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(format!("cannot read {}: {e}", baseline_path.display())),
    };
    if flags.obs && baseline.is_none() {
        eprintln!(
            "overton: note: run {id} has no baseline.json; drift rules (psi/ks) will not fire"
        );
    }

    if let Some(listener) = listener {
        if flags.capture {
            return Err("--capture works in replay mode; drop --listen".into());
        }
        return serve_listen(dir, flags, listener, &id, server, baseline);
    }

    let records: Vec<overton::store::Record> = if flags.drift {
        // Seeded drifting live traffic: stationary at the training mix,
        // then the slice mix and vague-query rate ramp halfway through.
        let n = flags.requests.unwrap_or(2000);
        let kb = KnowledgeBase::standard();
        let config = DriftConfig {
            base: TrafficConfig { seed: flags.seed.unwrap_or(0), ..Default::default() },
            drift_start: n / 2,
            drift_ramp: n / 8,
            ..Default::default()
        };
        DriftingTrafficStream::new(&kb, config).records(n)
    } else {
        // Serve the run's own test split as stand-in traffic, from the
        // sealed store persisted at ingest time — the data the artifact
        // was actually built on, immune to later edits of data.jsonl.
        let store = ShardedStore::read_dir(run_dir.join("store")).map_err(|e| e.to_string())?;
        let mut rows = store.index().test_rows().to_vec();
        if let Some(n) = flags.requests {
            rows.truncate(n);
        }
        if rows.is_empty() {
            return Err(format!("run {id} has no test-tagged records to serve"));
        }
        rows.into_iter()
            .map(|row| store.get(row as usize).map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?
    };

    let engine = Arc::new(CascadeEngine::single(server));
    let config = ServingConfig { workers: flags.workers.unwrap_or(4), ..ServingConfig::default() };
    let pool = WorkerPool::start(engine, config, baseline);

    let mut monitor = if flags.obs {
        let obs_config = ObsConfig {
            window_len: flags.window.unwrap_or(250),
            rules: default_rules(pool.telemetry().slice_names()),
            ..Default::default()
        };
        let log_dir = obslog_dir(dir);
        let monitor = Monitor::attach(&pool, obs_config, Some(&log_dir))
            .map_err(|e| format!("cannot attach monitor: {e}"))?;
        println!("observing: obslog at {}", log_dir.display());
        Some(monitor)
    } else {
        None
    };

    // Serve in window-sized chunks so the monitor drains its channel
    // between bursts (the pool never waits on it either way).
    let total = records.len();
    let chunk = flags.window.unwrap_or(250).max(1) as usize;
    let mut errors = 0usize;
    for burst in records.chunks(chunk) {
        let replies = pool.process(burst.to_vec());
        errors += replies.iter().filter(|r| r.result.is_err()).count();
        if let Some(m) = monitor.as_mut() {
            m.pump();
        }
    }
    println!("served {total} requests from run {id} ({errors} errors)");
    println!("{}", pool.snapshot());
    if let Some(m) = monitor.as_mut() {
        m.pump();
        println!(
            "windows: {} closed ({} in the open window; {} samples dropped)",
            m.stats().closed(),
            m.stats().open_count(),
            pool.telemetry().observer_dropped()
        );
        if m.alerts().is_empty() {
            println!("alerts: none");
        } else {
            println!("alerts:");
            for alert in m.alerts() {
                println!("  {alert}");
            }
        }
        report_log_failures(m);
        // The capture half of the closed loop: gold-labeled traffic from
        // watchdog-escalated slices lands in the live store, where
        // `overton compact` and the next incremental retrain pick it up.
        if flags.capture {
            let watchdog = Watchdog::new(WatchdogConfig::default());
            let flagged = watchdog.flagged_slices(m);
            if flagged.is_empty() {
                println!("capture: no sustained alerts; nothing captured");
            } else {
                let live = open_or_create_live(dir)?;
                let captured =
                    watchdog.capture_into(m, &records, &live).map_err(|e| e.to_string())?;
                let generation = live.flush().map_err(|e| e.to_string())?;
                println!(
                    "capture: {captured} gold record(s) from {} slice(s) [{}] appended to {} \
                     (generation {generation})",
                    flagged.len(),
                    flagged.join(", "),
                    live.dir().display()
                );
            }
        }
        println!("replay the history with: overton monitor {}", dir.display());
    }
    pool.shutdown();
    Ok(())
}

/// Set by the SIGTERM/SIGINT handlers; the serve loop polls it and
/// drains when it flips.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // A store to a static atomic is async-signal-safe; everything else
    // (draining, printing) happens back on the main thread.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

fn install_drain_signals() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        // Declared directly — the workspace carries no libc crate, and
        // `signal` is all the socket tier needs from it.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// `overton serve --listen`: the socket tier over the run's artifact.
fn serve_listen(
    dir: &Path,
    flags: &Flags,
    listener: TcpListener,
    id: &str,
    server: Server,
    baseline: Option<TrafficBaseline>,
) -> Result<(), String> {
    let engine = Arc::new(CascadeEngine::single(server));
    let config = ServingConfig { workers: flags.workers.unwrap_or(4), ..ServingConfig::default() };
    let pool = Arc::new(WorkerPool::start(engine, config, baseline));

    // The monitor is shared between the pump loop (this thread) and the
    // `/metrics` scrape hook (connection handlers), so it lives behind a
    // mutex; handlers only take it for the duration of one exposition
    // render, never on the predict path.
    let monitor = if flags.obs {
        let obs_config = ObsConfig {
            window_len: flags.window.unwrap_or(250),
            rules: default_rules(pool.telemetry().slice_names()),
            ..Default::default()
        };
        let log_dir = obslog_dir(dir);
        let monitor = Monitor::attach(&pool, obs_config, Some(&log_dir))
            .map_err(|e| format!("cannot attach monitor: {e}"))?;
        println!("observing: obslog at {}", log_dir.display());
        Some(Arc::new(std::sync::Mutex::new(monitor)))
    } else {
        None
    };
    let pump = |m: &Arc<std::sync::Mutex<Monitor>>| {
        if let Ok(mut m) = m.lock() {
            m.pump();
        }
    };

    let mut net_config = NetConfig::default();
    if let Some(high_water) = flags.high_water {
        net_config.shed.queue_high_water = high_water;
    }
    if let Some(max_conns) = flags.max_conns {
        net_config.max_connections = max_conns;
    }
    if let Some(m) = &monitor {
        // The meter-aware hook re-reads <dir>/meter.json per scrape, so
        // `overton_meter_budget_remaining` tracks retrains running
        // alongside the server (the gauge is simply absent until a build
        // starts the ledger).
        net_config.metrics_ext = Some(overton::obs::metrics_ext_with_meter(
            Arc::clone(m),
            dir.join(overton::stats::METER_FILE),
        ));
    }
    let net =
        NetServer::start(listener, Arc::clone(&pool), net_config).map_err(|e| e.to_string())?;
    println!("listening on {} (run {id})", net.local_addr());

    if flags.probe {
        probe(dir, flags, net.local_addr())?;
    } else {
        install_drain_signals();
        println!("serving; SIGTERM or Ctrl-C drains");
        while !SHUTDOWN.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(100));
            if let Some(m) = &monitor {
                pump(m);
            }
        }
        println!("draining: refusing new connections, finishing in-flight requests");
    }
    net.drain();
    if let Some(m) = &monitor {
        pump(m);
    }
    print!("{}", pool.snapshot());
    if let Some(m) = &monitor {
        if let Ok(m) = m.lock() {
            println!(
                "windows: {} closed ({} in the open window; {} samples dropped)",
                m.stats().closed(),
                m.stats().open_count(),
                pool.telemetry().observer_dropped()
            );
            report_log_failures(&m);
        }
    }
    println!("drained");
    // The net server and its handlers are gone; this is the last Arc, so
    // dropping the pool joins the workers.
    drop(monitor);
    drop(pool);
    Ok(())
}

/// One loopback round-trip through the socket with records from the
/// run's test split — proves bind/accept/parse/route/predict/drain all
/// work without any external client (the CI smoke path).
fn probe(dir: &Path, flags: &Flags, addr: std::net::SocketAddr) -> Result<(), String> {
    let id = run_id(dir, flags)?;
    let run_dir = dir.join("runs").join(&id);
    let store = ShardedStore::read_dir(run_dir.join("store")).map_err(|e| e.to_string())?;
    let mut rows = store.index().test_rows().to_vec();
    rows.truncate(flags.requests.unwrap_or(4).max(1));
    if rows.is_empty() {
        return Err(format!("run {id} has no test-tagged records to probe with"));
    }
    let records: Vec<overton::store::Record> = rows
        .into_iter()
        .map(|row| store.get(row as usize).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let mut client = NetClient::connect(addr).map_err(|e| e.to_string())?;
    if !client.health().map_err(|e| e.to_string())? {
        return Err("probe: server reports draining before any drain was requested".into());
    }
    let n = records.len();
    match client.predict(&records).map_err(|e| e.to_string())? {
        PredictOutcome::Answered(results) => {
            if results.len() != n {
                return Err(format!("probe sent {n} records, got {} results", results.len()));
            }
            if let Some(err) = results.iter().find_map(|r| r.as_ref().err()) {
                return Err(format!("probe record failed: {err}"));
            }
            println!("probe round-trip ok ({n} records answered)");
        }
        PredictOutcome::Shed { .. } => {
            return Err("probe was shed by an otherwise idle server".into())
        }
    }

    // Traced round-trip: name the trace, assert the id echoes back, and
    // fetch the retained spans — all eight request-path stages, starts in
    // causal order.
    let trace_id = "probe-trace";
    let (outcome, echoed) =
        client.predict_traced(&records[..1], Some(trace_id)).map_err(|e| e.to_string())?;
    if !matches!(outcome, PredictOutcome::Answered(_)) {
        return Err("traced probe was shed by an otherwise idle server".into());
    }
    if echoed.as_deref() != Some(trace_id) {
        return Err(format!("probe sent trace id {trace_id:?}, response echoed {echoed:?}"));
    }
    let report =
        client.trace(trace_id).map_err(|e| format!("probe: GET /trace/{trace_id}: {e}"))?;
    let names: Vec<&str> = report.spans.iter().map(|s| s.name.as_str()).collect();
    let expected: Vec<&str> = overton::serving::SpanName::ALL.iter().map(|s| s.name()).collect();
    if names != expected {
        return Err(format!("probe trace spans {names:?}, expected {expected:?}"));
    }
    let mut prev = 0;
    for span in &report.spans {
        if span.start_micros < prev {
            return Err(format!("probe trace span starts not monotonic: {:?}", report.spans));
        }
        prev = span.start_micros;
    }
    println!("trace round-trip ok ({} spans)", report.spans.len());

    // Scrape /metrics: the exposition must parse line-by-line and carry
    // the shed counter (satellite of the CI smoke).
    let text = client.metrics().map_err(|e| e.to_string())?;
    overton::serving::validate_exposition(&text)
        .map_err(|e| format!("probe: /metrics failed exposition grammar: {e}"))?;
    if !text.contains("overton_requests_shed_total") {
        return Err("probe: /metrics is missing overton_requests_shed_total".into());
    }
    println!("metrics scrape ok ({} lines)", text.lines().count());
    Ok(())
}

fn monitor(dir: &Path, flags: &Flags) -> Result<(), String> {
    let log_dir = obslog_dir(dir);
    let monitor = ObsLog::replay(&log_dir).map_err(|e| {
        format!("cannot replay {}: {e} (serve with --obs first)", log_dir.display())
    })?;
    if flags.csv {
        let mut out = Vec::new();
        monitor.stats().write_csv(&mut out).map_err(|e| e.to_string())?;
        print!("{}", String::from_utf8_lossy(&out));
        return Ok(());
    }
    println!("obslog: {}", log_dir.display());
    report_log_failures(&monitor);
    let stats = monitor.stats();
    println!(
        "windows: {} closed, {} retained (window_len {}, {} evicted)",
        stats.closed(),
        stats.windows().count(),
        stats.window_len(),
        stats.evicted()
    );
    let names = stats.slice_names().to_vec();
    print!(
        "{:>7} {:>7} {:>6} {:>6} {:>9} {:>18} {:>9}",
        "window", "count", "errors", "conf", "gold_acc", "gold_acc_95ci", "p95"
    );
    for name in &names {
        print!(" {name:>24}");
    }
    println!();
    for w in stats.windows() {
        // Clopper-Pearson bounds on the window's gold accuracy, so a
        // "drop" over a thin window reads as the wide interval it is.
        let ci = (w.overall.gold_scored > 0).then(|| {
            let successes = (w.overall.gold_correct_millionths as f64 / 1e6).round() as u64;
            overton::stats::clopper_pearson(
                successes,
                w.overall.gold_scored,
                overton::stats::DEFAULT_ALPHA,
            )
        });
        print!(
            "{:>7} {:>7} {:>6} {:>6.3} {:>9} {:>18} {:>9?}",
            w.index,
            w.overall.count,
            w.overall.errors,
            w.overall.mean_confidence(),
            w.overall.gold_accuracy().map_or_else(|| "-".to_string(), |a| format!("{a:.3}")),
            ci.map_or_else(|| "-".to_string(), |ci| ci.to_string()),
            w.latency_quantile(0.95)
        );
        for (i, _) in names.iter().enumerate() {
            print!(" {:>23.1}%", w.slice_share(i) * 100.0);
        }
        println!();
    }
    if monitor.alerts().is_empty() {
        println!("alerts: none");
    } else {
        println!("alerts ({}):", monitor.alerts().len());
        for alert in monitor.alerts() {
            println!("  {alert}");
        }
    }
    let active = monitor.active_alerts();
    if active.is_empty() {
        println!("active: none");
    } else {
        println!("active ({}):", active.len());
        for a in &active {
            println!(
                "  {} {} breaching for {} windows (value {:.4}, threshold {:.4})",
                a.rule.signal,
                a.rule.slice.as_deref().unwrap_or("overall"),
                a.windows_active,
                a.value,
                a.rule.threshold
            );
        }
    }
    Ok(())
}

/// `overton meter <dir>`: the project's test-set reuse budget ledger —
/// how much statistical validity the holdout has left (every `overton
/// build`/`evaluate` debits one look).
fn meter(dir: &Path) -> Result<(), String> {
    let path = dir.join(overton::stats::METER_FILE);
    let ledger = overton::stats::MeterLedger::load(&path).map_err(|e| {
        format!("cannot read {}: {e} (run `overton build` to start the ledger)", path.display())
    })?;
    println!("meter: {}", path.display());
    println!(
        "budget: {} initial, {} spent, {} remaining",
        ledger.initial(),
        ledger.spent(),
        ledger.remaining()
    );
    for debit in ledger.debits() {
        println!("  debit {:>4} {}", debit.amount, debit.run_id);
    }
    if ledger.exhausted() {
        println!(
            "WARNING: budget exhausted — holdout conclusions are no longer statistically \
             trustworthy; collect a fresh test split"
        );
    }
    Ok(())
}

/// `overton trace`: render spans — a run directory's `trace.jsonl`
/// (build-side stage spans) or a live server's retained request traces
/// over the socket. Both sides emit the same `Span` schema, so one
/// waterfall renderer covers both.
fn trace(dir: &Path, flags: &Flags) -> Result<(), String> {
    let target = dir.to_string_lossy();
    match target.parse::<std::net::SocketAddr>() {
        Ok(addr) => trace_net(addr, flags),
        Err(_) => trace_run(dir, flags),
    }
}

/// Dir mode: the stage spans `overton build` appended to the run's
/// `trace.jsonl`.
fn trace_run(dir: &Path, flags: &Flags) -> Result<(), String> {
    let id = run_id(dir, flags)?;
    let path = dir.join("runs").join(&id).join("trace.jsonl");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e} (run `overton build` first)", path.display()))?;
    let mut spans = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let span: overton::serving::Span = serde_json::from_str(line)
            .map_err(|e| format!("{}: line {}: {e}", path.display(), i + 1))?;
        spans.push(span);
    }
    println!("run {id}: {} stage span(s)", spans.len());
    print_spans(&spans);
    Ok(())
}

/// Socket mode: the server's slowest-request retention, or one trace by
/// id with `--id`.
fn trace_net(addr: std::net::SocketAddr, flags: &Flags) -> Result<(), String> {
    let mut client = NetClient::connect(addr).map_err(|e| e.to_string())?;
    if let Some(id) = &flags.id {
        let report = client.trace(id).map_err(|e| e.to_string())?;
        println!(
            "trace {}: outcome {}, {} record(s), {:.3} ms total",
            report.id,
            report.outcome,
            report.records,
            report.total_micros as f64 / 1000.0
        );
        print_spans(&report.spans);
        return Ok(());
    }
    let slowest = client.traces().map_err(|e| e.to_string())?;
    if slowest.is_empty() {
        println!("no traces retained yet (server idle, tracing disabled, or sampled out)");
        return Ok(());
    }
    println!("slowest {} trace(s) on {addr}:", slowest.len());
    println!("{:>18}  {:>8}  {:>8}  {:>10}", "id", "outcome", "records", "total_ms");
    for t in &slowest {
        println!(
            "{:>18}  {:>8}  {:>8}  {:>10.3}",
            t.id,
            t.outcome,
            t.records,
            t.total_micros as f64 / 1000.0
        );
    }
    println!("render one with: overton trace {addr} --id <id>");
    Ok(())
}

/// Spans as a fixed-width waterfall: name, wall time, and a bar placed
/// at the span's offset within the trace.
fn print_spans(spans: &[overton::serving::Span]) {
    const WIDTH: u64 = 48;
    let total = spans.iter().map(|s| s.end_micros).max().unwrap_or(0).max(1);
    for span in spans {
        let lead = (span.start_micros * WIDTH / total) as usize;
        let fill = ((span.wall_micros() * WIDTH / total).max(1) as usize).min(WIDTH as usize);
        println!(
            "{:>16} {:>10.3} ms  {}{}",
            span.name,
            span.wall_micros() as f64 / 1000.0,
            " ".repeat(lead),
            "#".repeat(fill),
        );
    }
}

/// Where a project directory keeps its live store.
fn live_dir(dir: &Path) -> PathBuf {
    dir.join("live")
}

/// Opens the project's live store, creating it (from `<dir>/schema.json`)
/// on first use.
fn open_or_create_live(dir: &Path) -> Result<LiveStore, String> {
    let live = live_dir(dir);
    if live.join(LIVE_MANIFEST).exists() {
        LiveStore::open(&live).map_err(|e| e.to_string())
    } else {
        let schema_path = dir.join("schema.json");
        let schema = Schema::from_json_file(&schema_path)
            .map_err(|e| format!("{}: {e}", schema_path.display()))?;
        LiveStore::create(&live, schema).map_err(|e| e.to_string())
    }
}

/// `overton append <dir> <file>`: stream a JSONL file into the project's
/// live store and seal it as a delta segment.
fn append(dir: &Path, file: &Path) -> Result<(), String> {
    let live = open_or_create_live(dir)?;
    let reader = std::fs::File::open(file).map_err(|e| format!("{}: {e}", file.display()))?;
    let appended = live
        .append_jsonl(std::io::BufReader::new(reader))
        .map_err(|e| format!("{}: {e}", file.display()))?;
    let generation = live.flush().map_err(|e| e.to_string())?;
    println!(
        "appended {appended} records to {} (generation {generation}, {} sealed rows, {} deltas)",
        live.dir().display(),
        live.sealed_rows(),
        live.num_deltas()
    );
    Ok(())
}

/// `overton compact <dir>`: merge the live store's sealed deltas into its
/// base segment.
fn compact(dir: &Path) -> Result<(), String> {
    let path = live_dir(dir);
    let live = LiveStore::open(&path)
        .map_err(|e| format!("{}: {e} (run `overton append` first)", path.display()))?;
    let deltas = live.num_deltas();
    if deltas == 0 {
        println!("{}: no deltas to compact (generation {})", path.display(), live.generation());
        return Ok(());
    }
    let generation = live.compact().map_err(|e| e.to_string())?;
    println!(
        "compacted {deltas} delta(s) into the base: generation {generation}, {} rows",
        live.sealed_rows()
    );
    Ok(())
}

/// `overton store verify <dir>`: checksum-verify every segment of a live
/// store (base + deltas) or plain sealed store directory, printing
/// per-segment status. Accepts the store directory itself or a project
/// directory holding one at `<dir>/live`.
fn store_verify(dir: &Path) -> Result<(), String> {
    let target = if dir.join(LIVE_MANIFEST).exists() || dir.join("manifest.json").exists() {
        dir.to_path_buf()
    } else if live_dir(dir).join(LIVE_MANIFEST).exists() {
        live_dir(dir)
    } else {
        return Err(format!(
            "{}: neither a live store, a sealed store, nor a project with one at live/",
            dir.display()
        ));
    };
    let report = overton::store::live::verify_dir(&target).map_err(|e| e.to_string())?;
    if let Some(generation) = report.generation {
        println!("{}: live store at generation {generation}", target.display());
    } else {
        println!("{}: sealed store", target.display());
    }
    for segment in &report.segments {
        if segment.ok {
            println!("  ok      {:<24} {}", segment.name, segment.detail);
        } else {
            println!("  FAILED  {:<24} {}", segment.name, segment.detail);
        }
    }
    if report.ok() {
        println!("all {} segment(s) verified", report.segments.len());
        Ok(())
    } else {
        Err(format!(
            "{} of {} segment(s) failed verification",
            report.segments.iter().filter(|s| !s.ok).count(),
            report.segments.len()
        ))
    }
}

fn report(dir: &Path, flags: &Flags) -> Result<(), String> {
    let id = run_id(dir, flags)?;
    let run_dir = dir.join("runs").join(&id);
    let report_path = run_dir.join("report.json");
    let text = std::fs::read_to_string(&report_path)
        .map_err(|e| format!("cannot read {}: {e}", report_path.display()))?;
    let report: overton::RunReport =
        serde_json::from_str(&text).map_err(|e| format!("report.json: {e}"))?;
    print!("{report}");
    let eval_path = run_dir.join("evaluation.json");
    if let Ok(text) = std::fs::read_to_string(&eval_path) {
        let reports: BTreeMap<String, QualityReport> =
            serde_json::from_str(&text).map_err(|e| format!("evaluation.json: {e}"))?;
        println!();
        for report in reports.values() {
            println!("{report}");
        }
    }
    Ok(())
}

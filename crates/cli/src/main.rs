//! `overton` — the two-file contract as a command line.
//!
//! A *project directory* holds the paper's entire engineer contract:
//!
//! ```text
//! <dir>/schema.json   payloads + tasks
//! <dir>/data.jsonl    one record per line (supervision, tags, slices)
//! ```
//!
//! Every other artifact is produced by the tool under `<dir>/runs/<id>/`
//! (sealed store, per-stage artifacts, `report.json`) and
//! `<dir>/registry/`. No Rust — or any other code — is required of the
//! engineer: edit the data file, `overton build`, read `overton report`.

use overton::model::Server;
use overton::nlp::{write_two_file_workload, WorkloadConfig};
use overton::serving::{CascadeEngine, ServingConfig, WorkerPool};
use overton::store::ShardedStore;
use overton::{model::DeployableModel, monitor::QualityReport, OvertonOptions, Project, Stage};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
overton — the Overton two-file contract, no code required

USAGE:
    overton <command> <project-dir> [options]

COMMANDS:
    init      write an example schema.json + data.jsonl workload pair
    build     run the staged pipeline on the two files (ingest → evaluate)
    evaluate  re-run evaluation of a persisted run (no retraining)
    serve     serve a persisted run's test split through the worker pool
    report    print a persisted run's stage telemetry + quality reports

OPTIONS:
    --run <id>        operate on this run (default: the latest)
    --from <stage>    (build) resume the run from this stage:
                      ingest|combine|search|train|package|evaluate
                      (a resumed run keeps the options it started with)
    --epochs <n>      (build) training epochs for new runs [default: 8]
    --train <n>       (init) training records        [default: 800]
    --dev <n>         (init) dev records             [default: 100]
    --test <n>        (init) test records            [default: 200]
    --seed <n>        (init) workload RNG seed       [default: 0]
    --requests <n>    (serve) how many records to serve [default: all]
    --workers <n>     (serve) worker threads         [default: 4]
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("overton: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return Err("missing command".into());
    };
    if command == "--help" || command == "-h" || command == "help" {
        print!("{USAGE}");
        return Ok(());
    }
    let dir = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| format!("missing <project-dir>\n\n{USAGE}"))?;
    let dir = PathBuf::from(dir);
    let flags = Flags::parse(&args[2..])?;
    match command.as_str() {
        "init" => init(&dir, &flags),
        "build" => build(&dir, &flags),
        "evaluate" => evaluate(&dir, &flags),
        "serve" => serve(&dir, &flags),
        "report" => report(&dir, &flags),
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

/// Parsed command-line options (all optional, all `--flag value`).
#[derive(Default)]
struct Flags {
    run: Option<String>,
    from: Option<Stage>,
    epochs: Option<usize>,
    train: Option<usize>,
    dev: Option<usize>,
    test: Option<usize>,
    seed: Option<u64>,
    requests: Option<usize>,
    workers: Option<usize>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = Flags::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().map(String::as_str).ok_or(format!("{name} needs a value"));
            match flag.as_str() {
                "--run" => flags.run = Some(value("--run")?.to_string()),
                "--from" => {
                    let name = value("--from")?;
                    flags.from = Some(Stage::parse(name).ok_or(format!("unknown stage '{name}'"))?);
                }
                "--epochs" => flags.epochs = Some(parse_num(value("--epochs")?, "--epochs")?),
                "--train" => flags.train = Some(parse_num(value("--train")?, "--train")?),
                "--dev" => flags.dev = Some(parse_num(value("--dev")?, "--dev")?),
                "--test" => flags.test = Some(parse_num(value("--test")?, "--test")?),
                "--seed" => flags.seed = Some(parse_num(value("--seed")?, "--seed")?),
                "--requests" => {
                    flags.requests = Some(parse_num(value("--requests")?, "--requests")?)
                }
                "--workers" => flags.workers = Some(parse_num(value("--workers")?, "--workers")?),
                other => return Err(format!("unknown option '{other}'\n\n{USAGE}")),
            }
        }
        Ok(flags)
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("{flag}: '{value}' is not a number"))
}

/// The project over `<dir>/schema.json` + `<dir>/data.jsonl`, persisting
/// runs under `<dir>/runs/`.
fn project(dir: &Path, flags: &Flags) -> Project {
    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "overton".into());
    let mut options = OvertonOptions::default();
    options.train.epochs = flags.epochs.unwrap_or(8);
    Project::from_files(dir.join("schema.json"), dir.join("data.jsonl"))
        .named(&name)
        .with_options(options)
        .at(dir)
}

fn run_id(dir: &Path, flags: &Flags) -> Result<String, String> {
    if let Some(id) = &flags.run {
        return Ok(id.clone());
    }
    project(dir, flags)
        .latest_run_id()
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("no runs under {}; run `overton build` first", dir.display()))
}

fn init(dir: &Path, flags: &Flags) -> Result<(), String> {
    let config = WorkloadConfig {
        n_train: flags.train.unwrap_or(800),
        n_dev: flags.dev.unwrap_or(100),
        n_test: flags.test.unwrap_or(200),
        seed: flags.seed.unwrap_or(0),
        ..Default::default()
    };
    let (schema, data) = write_two_file_workload(&config, dir).map_err(|e| e.to_string())?;
    println!("wrote {}", schema.display());
    println!(
        "wrote {} ({} records: {} train / {} dev / {} test)",
        data.display(),
        config.n_train + config.n_dev + config.n_test,
        config.n_train,
        config.n_dev,
        config.n_test
    );
    println!("next: overton build {}", dir.display());
    Ok(())
}

fn build(dir: &Path, flags: &Flags) -> Result<(), String> {
    let project = project(dir, flags);
    let mut run = match flags.from {
        Some(stage) => {
            let id = run_id(dir, flags)?;
            println!("resuming {id} from stage {stage}");
            project.resume(&id, stage).map_err(|e| e.to_string())?
        }
        None if flags.run.is_some() => {
            return Err("--run only selects an existing run; add --from <stage> to resume it \
                 (or drop --run to start a new run)"
                .into());
        }
        None => project.start().map_err(|e| e.to_string())?,
    };
    while let Some(stage) = run.next_stage() {
        println!("stage {stage}...");
        run.advance().map_err(|e| e.to_string())?;
        let done = run.report().stages.last().expect("stage just ran");
        println!("  {} records in {} ms", done.records, done.wall_ms);
    }
    println!();
    print!("{}", run.report());
    if let Some(run_dir) = run.dir() {
        println!("run directory: {}", run_dir.display());
    }
    Ok(())
}

fn evaluate(dir: &Path, flags: &Flags) -> Result<(), String> {
    let id = run_id(dir, flags)?;
    let project = project(dir, flags);
    let mut run = project.resume(&id, Stage::Evaluate).map_err(|e| e.to_string())?;
    run.complete().map_err(|e| e.to_string())?;
    for report in run.evaluation().expect("run evaluated").reports.values() {
        println!("{report}");
    }
    print!("{}", run.report());
    Ok(())
}

fn serve(dir: &Path, flags: &Flags) -> Result<(), String> {
    let id = run_id(dir, flags)?;
    let artifact_path = dir.join("runs").join(&id).join("artifact.model.json");
    let bytes = std::fs::read(&artifact_path)
        .map_err(|e| format!("cannot read {}: {e}", artifact_path.display()))?;
    let artifact = DeployableModel::from_bytes(&bytes).map_err(|e| e.to_string())?;
    let server = Server::load(&artifact);

    // Serve the run's own test split as stand-in traffic, from the
    // sealed store persisted at ingest time — the data the artifact was
    // actually built on, immune to later edits of data.jsonl.
    let store = ShardedStore::read_dir(dir.join("runs").join(&id).join("store"))
        .map_err(|e| e.to_string())?;
    let mut rows = store.index().test_rows().to_vec();
    if let Some(n) = flags.requests {
        rows.truncate(n);
    }
    if rows.is_empty() {
        return Err(format!("run {id} has no test-tagged records to serve"));
    }
    let records: Vec<_> = rows
        .into_iter()
        .map(|row| store.get(row as usize).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;

    let engine = Arc::new(CascadeEngine::single(server));
    let config = ServingConfig { workers: flags.workers.unwrap_or(4), ..ServingConfig::default() };
    let pool = WorkerPool::start(engine, config, None);
    let total = records.len();
    let replies = pool.process(records);
    let errors = replies.iter().filter(|r| r.result.is_err()).count();
    println!("served {total} requests from run {id} ({errors} errors)");
    println!("{}", pool.snapshot());
    pool.shutdown();
    Ok(())
}

fn report(dir: &Path, flags: &Flags) -> Result<(), String> {
    let id = run_id(dir, flags)?;
    let run_dir = dir.join("runs").join(&id);
    let report_path = run_dir.join("report.json");
    let text = std::fs::read_to_string(&report_path)
        .map_err(|e| format!("cannot read {}: {e}", report_path.display()))?;
    let report: overton::RunReport =
        serde_json::from_str(&text).map_err(|e| format!("report.json: {e}"))?;
    print!("{report}");
    let eval_path = run_dir.join("evaluation.json");
    if let Ok(text) = std::fs::read_to_string(&eval_path) {
        let reports: BTreeMap<String, QualityReport> =
            serde_json::from_str(&text).map_err(|e| format!("evaluation.json: {e}"))?;
        println!();
        for report in reports.values() {
            println!("{report}");
        }
    }
    Ok(())
}

//! Token and entity vocabularies mapping strings to dense ids.

use std::collections::BTreeMap;

/// Reserved id for padding.
pub const PAD: usize = 0;
/// Reserved id for unknown tokens.
pub const UNK: usize = 1;
/// Reserved id for the mask token used by masked-token pretraining.
pub const MASK: usize = 2;

/// A frozen string-to-id vocabulary with `<pad>`, `<unk>`, `<mask>`
/// reserved at ids 0..3.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Vocab {
    by_token: BTreeMap<String, usize>,
    tokens: Vec<String>,
}

impl Vocab {
    /// Builds a vocabulary from token occurrences, keeping tokens appearing
    /// at least `min_count` times. Ordering is deterministic (by count
    /// descending, then lexicographic).
    pub fn build<'a>(tokens: impl IntoIterator<Item = &'a str>, min_count: usize) -> Self {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for t in tokens {
            *counts.entry(t).or_default() += 1;
        }
        let mut entries: Vec<(&str, usize)> =
            counts.into_iter().filter(|(_, c)| *c >= min_count).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let mut vocab = Self::reserved();
        for (tok, _) in entries {
            vocab.push(tok);
        }
        vocab
    }

    /// A vocabulary containing only the reserved tokens.
    pub fn reserved() -> Self {
        let mut v = Self { by_token: BTreeMap::new(), tokens: Vec::new() };
        for special in ["<pad>", "<unk>", "<mask>"] {
            v.push(special);
        }
        v
    }

    fn push(&mut self, token: &str) -> usize {
        if let Some(&id) = self.by_token.get(token) {
            return id;
        }
        let id = self.tokens.len();
        self.tokens.push(token.to_string());
        self.by_token.insert(token.to_string(), id);
        id
    }

    /// Adds a token if absent, returning its id (used for entity vocabs).
    pub fn intern(&mut self, token: &str) -> usize {
        self.push(token)
    }

    /// Number of entries including reserved tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when only reserved tokens exist.
    pub fn is_empty(&self) -> bool {
        self.tokens.len() <= 3
    }

    /// The id for a token, or [`UNK`].
    pub fn id(&self, token: &str) -> usize {
        self.by_token.get(token).copied().unwrap_or(UNK)
    }

    /// The token for an id.
    pub fn token(&self, id: usize) -> Option<&str> {
        self.tokens.get(id).map(String::as_str)
    }

    /// Encodes a token sequence to ids (unknowns map to [`UNK`]).
    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        tokens.iter().map(|t| self.id(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_ids_are_stable() {
        let v = Vocab::reserved();
        assert_eq!(v.id("<pad>"), PAD);
        assert_eq!(v.id("<unk>"), UNK);
        assert_eq!(v.id("<mask>"), MASK);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn build_orders_by_frequency() {
        let toks = ["b", "a", "a", "a", "b", "c"];
        let v = Vocab::build(toks.iter().copied(), 1);
        assert_eq!(v.id("a"), 3);
        assert_eq!(v.id("b"), 4);
        assert_eq!(v.id("c"), 5);
    }

    #[test]
    fn min_count_prunes() {
        let toks = ["a", "a", "rare"];
        let v = Vocab::build(toks.iter().copied(), 2);
        assert_eq!(v.id("rare"), UNK);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn encode_maps_unknowns() {
        let v = Vocab::build(["hello"].iter().copied(), 1);
        let ids = v.encode(&["hello".into(), "world".into()]);
        assert_eq!(ids, vec![3, UNK]);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::reserved();
        let a = v.intern("E1");
        let b = v.intern("E1");
        assert_eq!(a, b);
        assert_eq!(v.token(a), Some("E1"));
    }

    #[test]
    fn deterministic_tie_break() {
        let a = Vocab::build(["x", "y"].iter().copied(), 1);
        let b = Vocab::build(["y", "x"].iter().copied(), 1);
        assert_eq!(a, b);
    }
}

//! Assembling full Overton datasets: queries + weak sources + tags.
//!
//! This module is the stand-in for a production log pipeline: it emits a
//! [`Dataset`] whose records carry multi-source weak supervision with
//! *controlled* accuracy/coverage, curated gold dev/test splits, and slice
//! tags — the knobs the paper's evaluation varies (training-set scale,
//! weak-supervision share, resource level).

use crate::kb::{KnowledgeBase, ENTITY_TYPES};
use crate::queries::{GeneratedQuery, QueryGenerator, INTENTS, POS_TAGS, VAGUE_INTENTS};
use overton_store::{
    Dataset, PayloadValue, Record, Schema, SetElement, ShardedStore, ShardedStoreBuilder,
    TaskLabel, GOLD_SOURCE, TAG_DEV, TAG_TEST, TAG_TRAIN,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The schema of the synthetic factoid product (the paper's Figure 2a
/// schema, with the workload's label vocabularies filled in).
pub fn workload_schema() -> Schema {
    let intents: Vec<String> = INTENTS.iter().map(|s| s.to_string()).collect();
    let pos: Vec<String> = POS_TAGS.iter().map(|s| s.to_string()).collect();
    let types: Vec<String> = ENTITY_TYPES.iter().map(|s| s.to_string()).collect();
    let json = serde_json::json!({
        "payloads": {
            "tokens":   { "type": "sequence", "max_length": 16 },
            "query":    { "type": "singleton", "base": ["tokens"] },
            "entities": { "type": "set", "range": "tokens" }
        },
        "tasks": {
            "POS":        { "payload": "tokens", "type": "multiclass", "classes": pos },
            "EntityType": { "payload": "tokens", "type": "bitvector", "labels": types },
            "Intent":     { "payload": "query", "type": "multiclass", "classes": intents },
            "IntentArg":  { "payload": "entities", "type": "select" }
        }
    });
    Schema::from_json(&json.to_string()).expect("workload schema is valid")
}

/// A weak source's quality knobs.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Source name (lineage tag in the data file).
    pub name: String,
    /// Probability a non-abstaining vote is correct.
    pub accuracy: f64,
    /// Probability of voting at all.
    pub coverage: f64,
    /// Whether errors are per-record coin flips (crowd workers) rather
    /// than deterministic per text stratum (labeling functions). Mixing
    /// both failure modes matters: stochastic sources wash out with scale,
    /// deterministic ones do not.
    pub stochastic: bool,
}

impl SourceSpec {
    /// A deterministic (LF-style) source.
    pub fn new(name: &str, accuracy: f64, coverage: f64) -> Self {
        assert!((0.0..=1.0).contains(&accuracy), "accuracy out of range");
        assert!((0.0..=1.0).contains(&coverage), "coverage out of range");
        Self { name: name.to_string(), accuracy, coverage, stochastic: false }
    }

    /// A per-record stochastic (crowd-style) source.
    pub fn stochastic(name: &str, accuracy: f64, coverage: f64) -> Self {
        Self { stochastic: true, ..Self::new(name, accuracy, coverage) }
    }
}

/// Configuration of a synthetic product workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Training records.
    pub n_train: usize,
    /// Development records (gold-labeled).
    pub n_dev: usize,
    /// Test records (gold-labeled).
    pub n_test: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of queries drawn from the complex-disambiguation pool.
    pub slice_rate: f64,
    /// Fraction of *vague* queries whose intent is not determined by the
    /// text (the irreducible error floor of a real product).
    pub vague_rate: f64,
    /// Fraction of *train* records that also carry gold labels (annotator
    /// budget; dev/test are always gold).
    pub gold_train_fraction: f64,
    /// Weak sources for the Intent task.
    pub intent_sources: Vec<SourceSpec>,
    /// Weak sources for the POS task.
    pub pos_sources: Vec<SourceSpec>,
    /// Weak sources for the EntityType task.
    pub type_sources: Vec<SourceSpec>,
    /// Weak sources for the IntentArg task. The first source named
    /// `lf_default_sense` deterministically votes candidate 0 — right on
    /// regular queries, systematically wrong on the slice.
    pub arg_sources: Vec<SourceSpec>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            n_train: 2000,
            n_dev: 300,
            n_test: 600,
            seed: 0,
            slice_rate: 0.06,
            vague_rate: 0.05,
            gold_train_fraction: 0.0,
            intent_sources: vec![
                SourceSpec::new("lf_keyword", 0.88, 0.95),
                SourceSpec::new("lf_pattern", 0.72, 0.80),
                SourceSpec::stochastic("crowd", 0.78, 0.35),
            ],
            pos_sources: vec![
                SourceSpec::new("spacy_sim", 0.90, 1.0),
                SourceSpec::new("lf_lexicon", 0.75, 0.90),
            ],
            type_sources: vec![
                SourceSpec::new("eproj", 0.85, 0.95),
                SourceSpec::new("lf_gazetteer", 0.72, 0.85),
            ],
            arg_sources: vec![
                SourceSpec::new("lf_default_sense", 1.0, 1.0),
                SourceSpec::new("lf_heuristic", 0.86, 0.9),
                SourceSpec::stochastic("crowd_arg", 0.9, 0.4),
            ],
        }
    }
}

/// Generates a complete dataset for the configured product.
pub fn generate_workload(config: &WorkloadConfig) -> Dataset {
    let kb = KnowledgeBase::standard();
    generate_workload_with_kb(config, &kb)
}

/// Deterministic labeling-function behaviour: what a source emits for one
/// *stratum* — a (template, mention) pair. Real keyword/pattern LFs are
/// pure functions of the text, so they are consistently right or wrong on
/// ALL queries of a stratum; different sources misfire on different strata
/// and toward different wrong intents, which is exactly the structure the
/// label model exploits and a single-source system cannot escape.
fn lf_intent_label(
    workload_seed: u64,
    source_index: usize,
    spec: &SourceSpec,
    query: &GeneratedQuery,
) -> &'static str {
    // Stable stratum hash: (seed, source, template, mention).
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ workload_seed;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(source_index as u64 + 1);
    mix(query.template_id as u64 + 1);
    for b in query.mention_text().bytes() {
        mix(u64::from(b));
    }
    let mut rng = SmallRng::seed_from_u64(h);
    let gold = query.intent;
    if query.template_id >= crate::queries::VAGUE_TEMPLATE_OFFSET {
        // Vague queries: the LF emits a fixed guess for the stratum.
        return VAGUE_INTENTS[rng.gen_range(0..VAGUE_INTENTS.len())];
    }
    if rng.gen_bool(spec.accuracy) {
        gold
    } else if rng.gen_bool(0.15) {
        // Misfire toward the naturally confusable intent...
        confusable_intent(gold)
    } else {
        // ...or toward this source's own quirk on this stratum.
        loop {
            let w = INTENTS[rng.gen_range(0..INTENTS.len())];
            if w != gold {
                break w;
            }
        }
    }
}

/// Like [`generate_workload`] but over a caller-provided knowledge base.
pub fn generate_workload_with_kb(config: &WorkloadConfig, kb: &KnowledgeBase) -> Dataset {
    let mut dataset = Dataset::new(workload_schema());
    generate_into(config, kb, |record| dataset.push_unchecked(record));
    debug_assert!(
        dataset.records().iter().all(|r| r.validate(dataset.schema()).is_ok()),
        "generated records must validate"
    );
    dataset
}

/// Generates the workload straight into shard builders: every record is
/// encoded into the current shard blob as it is produced, so no eager
/// `Vec<Record>` is ever materialized — the production shape for bulk log
/// ingest. The record stream is identical to [`generate_workload`]'s for
/// the same config, so `generate_workload_sealed(c)` equals
/// `generate_workload(c).seal()` row for row.
pub fn generate_workload_sealed(config: &WorkloadConfig) -> ShardedStore {
    let kb = KnowledgeBase::standard();
    let schema = workload_schema();
    let mut builder = ShardedStoreBuilder::new(schema.clone());
    generate_into(config, &kb, |record| {
        debug_assert!(record.validate(&schema).is_ok(), "records must validate");
        builder.push_unchecked(&record);
    });
    builder.seal()
}

/// Writes the paper's two-file engineer contract for the configured
/// workload into `dir`: `schema.json` (the workload schema) and
/// `data.jsonl` (one record per line). Records stream straight from the
/// generator to the file — no `Vec<Record>` is materialized — so this is
/// the no-Rust entry point: the emitted pair feeds `overton::Project::
/// from_files` or the `overton` CLI directly. Returns the two paths
/// `(schema, data)`.
pub fn write_two_file_workload(
    config: &WorkloadConfig,
    dir: impl AsRef<std::path::Path>,
) -> overton_store::Result<(std::path::PathBuf, std::path::PathBuf)> {
    use std::io::Write;
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let schema_path = dir.join("schema.json");
    std::fs::write(&schema_path, workload_schema().to_json())?;
    let data_path = dir.join("data.jsonl");
    let file = std::fs::File::create(&data_path)?;
    let mut writer = std::io::BufWriter::new(file);
    let kb = KnowledgeBase::standard();
    let mut failed: Option<std::io::Error> = None;
    generate_into(config, &kb, |record| {
        if failed.is_none() {
            if let Err(e) = writeln!(writer, "{}", record.to_json()) {
                failed = Some(e);
            }
        }
    });
    if let Some(e) = failed {
        return Err(e.into());
    }
    writer.flush()?;
    Ok((schema_path, data_path))
}

/// The shared generation loop: drives the RNG exactly once per record and
/// hands each finished record to `sink`.
fn generate_into(config: &WorkloadConfig, kb: &KnowledgeBase, mut sink: impl FnMut(Record)) {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let generator = QueryGenerator::new(kb);
    let total = config.n_train + config.n_dev + config.n_test;
    for i in 0..total {
        let split = if i < config.n_train {
            TAG_TRAIN
        } else if i < config.n_train + config.n_dev {
            TAG_DEV
        } else {
            TAG_TEST
        };
        let query = if rng.gen_bool(config.vague_rate) {
            generator.generate_vague(&mut rng)
        } else {
            let force_ambiguous = rng.gen_bool(config.slice_rate);
            generator.generate(&mut rng, force_ambiguous)
        };
        let with_gold = split != TAG_TRAIN || rng.gen_bool(config.gold_train_fraction);
        sink(build_record(kb, &query, split, with_gold, config, &mut rng));
    }
}

/// Builds the schema-conformant record for one generated query: payloads,
/// the given tag, the query's slice tags, and (optionally) gold labels for
/// all four tasks. This is the supervision-free core shared by the
/// workload assembler (which layers weak sources on top) and the live
/// traffic generator ([`crate::TrafficStream`]).
pub fn query_record(
    kb: &KnowledgeBase,
    query: &GeneratedQuery,
    tag: &str,
    with_gold: bool,
) -> Record {
    let mut record = Record::new()
        .with_payload("tokens", PayloadValue::Sequence(query.tokens.clone()))
        .with_payload("query", PayloadValue::Singleton(query.text()))
        .with_payload(
            "entities",
            PayloadValue::Set(
                query
                    .candidates
                    .iter()
                    .map(|c| SetElement { id: kb.entity(c.entity).id.clone(), span: c.span })
                    .collect(),
            ),
        )
        .with_tag(tag);
    for slice in &query.slices {
        record = record.with_slice(slice);
    }

    if with_gold {
        record = record
            .with_label("Intent", GOLD_SOURCE, TaskLabel::MulticlassOne(query.intent.into()))
            .with_label(
                "POS",
                GOLD_SOURCE,
                TaskLabel::MulticlassSeq(query.pos.iter().map(|s| s.to_string()).collect()),
            )
            .with_label(
                "EntityType",
                GOLD_SOURCE,
                TaskLabel::BitvectorSeq(
                    query
                        .token_types
                        .iter()
                        .map(|ts| ts.iter().map(|s| s.to_string()).collect())
                        .collect(),
                ),
            )
            .with_label("IntentArg", GOLD_SOURCE, TaskLabel::Select(query.gold_arg));
    }
    record
}

fn build_record(
    kb: &KnowledgeBase,
    query: &GeneratedQuery,
    split: &str,
    with_gold: bool,
    config: &WorkloadConfig,
    rng: &mut SmallRng,
) -> Record {
    // Gold labels: dev/test always; train per annotator budget.
    let mut record = query_record(kb, query, split, with_gold);

    // Weak supervision only on training data (dev/test are curated).
    if split != TAG_TRAIN {
        return record;
    }

    for (j, spec) in config.intent_sources.iter().enumerate() {
        if !rng.gen_bool(spec.coverage) {
            continue;
        }
        let label = if spec.stochastic {
            // Crowd-style: independent per-record errors.
            if rng.gen_bool(spec.accuracy) {
                query.intent.to_string()
            } else {
                random_other(&INTENTS, query.intent, rng).to_string()
            }
        } else if rng.gen_bool(0.03) {
            // LF-style: a fixed function of its stratum, plus a small
            // per-record slip rate (OCR-style noise keeps sources from
            // being perfectly deterministic).
            random_other(&INTENTS, query.intent, rng).to_string()
        } else {
            lf_intent_label(config.seed, j, spec, query).to_string()
        };
        record = record.with_label("Intent", &spec.name, TaskLabel::MulticlassOne(label));
    }

    for spec in &config.pos_sources {
        if !rng.gen_bool(spec.coverage) {
            continue;
        }
        let tags: Vec<String> = query
            .pos
            .iter()
            .map(|&gold| {
                if rng.gen_bool(spec.accuracy) {
                    gold.to_string()
                } else {
                    random_other(&POS_TAGS, gold, rng).to_string()
                }
            })
            .collect();
        record = record.with_label("POS", &spec.name, TaskLabel::MulticlassSeq(tags));
    }

    for spec in &config.type_sources {
        if !rng.gen_bool(spec.coverage) {
            continue;
        }
        let rows: Vec<Vec<String>> = query
            .token_types
            .iter()
            .map(|gold| {
                if rng.gen_bool(spec.accuracy) {
                    gold.iter().map(|s| s.to_string()).collect()
                } else {
                    // Corruption: a random single type, or nothing.
                    if rng.gen_bool(0.5) {
                        vec![ENTITY_TYPES[rng.gen_range(0..ENTITY_TYPES.len())].to_string()]
                    } else {
                        Vec::new()
                    }
                }
            })
            .collect();
        record = record.with_label("EntityType", &spec.name, TaskLabel::BitvectorSeq(rows));
    }

    let n_candidates = query.candidates.len();
    for spec in &config.arg_sources {
        if !rng.gen_bool(spec.coverage) {
            continue;
        }
        let choice = if spec.name == "lf_default_sense" {
            // Deterministic heuristic: always the default sense. Correct on
            // regular queries by construction, wrong on the slice.
            0
        } else if rng.gen_bool(spec.accuracy) {
            query.gold_arg
        } else if n_candidates > 1 {
            let mut wrong = rng.gen_range(0..n_candidates - 1);
            if wrong >= query.gold_arg {
                wrong += 1;
            }
            wrong
        } else {
            0
        };
        record = record.with_label("IntentArg", &spec.name, TaskLabel::Select(choice));
    }

    record
}

/// The intent a keyword heuristic most plausibly confuses with `intent`
/// (shared leading tokens in the query templates).
fn confusable_intent(intent: &str) -> &'static str {
    match intent {
        "Height" => "Age",
        "Age" => "Height",
        "Capital" => "President",
        "President" => "Capital",
        "Population" => "Calories",
        "Calories" => "Population",
        _ => "Height", // Spouse and anything else
    }
}

fn random_other<'x>(vocab: &[&'x str], not: &str, rng: &mut SmallRng) -> &'x str {
    loop {
        let pick = vocab[rng.gen_range(0..vocab.len())];
        if pick != not {
            return pick;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_store::SLICE_PREFIX;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig { n_train: 200, n_dev: 40, n_test: 60, seed: 42, ..Default::default() }
    }

    #[test]
    fn generates_requested_splits() {
        let ds = generate_workload(&small_config());
        assert_eq!(ds.len(), 300);
        assert_eq!(ds.train_indices().len(), 200);
        assert_eq!(ds.dev_indices().len(), 40);
        assert_eq!(ds.test_indices().len(), 60);
    }

    #[test]
    fn all_records_validate_against_schema() {
        let ds = generate_workload(&small_config());
        for r in ds.records() {
            r.validate(ds.schema()).unwrap();
        }
    }

    #[test]
    fn dev_and_test_have_gold_everywhere() {
        let ds = generate_workload(&small_config());
        for &i in ds.dev_indices().iter().chain(ds.test_indices().iter()) {
            let r = &ds.records()[i];
            for task in ["Intent", "POS", "EntityType", "IntentArg"] {
                assert!(r.gold(task).is_some(), "missing gold {task}");
            }
        }
    }

    #[test]
    fn train_is_weak_only_by_default() {
        let ds = generate_workload(&small_config());
        let with_gold = ds
            .train_indices()
            .iter()
            .filter(|&&i| ds.records()[i].gold("Intent").is_some())
            .count();
        assert_eq!(with_gold, 0);
        // But weak supervision is plentiful.
        let with_weak = ds
            .train_indices()
            .iter()
            .filter(|&&i| ds.records()[i].weak_sources("Intent").next().is_some())
            .count();
        assert!(with_weak > 150, "only {with_weak} records have weak Intent labels");
    }

    #[test]
    fn gold_fraction_controls_annotator_budget() {
        let config = WorkloadConfig { gold_train_fraction: 0.5, ..small_config() };
        let ds = generate_workload(&config);
        let with_gold = ds
            .train_indices()
            .iter()
            .filter(|&&i| ds.records()[i].gold("Intent").is_some())
            .count();
        assert!((60..140).contains(&with_gold), "got {with_gold} gold train records");
    }

    #[test]
    fn slice_rate_produces_slices() {
        let ds = generate_workload(&small_config());
        let sliced = ds.in_slice("complex-disambiguation").len();
        assert!(sliced > 5, "only {sliced} slice records");
        assert!(
            ds.slice_names().iter().any(|s| s == "complex-disambiguation"),
            "slices: {:?}",
            ds.slice_names()
        );
        // Tag form is the canonical slice prefix.
        let r = &ds.records()[ds.in_slice("complex-disambiguation")[0]];
        assert!(r.tags.iter().any(|t| t.starts_with(SLICE_PREFIX)));
    }

    #[test]
    fn default_sense_source_is_wrong_on_slice() {
        let ds =
            generate_workload(&WorkloadConfig { n_train: 600, slice_rate: 0.3, ..small_config() });
        let mut slice_wrong = 0usize;
        let mut slice_total = 0usize;
        for &i in &ds.train_indices() {
            let r = &ds.records()[i];
            if !r.in_slice("complex-disambiguation") {
                continue;
            }
            if let Some(TaskLabel::Select(v)) =
                r.tasks.get("IntentArg").and_then(|m| m.get("lf_default_sense"))
            {
                slice_total += 1;
                // Slice records have gold_arg != 0 while the LF votes 0.
                if *v == 0 {
                    slice_wrong += 1;
                }
            }
        }
        assert!(slice_total > 10);
        assert_eq!(slice_wrong, slice_total, "default-sense LF must be systematically wrong");
    }

    #[test]
    fn two_file_workload_round_trips_through_files() {
        let config = small_config();
        let dir = std::env::temp_dir().join(format!("overton-two-file-nlp-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let (schema_path, data_path) = write_two_file_workload(&config, &dir).unwrap();
        let store = overton_store::ShardedStore::from_files(&schema_path, &data_path).unwrap();
        let eager = generate_workload(&config);
        assert_eq!(store.len(), eager.len());
        assert_eq!(store.dataset_view().unwrap().records(), eager.records());
        assert_eq!(store.schema(), eager.schema());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sealed_workload_matches_eager() {
        let config = small_config();
        let store = generate_workload_sealed(&config);
        let eager = generate_workload(&config);
        assert_eq!(store.len(), eager.len());
        assert_eq!(store.dataset_view().unwrap().records(), eager.records());
        assert_eq!(store.index().train_rows().len(), 200);
        assert_eq!(store.index().dev_rows().len(), 40);
        assert_eq!(store.index().test_rows().len(), 60);
        store.verify().unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_workload(&small_config());
        let b = generate_workload(&small_config());
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_workload(&small_config());
        let b = generate_workload(&WorkloadConfig { seed: 43, ..small_config() });
        assert_ne!(a.records(), b.records());
    }
}

//! A small deterministic tokenizer for the synthetic workload.

/// Lowercases and splits text into word tokens; punctuation characters
/// become their own tokens; apostrophes are kept inside words.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut word = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '\'' || ch == '_' {
            for lower in ch.to_lowercase() {
                word.push(lower);
            }
        } else {
            if !word.is_empty() {
                out.push(std::mem::take(&mut word));
            }
            if !ch.is_whitespace() {
                out.push(ch.to_string());
            }
        }
    }
    if !word.is_empty() {
        out.push(word);
    }
    out
}

/// Joins tokens back into a display string (spaces between word tokens,
/// punctuation attached to the previous token).
pub fn detokenize(tokens: &[String]) -> String {
    let mut out = String::new();
    for (i, tok) in tokens.iter().enumerate() {
        let is_punct = tok.chars().all(|c| !c.is_alphanumeric() && c != '\'' && c != '_');
        if i > 0 && !is_punct {
            out.push(' ');
        }
        out.push_str(tok);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        assert_eq!(
            tokenize("How tall is the President?"),
            vec!["how", "tall", "is", "the", "president", "?"]
        );
    }

    #[test]
    fn apostrophes_stay_in_words() {
        assert_eq!(tokenize("who is obama's wife"), vec!["who", "is", "obama's", "wife"]);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn numbers_kept() {
        assert_eq!(tokenize("top 10 foods"), vec!["top", "10", "foods"]);
    }

    #[test]
    fn detokenize_roundtrips_simple_text() {
        let toks = tokenize("how tall is washington ?");
        assert_eq!(detokenize(&toks), "how tall is washington?");
    }
}

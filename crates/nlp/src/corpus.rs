//! Raw-text corpus generation for pretraining (the "BERT-sim" substrate).
//!
//! Figure 4b contrasts a large pretrained language model against plain word
//! embeddings. We reproduce the *pretraining* part honestly: a corpus of
//! in-domain sentences is generated here, a masked-token encoder is
//! pretrained on it (in `overton-model::pretrained`), and fine-tuned against
//! training from scratch.

use crate::kb::KnowledgeBase;
use crate::queries::QueryGenerator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Statement templates that widen the corpus beyond question forms.
const STATEMENT_TEMPLATES: &[&[&str]] = &[
    &["{e}", "is", "a", "very", "famous", "name"],
    &["many", "people", "ask", "about", "{e}"],
    &["the", "story", "of", "{e}", "is", "well", "known"],
    &["{e}", "appears", "in", "the", "news", "today"],
    &["people", "often", "search", "for", "{e}"],
];

/// Generates `n_sentences` token sequences mixing queries and statements.
pub fn pretraining_corpus(kb: &KnowledgeBase, n_sentences: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let generator = QueryGenerator::new(kb);
    let mut corpus = Vec::with_capacity(n_sentences);
    for _ in 0..n_sentences {
        if rng.gen_bool(0.7) {
            let force_ambiguous = rng.gen_bool(0.1);
            corpus.push(generator.generate(&mut rng, force_ambiguous).tokens);
        } else {
            let template = STATEMENT_TEMPLATES[rng.gen_range(0..STATEMENT_TEMPLATES.len())];
            let entity = kb.entity(rng.gen_range(0..kb.len()));
            let alias = &entity.aliases[rng.gen_range(0..entity.aliases.len())];
            let mut sentence = Vec::new();
            for &word in template {
                if word == "{e}" {
                    sentence.extend(alias.split(' ').map(str::to_string));
                } else {
                    sentence.push(word.to_string());
                }
            }
            corpus.push(sentence);
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_size() {
        let kb = KnowledgeBase::standard();
        let corpus = pretraining_corpus(&kb, 100, 1);
        assert_eq!(corpus.len(), 100);
        assert!(corpus.iter().all(|s| !s.is_empty() && s.len() <= 16));
    }

    #[test]
    fn corpus_mixes_queries_and_statements() {
        let kb = KnowledgeBase::standard();
        let corpus = pretraining_corpus(&kb, 300, 2);
        let has_question = corpus.iter().any(|s| s[0] == "how" || s[0] == "what" || s[0] == "who");
        let has_statement = corpus.iter().any(|s| s.contains(&"news".to_string()));
        assert!(has_question && has_statement);
    }

    #[test]
    fn deterministic_given_seed() {
        let kb = KnowledgeBase::standard();
        assert_eq!(pretraining_corpus(&kb, 50, 9), pretraining_corpus(&kb, 50, 9));
    }
}

//! Template-based factoid query generation with gold labels.
//!
//! Mirrors the paper's running example: each query carries tokens, a query
//! string, a candidate entity set with (possibly overlapping) spans, and
//! gold labels for all four tasks (`Intent`, `POS`, `EntityType`,
//! `IntentArg`). Disambiguation is *by intent*: "how tall is washington"
//! selects the person, "what is the capital of washington" the state.

use crate::kb::KnowledgeBase;
use rand::Rng;

/// Intent classes of the workload.
pub const INTENTS: [&str; 7] =
    ["Height", "Age", "Capital", "Population", "Spouse", "President", "Calories"];

/// POS tag classes of the workload.
pub const POS_TAGS: [&str; 8] = ["ADV", "ADJ", "VERB", "NOUN", "PROPN", "DET", "ADP", "PRON"];

/// Entity types an intent's argument must carry, in preference order.
pub fn required_types(intent: &str) -> &'static [&'static str] {
    match intent {
        "Height" | "Age" | "Spouse" => &["person"],
        "Capital" => &["country", "state"],
        "Population" => &["country", "city", "state"],
        "President" => &["country"],
        "Calories" => &["food"],
        other => panic!("unknown intent '{other}'"),
    }
}

/// The name of the slice holding non-default-sense disambiguations.
pub const SLICE_COMPLEX_DISAMBIGUATION: &str = "complex-disambiguation";

/// Per-(alias, intent) editorial ground truth. Real products resolve
/// ambiguous mentions by editorial decision, entity popularity and user
/// behaviour — NOT by a global type rule. Because similar contexts map to
/// different senses per alias ("population of georgia" means the state,
/// "population of mexico" the country), no function of (intent, type-set)
/// explains these; the model must learn entity-specific behaviour from the
/// few slice examples. This is what makes the complex-disambiguation slice
/// genuinely hard (paper §2.2).
pub const EDITORIAL_GOLD: &[(&str, &str, &str)] = &[
    ("washington", "Population", "washington_state"),
    ("georgia", "Population", "georgia_state"),
    ("georgia", "Capital", "georgia_state"),
    ("lincoln", "Population", "lincoln_city"),
    ("apple", "Calories", "apple_food"),
];
/// The name of the slice holding nutrition queries.
pub const SLICE_NUTRITION: &str = "nutrition";

struct Template {
    intent: &'static str,
    /// `(word, pos)` pairs; a `None` word is the entity slot.
    parts: &'static [(Option<&'static str>, &'static str)],
}

const SLOT: (Option<&'static str>, &str) = (None, "PROPN");

const TEMPLATES: &[Template] = &[
    Template {
        intent: "Height",
        parts: &[(Some("how"), "ADV"), (Some("tall"), "ADJ"), (Some("is"), "VERB"), SLOT],
    },
    Template {
        intent: "Height",
        parts: &[
            (Some("what"), "PRON"),
            (Some("is"), "VERB"),
            (Some("the"), "DET"),
            (Some("height"), "NOUN"),
            (Some("of"), "ADP"),
            SLOT,
        ],
    },
    Template {
        intent: "Age",
        parts: &[(Some("how"), "ADV"), (Some("old"), "ADJ"), (Some("is"), "VERB"), SLOT],
    },
    Template {
        intent: "Age",
        parts: &[
            (Some("what"), "PRON"),
            (Some("is"), "VERB"),
            (Some("the"), "DET"),
            (Some("age"), "NOUN"),
            (Some("of"), "ADP"),
            SLOT,
        ],
    },
    Template {
        intent: "Capital",
        parts: &[
            (Some("what"), "PRON"),
            (Some("is"), "VERB"),
            (Some("the"), "DET"),
            (Some("capital"), "NOUN"),
            (Some("of"), "ADP"),
            SLOT,
        ],
    },
    Template {
        intent: "Population",
        parts: &[
            (Some("what"), "PRON"),
            (Some("is"), "VERB"),
            (Some("the"), "DET"),
            (Some("population"), "NOUN"),
            (Some("of"), "ADP"),
            SLOT,
        ],
    },
    Template {
        intent: "Population",
        parts: &[
            (Some("how"), "ADV"),
            (Some("many"), "ADJ"),
            (Some("people"), "NOUN"),
            (Some("live"), "VERB"),
            (Some("in"), "ADP"),
            SLOT,
        ],
    },
    Template {
        intent: "Spouse",
        parts: &[
            (Some("who"), "PRON"),
            (Some("is"), "VERB"),
            SLOT,
            (Some("married"), "VERB"),
            (Some("to"), "ADP"),
        ],
    },
    Template {
        intent: "Spouse",
        parts: &[
            (Some("who"), "PRON"),
            (Some("is"), "VERB"),
            (Some("the"), "DET"),
            (Some("spouse"), "NOUN"),
            (Some("of"), "ADP"),
            SLOT,
        ],
    },
    Template {
        intent: "President",
        parts: &[
            (Some("who"), "PRON"),
            (Some("is"), "VERB"),
            (Some("the"), "DET"),
            (Some("president"), "NOUN"),
            (Some("of"), "ADP"),
            SLOT,
        ],
    },
    Template {
        intent: "Calories",
        parts: &[
            (Some("how"), "ADV"),
            (Some("many"), "ADJ"),
            (Some("calories"), "NOUN"),
            (Some("in"), "ADP"),
            SLOT,
        ],
    },
    Template {
        intent: "Calories",
        parts: &[
            (Some("how"), "ADV"),
            (Some("many"), "ADJ"),
            (Some("calories"), "NOUN"),
            (Some("are"), "VERB"),
            (Some("in"), "ADP"),
            SLOT,
        ],
    },
];

/// Templates whose text does NOT determine the intent: real production
/// traffic contains queries whose label is irreducibly uncertain, which is
/// why even the paper's best systems have residual error. Gold intent for
/// these is drawn uniformly from the person intents.
const VAGUE_TEMPLATES: &[&[(Option<&str>, &str)]] = &[
    &[(Some("tell"), "VERB"), (Some("me"), "PRON"), (Some("about"), "ADP"), (None, "PROPN")],
    &[(Some("what"), "PRON"), (Some("about"), "ADP"), (None, "PROPN")],
    &[
        (Some("give"), "VERB"),
        (Some("me"), "PRON"),
        (Some("facts"), "NOUN"),
        (Some("about"), "ADP"),
        (None, "PROPN"),
    ],
];

/// Intents a vague query may carry.
pub const VAGUE_INTENTS: [&str; 3] = ["Height", "Age", "Spouse"];

/// Template ids at or above this offset are vague templates.
pub const VAGUE_TEMPLATE_OFFSET: usize = 100;

/// Every template id with the intent its queries carry (`None` for vague
/// templates, whose gold intent is sampled per query). Used by the
/// deterministic labeling-function simulator.
pub fn template_catalog() -> Vec<(usize, Option<&'static str>)> {
    let mut out: Vec<(usize, Option<&'static str>)> =
        TEMPLATES.iter().enumerate().map(|(i, t)| (i, Some(t.intent))).collect();
    for i in 0..VAGUE_TEMPLATES.len() {
        out.push((VAGUE_TEMPLATE_OFFSET + i, None));
    }
    out
}

/// A candidate entity mention: KB entity index plus the half-open token
/// span it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Index into the knowledge base.
    pub entity: usize,
    /// Half-open token span.
    pub span: (usize, usize),
}

/// A fully-labeled synthetic query.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// Query tokens (lowercase).
    pub tokens: Vec<String>,
    /// Gold intent (one of [`INTENTS`]).
    pub intent: &'static str,
    /// Gold POS tag per token.
    pub pos: Vec<&'static str>,
    /// Gold entity-type bits per token (types of the gold argument on its
    /// span, empty elsewhere).
    pub token_types: Vec<Vec<&'static str>>,
    /// Candidate entities (default sense first, sub-span distractors after).
    pub candidates: Vec<Candidate>,
    /// Index of the correct candidate in `candidates`.
    pub gold_arg: usize,
    /// Slice names this query belongs to.
    pub slices: Vec<&'static str>,
    /// Stable id of the template that produced the query (vague templates
    /// are offset by [`VAGUE_TEMPLATE_OFFSET`]). Deterministic labeling
    /// functions key their behaviour on this: a keyword heuristic is a
    /// fixed function of the text, so it is consistently right or wrong on
    /// ALL queries of a template.
    pub template_id: usize,
}

impl GeneratedQuery {
    /// The query as display text.
    pub fn text(&self) -> String {
        self.tokens.join(" ")
    }

    /// The surface form of the entity mention (the full-span alias).
    pub fn mention_text(&self) -> String {
        let (lo, hi) = self.candidates[0].span;
        self.tokens[lo..hi].join(" ")
    }
}

/// Generates labeled queries over a knowledge base.
pub struct QueryGenerator<'a> {
    kb: &'a KnowledgeBase,
    /// `(alias, entity, intent)` triples whose correct reading is a
    /// non-default sense — the "complex disambiguation" pool.
    ambiguous_pool: Vec<(String, usize, &'static str)>,
}

impl<'a> QueryGenerator<'a> {
    /// Prepares a generator (precomputes the ambiguous pool).
    pub fn new(kb: &'a KnowledgeBase) -> Self {
        let mut ambiguous_pool = Vec::new();
        for alias in kb.ambiguous_aliases() {
            let senses = kb.senses(alias);
            for intent in INTENTS {
                let types = required_types(intent);
                // Editorial decisions first, then the first type-compatible
                // sense (mirrors `build_from_parts`).
                let editorial = EDITORIAL_GOLD
                    .iter()
                    .find(|(a, i, _)| *a == alias && *i == intent)
                    .and_then(|(_, _, id)| senses.iter().position(|&e| kb.entity(e).id == *id));
                let gold = editorial.or_else(|| {
                    senses.iter().position(|&e| types.iter().any(|t| kb.entity(e).has_type(t)))
                });
                if let Some(pos) = gold {
                    if pos > 0 {
                        ambiguous_pool.push((alias.to_string(), senses[pos], intent));
                    }
                }
            }
        }
        Self { kb, ambiguous_pool }
    }

    /// Number of distinct (alias, intent) ambiguities available.
    pub fn ambiguous_pool_size(&self) -> usize {
        self.ambiguous_pool.len()
    }

    /// Generates one query. With `force_ambiguous`, draws from the
    /// complex-disambiguation pool (gold is a non-default sense).
    pub fn generate(&self, rng: &mut impl Rng, force_ambiguous: bool) -> GeneratedQuery {
        if force_ambiguous && !self.ambiguous_pool.is_empty() {
            let (alias, entity, intent) =
                &self.ambiguous_pool[rng.gen_range(0..self.ambiguous_pool.len())];
            return self.build(intent, *entity, alias, rng);
        }
        // Regular draw: intent, then an entity of a required type, then one
        // of its aliases.
        loop {
            let intent = INTENTS[rng.gen_range(0..INTENTS.len())];
            let types = required_types(intent);
            let pool: Vec<usize> = types.iter().flat_map(|t| self.kb.with_type(t)).collect();
            if pool.is_empty() {
                continue;
            }
            let entity = pool[rng.gen_range(0..pool.len())];
            let aliases = &self.kb.entity(entity).aliases;
            let alias = &aliases[rng.gen_range(0..aliases.len())];
            return self.build(intent, entity, alias, rng);
        }
    }

    /// Generates a *vague* query: the text does not determine the intent,
    /// so the gold intent is sampled. These create the irreducible error
    /// floor every production system lives with.
    pub fn generate_vague(&self, rng: &mut impl Rng) -> GeneratedQuery {
        let intent = VAGUE_INTENTS[rng.gen_range(0..VAGUE_INTENTS.len())];
        // Topic must satisfy the sampled intent (a person).
        let pool = self.kb.with_type("person");
        let entity = pool[rng.gen_range(0..pool.len())];
        let aliases = &self.kb.entity(entity).aliases;
        let alias = aliases[rng.gen_range(0..aliases.len())].clone();
        let which = rng.gen_range(0..VAGUE_TEMPLATES.len());
        self.build_from_parts(intent, VAGUE_TEMPLATES[which], &alias, VAGUE_TEMPLATE_OFFSET + which)
    }

    fn build(
        &self,
        intent: &'static str,
        _target_entity: usize,
        alias: &str,
        rng: &mut impl Rng,
    ) -> GeneratedQuery {
        let ids: Vec<usize> = TEMPLATES
            .iter()
            .enumerate()
            .filter(|(_, t)| t.intent == intent)
            .map(|(i, _)| i)
            .collect();
        let template_id = ids[rng.gen_range(0..ids.len())];
        self.build_from_parts(intent, TEMPLATES[template_id].parts, alias, template_id)
    }

    fn build_from_parts(
        &self,
        intent: &'static str,
        parts: &[(Option<&'static str>, &'static str)],
        alias: &str,
        template_id: usize,
    ) -> GeneratedQuery {
        let alias_tokens: Vec<String> = alias.split(' ').map(str::to_string).collect();
        let mut tokens = Vec::new();
        let mut pos: Vec<&'static str> = Vec::new();
        let mut mention_span = (0usize, 0usize);
        for (word, tag) in parts {
            match word {
                Some(w) => {
                    tokens.push((*w).to_string());
                    pos.push(tag);
                }
                None => {
                    mention_span = (tokens.len(), tokens.len() + alias_tokens.len());
                    for t in &alias_tokens {
                        tokens.push(t.clone());
                        pos.push("PROPN"); // refined below for foods
                    }
                }
            }
        }

        // Candidates: full-span senses first (default sense first), then
        // sub-span distractors.
        let mut candidates: Vec<Candidate> = self
            .kb
            .senses(alias)
            .into_iter()
            .map(|e| Candidate { entity: e, span: mention_span })
            .collect();
        let (lo, hi) = mention_span;
        let width = hi - lo;
        for sub_lo in lo..hi {
            for sub_hi in (sub_lo + 1)..=hi {
                if sub_hi - sub_lo == width {
                    continue; // full span already handled
                }
                let sub_alias = tokens[sub_lo..sub_hi].join(" ");
                for e in self.kb.senses(&sub_alias) {
                    let cand = Candidate { entity: e, span: (sub_lo, sub_hi) };
                    if !candidates.contains(&cand) {
                        candidates.push(cand);
                    }
                }
            }
        }

        let types = required_types(intent);
        let matches_intent =
            |c: &Candidate| types.iter().any(|t| self.kb.entity(c.entity).has_type(t));
        // Editorial decisions override the generic first-compatible rule
        // on specific (alias, intent) pairs — see [`EDITORIAL_GOLD`].
        let editorial =
            EDITORIAL_GOLD.iter().find(|(a, i, _)| *a == alias && *i == intent).and_then(
                |(_, _, id)| candidates.iter().position(|c| self.kb.entity(c.entity).id == *id),
            );
        let gold_arg = editorial
            .or_else(|| candidates.iter().position(matches_intent))
            .expect("generator always produces a type-compatible candidate");

        let gold_entity = self.kb.entity(candidates[gold_arg].entity);
        let gold_span = candidates[gold_arg].span;
        let mut token_types: Vec<Vec<&'static str>> = vec![Vec::new(); tokens.len()];
        for tt in token_types.iter_mut().take(gold_span.1).skip(gold_span.0) {
            *tt = gold_entity.types.clone();
        }
        // Food mentions read as common nouns.
        if gold_entity.has_type("food") {
            for p in pos.iter_mut().take(gold_span.1).skip(gold_span.0) {
                *p = "NOUN";
            }
        }

        let mut slices = Vec::new();
        if gold_arg != 0 {
            slices.push(SLICE_COMPLEX_DISAMBIGUATION);
        }
        if intent == "Calories" {
            slices.push(SLICE_NUTRITION);
        }

        GeneratedQuery {
            tokens,
            intent,
            pos,
            token_types,
            candidates,
            gold_arg,
            slices,
            template_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn generator_and_kb() -> (KnowledgeBase, usize) {
        let kb = KnowledgeBase::standard();
        let pool = QueryGenerator::new(&kb).ambiguous_pool_size();
        (kb, pool)
    }

    #[test]
    fn ambiguous_pool_exists() {
        let (_, pool) = generator_and_kb();
        assert!(pool >= 5, "pool size {pool}");
    }

    #[test]
    fn regular_queries_are_consistent() {
        let kb = KnowledgeBase::standard();
        let gen = QueryGenerator::new(&kb);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let q = gen.generate(&mut rng, false);
            assert_eq!(q.tokens.len(), q.pos.len());
            assert_eq!(q.tokens.len(), q.token_types.len());
            assert!(q.tokens.len() <= 16);
            assert!(!q.candidates.is_empty());
            assert!(q.gold_arg < q.candidates.len());
            assert!(INTENTS.contains(&q.intent));
            for p in &q.pos {
                assert!(POS_TAGS.contains(p), "unknown pos {p}");
            }
            // Gold candidate type matches the intent requirement.
            let gold = kb.entity(q.candidates[q.gold_arg].entity);
            assert!(required_types(q.intent).iter().any(|t| gold.has_type(t)));
            // Spans are in range.
            for c in &q.candidates {
                assert!(c.span.0 < c.span.1 && c.span.1 <= q.tokens.len());
            }
        }
    }

    #[test]
    fn forced_ambiguous_queries_are_sliced() {
        let kb = KnowledgeBase::standard();
        let gen = QueryGenerator::new(&kb);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let q = gen.generate(&mut rng, true);
            assert!(q.gold_arg != 0, "ambiguous query must need disambiguation");
            assert!(q.slices.contains(&SLICE_COMPLEX_DISAMBIGUATION));
        }
    }

    #[test]
    fn capital_of_washington_selects_the_state() {
        let kb = KnowledgeBase::standard();
        let gen = QueryGenerator::new(&kb);
        let mut rng = SmallRng::seed_from_u64(3);
        // Search the ambiguous pool for the washington/Capital pairing.
        for _ in 0..500 {
            let q = gen.generate(&mut rng, true);
            if q.intent == "Capital" && q.tokens.contains(&"washington".to_string()) {
                let gold = kb.entity(q.candidates[q.gold_arg].entity);
                assert_eq!(gold.id, "washington_state");
                return;
            }
        }
        panic!("never generated 'capital of washington'");
    }

    #[test]
    fn nutrition_slice_applied() {
        let kb = KnowledgeBase::standard();
        let gen = QueryGenerator::new(&kb);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..500 {
            let q = gen.generate(&mut rng, false);
            if q.intent == "Calories" {
                assert!(q.slices.contains(&SLICE_NUTRITION));
                return;
            }
        }
        panic!("never generated a Calories query");
    }

    #[test]
    fn multi_token_mentions_get_subspan_distractors() {
        let kb = KnowledgeBase::standard();
        let gen = QueryGenerator::new(&kb);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..2000 {
            let q = gen.generate(&mut rng, false);
            let full = q.candidates[0].span;
            if q.candidates.iter().any(|c| c.span != full) {
                return; // found an overlapping distractor
            }
        }
        panic!("no sub-span candidates ever generated");
    }

    #[test]
    fn token_types_cover_gold_span_only() {
        let kb = KnowledgeBase::standard();
        let gen = QueryGenerator::new(&kb);
        let mut rng = SmallRng::seed_from_u64(6);
        let q = gen.generate(&mut rng, false);
        let (lo, hi) = q.candidates[q.gold_arg].span;
        for (t, types) in q.token_types.iter().enumerate() {
            if t >= lo && t < hi {
                assert!(!types.is_empty());
            } else {
                assert!(types.is_empty());
            }
        }
    }
}

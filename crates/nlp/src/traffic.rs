//! Live-traffic simulation for the serving runtime.
//!
//! Production serving (the ROADMAP's "heavy traffic from millions of
//! users") is driven by an open-loop arrival process, not by a dataset:
//! requests arrive at random times, in bursts, with a different slice mix
//! than the training distribution. [`TrafficStream`] generates that — a
//! Poisson process (exponential inter-arrival times at a configured QPS)
//! over the template query generator, emitting schema-conformant records
//! tagged [`TAG_LIVE`](overton_store::TAG_LIVE). Because the queries are
//! synthetic, each record can optionally carry gold labels, standing in for
//! the production reality that a sample of live traffic is labeled after
//! the fact and used to score canaries.

use crate::kb::KnowledgeBase;
use crate::queries::QueryGenerator;
use crate::workload::query_record;
use overton_store::{Record, TAG_LIVE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Configuration of a simulated traffic stream.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Mean arrival rate, queries per second (Poisson process).
    pub qps: f64,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of queries drawn from the complex-disambiguation pool.
    /// Setting this away from the training workload's rate simulates
    /// traffic drift.
    pub slice_rate: f64,
    /// Fraction of vague queries (intent not determined by the text).
    pub vague_rate: f64,
    /// Whether records carry gold labels (after-the-fact labeling of a
    /// traffic sample; required for canary scoring).
    pub with_gold: bool,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self { qps: 100.0, seed: 0, slice_rate: 0.06, vague_rate: 0.05, with_gold: true }
    }
}

/// One simulated request: its arrival offset from stream start and the
/// query record.
#[derive(Debug, Clone)]
pub struct TrafficEvent {
    /// Arrival time, as an offset from the start of the stream.
    pub at: Duration,
    /// The request payloads (plus gold labels when configured).
    pub record: Record,
}

/// An infinite, deterministic stream of simulated live requests.
///
/// ```
/// use overton_nlp::{KnowledgeBase, TrafficConfig, TrafficStream};
///
/// let kb = KnowledgeBase::standard();
/// let mut stream = TrafficStream::new(&kb, TrafficConfig::default());
/// let burst: Vec<_> = stream.by_ref().take(100).collect();
/// assert!(burst.windows(2).all(|w| w[0].at <= w[1].at));
/// ```
pub struct TrafficStream<'a> {
    kb: &'a KnowledgeBase,
    generator: QueryGenerator<'a>,
    config: TrafficConfig,
    rng: SmallRng,
    clock: Duration,
}

impl<'a> TrafficStream<'a> {
    /// Prepares a stream over a knowledge base.
    pub fn new(kb: &'a KnowledgeBase, config: TrafficConfig) -> Self {
        assert!(config.qps > 0.0, "traffic qps must be positive");
        let rng = SmallRng::seed_from_u64(config.seed);
        Self { kb, generator: QueryGenerator::new(kb), config, rng, clock: Duration::ZERO }
    }

    /// Drains the next `n` requests, dropping arrival times (the common
    /// shape for feeding a batch into the worker pool or a canary).
    pub fn records(&mut self, n: usize) -> Vec<Record> {
        self.by_ref().take(n).map(|e| e.record).collect()
    }
}

impl TrafficStream<'_> {
    /// Generates the next event at an explicit `(slice_rate, vague_rate)`
    /// mix — the shared core of the steady stream ([`Iterator::next`],
    /// which uses the configured rates) and [`DriftingTrafficStream`]
    /// (which ramps the rates over time).
    fn next_with_rates(&mut self, slice_rate: f64, vague_rate: f64) -> TrafficEvent {
        // Exponential inter-arrival via inverse-CDF; clamp u away from 0 so
        // ln stays finite.
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        self.clock += Duration::from_secs_f64(-u.ln() / self.config.qps);
        let query = if self.rng.gen_bool(vague_rate) {
            self.generator.generate_vague(&mut self.rng)
        } else {
            let force_ambiguous = self.rng.gen_bool(slice_rate);
            self.generator.generate(&mut self.rng, force_ambiguous)
        };
        let record = query_record(self.kb, &query, TAG_LIVE, self.config.with_gold);
        TrafficEvent { at: self.clock, record }
    }
}

impl Iterator for TrafficStream<'_> {
    type Item = TrafficEvent;

    fn next(&mut self) -> Option<TrafficEvent> {
        let (slice_rate, vague_rate) = (self.config.slice_rate, self.config.vague_rate);
        Some(self.next_with_rates(slice_rate, vague_rate))
    }
}

/// Configuration of a [`DriftingTrafficStream`]: a base traffic mix that
/// ramps toward a drifted mix over a window of events.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// The pre-drift traffic mix (and QPS/seed/gold settings throughout).
    pub base: TrafficConfig,
    /// Slice-mix shift: the complex-disambiguation draw rate the stream
    /// ramps to (traffic tilting toward the hard slice).
    pub end_slice_rate: f64,
    /// Vocabulary/confidence shift: the vague-query rate the stream ramps
    /// to. Vague queries come from a disjoint template pool whose intent
    /// is not determined by the text, so raising this both shifts the
    /// token distribution and drags serving confidence down — the
    /// "queries changed under the model" failure mode.
    pub end_vague_rate: f64,
    /// Event index at which the drift begins (the stream is stationary at
    /// the base mix before it).
    pub drift_start: usize,
    /// Events over which the rates interpolate linearly from base to end
    /// (0 = a step change at `drift_start`).
    pub drift_ramp: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            base: TrafficConfig::default(),
            end_slice_rate: 0.75,
            end_vague_rate: 0.45,
            drift_start: 1000,
            drift_ramp: 250,
        }
    }
}

impl DriftConfig {
    /// A *mild* drift over `base`: the slice and vague rates tick up by a
    /// hair (0.06 → 0.09, 0.05 → 0.07 at the defaults) — a real shift,
    /// but one whose per-window effect is within sampling noise at the
    /// monitoring window sizes. This is the calibration workload for the
    /// statistical alert gate: a naive point-estimate threshold pages on
    /// it, a significance-tested one holds.
    pub fn mild(base: TrafficConfig) -> Self {
        Self {
            end_slice_rate: (base.slice_rate + 0.03).min(1.0),
            end_vague_rate: (base.vague_rate + 0.02).min(1.0),
            drift_start: 1000,
            drift_ramp: 250,
            base,
        }
    }

    /// The `(slice_rate, vague_rate)` mix in effect for event `i`.
    pub fn rates_at(&self, i: usize) -> (f64, f64) {
        let t = if i < self.drift_start {
            0.0
        } else if self.drift_ramp == 0 {
            1.0
        } else {
            (((i - self.drift_start) as f64) / self.drift_ramp as f64).min(1.0)
        };
        let lerp = |a: f64, b: f64| a + (b - a) * t;
        (
            lerp(self.base.slice_rate, self.end_slice_rate),
            lerp(self.base.vague_rate, self.end_vague_rate),
        )
    }
}

/// A deterministic traffic stream whose mix *drifts*: stationary at the
/// base [`TrafficConfig`] until `drift_start`, then ramping the slice and
/// vague rates toward the configured end mix. This is the workload that
/// exercises the continuous-monitoring subsystem (`overton-obs`): the
/// slice-mix shift drives the PSI traffic detector, the vague-query shift
/// drives the per-slice confidence KS detector, and both are seeded so a
/// drift scenario replays exactly.
pub struct DriftingTrafficStream<'a> {
    inner: TrafficStream<'a>,
    config: DriftConfig,
    emitted: usize,
}

impl<'a> DriftingTrafficStream<'a> {
    /// Prepares a drifting stream over a knowledge base.
    pub fn new(kb: &'a KnowledgeBase, config: DriftConfig) -> Self {
        let inner = TrafficStream::new(kb, config.base.clone());
        Self { inner, config, emitted: 0 }
    }

    /// How many events have been emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// The drift configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Drains the next `n` requests, dropping arrival times.
    pub fn records(&mut self, n: usize) -> Vec<Record> {
        self.by_ref().take(n).map(|e| e.record).collect()
    }
}

impl Iterator for DriftingTrafficStream<'_> {
    type Item = TrafficEvent;

    fn next(&mut self) -> Option<TrafficEvent> {
        let (slice_rate, vague_rate) = self.config.rates_at(self.emitted);
        self.emitted += 1;
        Some(self.inner.next_with_rates(slice_rate, vague_rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::workload_schema;
    use overton_store::GOLD_SOURCE;

    #[test]
    fn events_are_monotone_and_roughly_at_qps() {
        let kb = KnowledgeBase::standard();
        let config = TrafficConfig { qps: 200.0, seed: 3, ..Default::default() };
        let events: Vec<TrafficEvent> = TrafficStream::new(&kb, config).take(2000).collect();
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        // 2000 arrivals at 200 qps take ~10s; Poisson noise is a few %.
        let horizon = events.last().unwrap().at.as_secs_f64();
        assert!((7.0..14.0).contains(&horizon), "horizon {horizon:.2}s");
    }

    #[test]
    fn records_validate_and_carry_gold_and_live_tag() {
        let kb = KnowledgeBase::standard();
        let schema = workload_schema();
        let mut stream = TrafficStream::new(&kb, TrafficConfig { seed: 9, ..Default::default() });
        for event in stream.by_ref().take(200) {
            event.record.validate(&schema).unwrap();
            assert!(event.record.tags.contains(TAG_LIVE));
            assert!(event.record.gold("Intent").is_some());
        }
    }

    #[test]
    fn gold_can_be_disabled() {
        let kb = KnowledgeBase::standard();
        let config = TrafficConfig { with_gold: false, seed: 1, ..Default::default() };
        let mut stream = TrafficStream::new(&kb, config);
        let record = stream.next().unwrap().record;
        assert!(record.tasks.values().all(|m| !m.contains_key(GOLD_SOURCE)));
    }

    #[test]
    fn deterministic_given_seed() {
        let kb = KnowledgeBase::standard();
        let config = TrafficConfig { seed: 17, ..Default::default() };
        let mut a = TrafficStream::new(&kb, config.clone());
        let mut b = TrafficStream::new(&kb, config);
        for _ in 0..50 {
            let (ea, eb) = (a.next().unwrap(), b.next().unwrap());
            assert_eq!(ea.at, eb.at);
            assert_eq!(ea.record, eb.record);
        }
    }

    #[test]
    fn drifting_stream_is_stationary_then_shifts() {
        let kb = KnowledgeBase::standard();
        let config = DriftConfig {
            base: TrafficConfig {
                seed: 11,
                slice_rate: 0.05,
                vague_rate: 0.02,
                ..Default::default()
            },
            end_slice_rate: 0.6,
            end_vague_rate: 0.5,
            drift_start: 500,
            drift_ramp: 100,
        };
        let mut stream = DriftingTrafficStream::new(&kb, config);
        let in_slice = |records: &[Record]| {
            records.iter().filter(|r| r.in_slice(crate::SLICE_COMPLEX_DISAMBIGUATION)).count()
        };
        let before = stream.records(500);
        assert_eq!(stream.emitted(), 500);
        // Fully past the ramp.
        let _ramp = stream.records(100);
        let after = stream.records(500);
        // The slice draw applies to non-vague queries only, so the
        // post-drift share is about (1 - vague) * slice_rate = 0.3.
        let (b, a) = (in_slice(&before), in_slice(&after));
        assert!(b < 100, "pre-drift slice traffic too high: {b}/500");
        assert!(a > 130, "post-drift slice traffic too low: {a}/500");
        // Records still validate and carry the live tag through the drift.
        let schema = crate::workload::workload_schema();
        for r in before.iter().chain(&after) {
            r.validate(&schema).unwrap();
            assert!(r.tags.contains(TAG_LIVE));
        }
    }

    #[test]
    fn drifting_stream_is_deterministic_and_rates_interpolate() {
        let kb = KnowledgeBase::standard();
        let config = DriftConfig {
            base: TrafficConfig { seed: 23, ..Default::default() },
            ..Default::default()
        };
        let mut a = DriftingTrafficStream::new(&kb, config.clone());
        let mut b = DriftingTrafficStream::new(&kb, config.clone());
        for _ in 0..300 {
            let (ea, eb) = (a.next().unwrap(), b.next().unwrap());
            assert_eq!(ea.at, eb.at);
            assert_eq!(ea.record, eb.record);
        }
        // Rates: flat before, linear on the ramp, clamped after.
        assert_eq!(config.rates_at(0).0, config.base.slice_rate);
        assert_eq!(config.rates_at(config.drift_start - 1).0, config.base.slice_rate);
        let mid = config.rates_at(config.drift_start + config.drift_ramp / 2).0;
        assert!(mid > config.base.slice_rate && mid < config.end_slice_rate, "mid {mid}");
        assert_eq!(config.rates_at(usize::MAX).0, config.end_slice_rate);
        // A zero-length ramp is a step change.
        let step = DriftConfig { drift_ramp: 0, ..config };
        assert_eq!(step.rates_at(step.drift_start).0, step.end_slice_rate);
    }

    #[test]
    fn mild_drift_is_a_small_but_real_shift() {
        let config = DriftConfig::mild(TrafficConfig::default());
        // Real: both rates move up...
        assert!(config.end_slice_rate > config.base.slice_rate);
        assert!(config.end_vague_rate > config.base.vague_rate);
        // ...but small: the slice-mix shift stays within a few points, so
        // a monitoring window of a few hundred requests cannot
        // distinguish it from sampling noise.
        assert!(config.end_slice_rate - config.base.slice_rate < 0.05);
        assert!(config.end_vague_rate - config.base.vague_rate < 0.05);
        assert_eq!(config.rates_at(usize::MAX).0, config.end_slice_rate);
        // Saturating near the top of the range stays a valid probability.
        let hot = DriftConfig::mild(TrafficConfig { slice_rate: 0.99, ..Default::default() });
        assert!(hot.end_slice_rate <= 1.0);
    }

    #[test]
    fn slice_rate_shifts_the_traffic_mix() {
        let kb = KnowledgeBase::standard();
        let drifted = TrafficConfig { slice_rate: 0.5, seed: 4, ..Default::default() };
        let mut stream = TrafficStream::new(&kb, drifted);
        let sliced = stream
            .records(500)
            .iter()
            .filter(|r| r.in_slice(crate::SLICE_COMPLEX_DISAMBIGUATION))
            .count();
        assert!(sliced > 150, "only {sliced}/500 slice records at rate 0.5");
    }
}

//! Live-traffic simulation for the serving runtime.
//!
//! Production serving (the ROADMAP's "heavy traffic from millions of
//! users") is driven by an open-loop arrival process, not by a dataset:
//! requests arrive at random times, in bursts, with a different slice mix
//! than the training distribution. [`TrafficStream`] generates that — a
//! Poisson process (exponential inter-arrival times at a configured QPS)
//! over the template query generator, emitting schema-conformant records
//! tagged [`TAG_LIVE`](overton_store::TAG_LIVE). Because the queries are
//! synthetic, each record can optionally carry gold labels, standing in for
//! the production reality that a sample of live traffic is labeled after
//! the fact and used to score canaries.

use crate::kb::KnowledgeBase;
use crate::queries::QueryGenerator;
use crate::workload::query_record;
use overton_store::{Record, TAG_LIVE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Configuration of a simulated traffic stream.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Mean arrival rate, queries per second (Poisson process).
    pub qps: f64,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of queries drawn from the complex-disambiguation pool.
    /// Setting this away from the training workload's rate simulates
    /// traffic drift.
    pub slice_rate: f64,
    /// Fraction of vague queries (intent not determined by the text).
    pub vague_rate: f64,
    /// Whether records carry gold labels (after-the-fact labeling of a
    /// traffic sample; required for canary scoring).
    pub with_gold: bool,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self { qps: 100.0, seed: 0, slice_rate: 0.06, vague_rate: 0.05, with_gold: true }
    }
}

/// One simulated request: its arrival offset from stream start and the
/// query record.
#[derive(Debug, Clone)]
pub struct TrafficEvent {
    /// Arrival time, as an offset from the start of the stream.
    pub at: Duration,
    /// The request payloads (plus gold labels when configured).
    pub record: Record,
}

/// An infinite, deterministic stream of simulated live requests.
///
/// ```
/// use overton_nlp::{KnowledgeBase, TrafficConfig, TrafficStream};
///
/// let kb = KnowledgeBase::standard();
/// let mut stream = TrafficStream::new(&kb, TrafficConfig::default());
/// let burst: Vec<_> = stream.by_ref().take(100).collect();
/// assert!(burst.windows(2).all(|w| w[0].at <= w[1].at));
/// ```
pub struct TrafficStream<'a> {
    kb: &'a KnowledgeBase,
    generator: QueryGenerator<'a>,
    config: TrafficConfig,
    rng: SmallRng,
    clock: Duration,
}

impl<'a> TrafficStream<'a> {
    /// Prepares a stream over a knowledge base.
    pub fn new(kb: &'a KnowledgeBase, config: TrafficConfig) -> Self {
        assert!(config.qps > 0.0, "traffic qps must be positive");
        let rng = SmallRng::seed_from_u64(config.seed);
        Self { kb, generator: QueryGenerator::new(kb), config, rng, clock: Duration::ZERO }
    }

    /// Drains the next `n` requests, dropping arrival times (the common
    /// shape for feeding a batch into the worker pool or a canary).
    pub fn records(&mut self, n: usize) -> Vec<Record> {
        self.by_ref().take(n).map(|e| e.record).collect()
    }
}

impl Iterator for TrafficStream<'_> {
    type Item = TrafficEvent;

    fn next(&mut self) -> Option<TrafficEvent> {
        // Exponential inter-arrival via inverse-CDF; clamp u away from 0 so
        // ln stays finite.
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        self.clock += Duration::from_secs_f64(-u.ln() / self.config.qps);
        let query = if self.rng.gen_bool(self.config.vague_rate) {
            self.generator.generate_vague(&mut self.rng)
        } else {
            let force_ambiguous = self.rng.gen_bool(self.config.slice_rate);
            self.generator.generate(&mut self.rng, force_ambiguous)
        };
        let record = query_record(self.kb, &query, TAG_LIVE, self.config.with_gold);
        Some(TrafficEvent { at: self.clock, record })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::workload_schema;
    use overton_store::GOLD_SOURCE;

    #[test]
    fn events_are_monotone_and_roughly_at_qps() {
        let kb = KnowledgeBase::standard();
        let config = TrafficConfig { qps: 200.0, seed: 3, ..Default::default() };
        let events: Vec<TrafficEvent> = TrafficStream::new(&kb, config).take(2000).collect();
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        // 2000 arrivals at 200 qps take ~10s; Poisson noise is a few %.
        let horizon = events.last().unwrap().at.as_secs_f64();
        assert!((7.0..14.0).contains(&horizon), "horizon {horizon:.2}s");
    }

    #[test]
    fn records_validate_and_carry_gold_and_live_tag() {
        let kb = KnowledgeBase::standard();
        let schema = workload_schema();
        let mut stream = TrafficStream::new(&kb, TrafficConfig { seed: 9, ..Default::default() });
        for event in stream.by_ref().take(200) {
            event.record.validate(&schema).unwrap();
            assert!(event.record.tags.contains(TAG_LIVE));
            assert!(event.record.gold("Intent").is_some());
        }
    }

    #[test]
    fn gold_can_be_disabled() {
        let kb = KnowledgeBase::standard();
        let config = TrafficConfig { with_gold: false, seed: 1, ..Default::default() };
        let mut stream = TrafficStream::new(&kb, config);
        let record = stream.next().unwrap().record;
        assert!(record.tasks.values().all(|m| !m.contains_key(GOLD_SOURCE)));
    }

    #[test]
    fn deterministic_given_seed() {
        let kb = KnowledgeBase::standard();
        let config = TrafficConfig { seed: 17, ..Default::default() };
        let mut a = TrafficStream::new(&kb, config.clone());
        let mut b = TrafficStream::new(&kb, config);
        for _ in 0..50 {
            let (ea, eb) = (a.next().unwrap(), b.next().unwrap());
            assert_eq!(ea.at, eb.at);
            assert_eq!(ea.record, eb.record);
        }
    }

    #[test]
    fn slice_rate_shifts_the_traffic_mix() {
        let kb = KnowledgeBase::standard();
        let drifted = TrafficConfig { slice_rate: 0.5, seed: 4, ..Default::default() };
        let mut stream = TrafficStream::new(&kb, drifted);
        let sliced = stream
            .records(500)
            .iter()
            .filter(|r| r.in_slice(crate::SLICE_COMPLEX_DISAMBIGUATION))
            .count();
        assert!(sliced > 150, "only {sliced}/500 slice records at rate 0.5");
    }
}

//! Seeded hostile-wire generator: malformed HTTP/JSON payloads for the
//! socket tier's fuzz battery.
//!
//! The workload crate already simulates *well-formed* production traffic;
//! this module simulates the rest of the internet. Each payload is raw
//! bytes a test writes straight down a TCP connection, drawn from a
//! family of real-world malformations — garbled request lines, oversized
//! or duplicate headers, truncated or over-declared `Content-Length`,
//! bodies that are not UTF-8 or not JSON. The contract under test: a
//! hardened server answers every one with a 4xx and a closed connection,
//! never a panic, an unbounded buffer, or a hung handler.
//!
//! Generation is seeded and deterministic ([`corpus`] with the same seed
//! yields byte-identical payloads), so a fuzz failure reproduces from the
//! seed printed in the test name alone.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One hostile payload plus the contract it exercises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostilePayload {
    /// Raw bytes to write to the socket, exactly as generated.
    pub bytes: Vec<u8>,
    /// The malformation family (for failure messages and coverage
    /// assertions).
    pub family: &'static str,
    /// Whether the server can only detect the malformation by waiting
    /// out a read (truncated bodies: the declared `Content-Length` never
    /// arrives). Tests shorten the server's read timeout for these.
    pub needs_patience: bool,
}

/// The malformation families [`corpus`] draws from.
pub const HOSTILE_FAMILIES: &[&str] = &[
    "garbled-request-line",
    "bad-version",
    "oversized-request-line",
    "oversized-header",
    "too-many-headers",
    "duplicate-conflicting-length",
    "junk-content-length",
    "missing-length-post",
    "truncated-body",
    "oversized-body",
    "bad-utf8-body",
    "bad-json-body",
    "wrong-shape-json",
    "obsolete-fold",
    "no-colon-header",
    "transfer-encoding",
];

fn junk_bytes(rng: &mut SmallRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen_range(0u32..=255) as u8).collect()
}

fn framed(body: &[u8], declared: usize) -> Vec<u8> {
    let mut out =
        format!("POST /predict HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n").into_bytes();
    out.extend_from_slice(body);
    out
}

/// Generates one payload of the given family.
pub fn payload(family: &'static str, rng: &mut SmallRng) -> HostilePayload {
    let mut needs_patience = false;
    let bytes = match family {
        "garbled-request-line" => {
            // Junk that is printable enough to form a line but never a
            // valid `method target version` triple.
            let len = rng.gen_range(1usize..200);
            let mut line = junk_bytes(rng, len);
            for b in &mut line {
                if *b == b'\r' || *b == b'\n' {
                    *b = b'#';
                }
            }
            // Spaces would let junk tokenize into three fields and reach
            // the version check; pepper some in half the time anyway —
            // both paths must 4xx.
            if rng.gen_bool(0.5) {
                for b in line.iter_mut().take(4) {
                    *b = b' ';
                }
            }
            line.extend_from_slice(b"\r\n\r\n");
            line
        }
        "bad-version" => {
            let version =
                ["HTTP/9.9", "HTTP/2.0", "HTCPCP/1.0", "banana"][rng.gen_range(0usize..4)];
            format!("GET /healthz {version}\r\n\r\n").into_bytes()
        }
        "oversized-request-line" => {
            let target = "a".repeat(rng.gen_range(9_000usize..12_000));
            format!("GET /{target} HTTP/1.1\r\n\r\n").into_bytes()
        }
        "oversized-header" => {
            let value = "v".repeat(rng.gen_range(9_000usize..12_000));
            format!("GET / HTTP/1.1\r\nx-junk: {value}\r\n\r\n").into_bytes()
        }
        "too-many-headers" => {
            let mut req = b"GET / HTTP/1.1\r\n".to_vec();
            for i in 0..rng.gen_range(65usize..200) {
                req.extend_from_slice(format!("x-h{i}: {i}\r\n").as_bytes());
            }
            req.extend_from_slice(b"\r\n");
            req
        }
        "duplicate-conflicting-length" => {
            let a = rng.gen_range(1usize..100);
            let b = a + rng.gen_range(1usize..100);
            format!("POST /predict HTTP/1.1\r\ncontent-length: {a}\r\ncontent-length: {b}\r\n\r\n")
                .into_bytes()
        }
        "junk-content-length" => {
            let bad = ["-5", "abc", "1e3", "0x10", ""][rng.gen_range(0usize..5)];
            format!("POST /predict HTTP/1.1\r\ncontent-length: {bad}\r\n\r\nxx").into_bytes()
        }
        "missing-length-post" => b"POST /predict HTTP/1.1\r\n\r\n".to_vec(),
        "truncated-body" => {
            // Declares more than it sends: only a read timeout can prove
            // the rest is never coming.
            needs_patience = true;
            let sent = rng.gen_range(0usize..32);
            let declared = sent + rng.gen_range(1usize..512);
            let body = junk_bytes(rng, sent);
            framed(&body, declared)
        }
        "oversized-body" => {
            // Declared past max_body: rejected on the declaration alone,
            // no body bytes needed.
            framed(b"", 64 * 1024 * 1024)
        }
        "bad-utf8-body" => {
            let len = rng.gen_range(1usize..64);
            let mut body = junk_bytes(rng, len);
            // Guarantee invalid UTF-8 regardless of the junk draw.
            body.insert(0, 0xFF);
            body.insert(1, 0xFE);
            let declared = body.len();
            framed(&body, declared)
        }
        "bad-json-body" => {
            let body: &[u8] = [
                &b"{\"records\": ["[..],
                &b"not json at all"[..],
                &b"{\"records\":}"[..],
                &b"[1,2,"[..],
            ][rng.gen_range(0usize..4)];
            framed(body, body.len())
        }
        "wrong-shape-json" => {
            let body: &[u8] = [
                &b"{\"records\": 42}"[..],
                &b"{\"wrong\": []}"[..],
                &b"[]"[..],
                &b"{\"records\": [42]}"[..],
                &b"{\"records\": []}"[..],
            ][rng.gen_range(0usize..5)];
            framed(body, body.len())
        }
        "obsolete-fold" => b"GET / HTTP/1.1\r\nx-a: 1\r\n folded continuation\r\n\r\n".to_vec(),
        "no-colon-header" => b"GET / HTTP/1.1\r\nthis-is-not-a-header\r\n\r\n".to_vec(),
        "transfer-encoding" => {
            b"POST /predict HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n".to_vec()
        }
        other => unreachable!("unknown hostile family {other}"),
    };
    HostilePayload { bytes, family, needs_patience }
}

/// A deterministic corpus of `n` payloads cycling through every family
/// (so even a small corpus covers all of them), with per-payload
/// randomization drawn from `seed`.
pub fn corpus(seed: u64, n: usize) -> Vec<HostilePayload> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|i| payload(HOSTILE_FAMILIES[i % HOSTILE_FAMILIES.len()], &mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_covers_every_family() {
        let a = corpus(42, 64);
        let b = corpus(42, 64);
        assert_eq!(a, b, "same seed must reproduce byte-identical payloads");
        let c = corpus(43, 64);
        assert_ne!(a, c, "different seeds should differ somewhere");
        for family in HOSTILE_FAMILIES {
            assert!(
                a.iter().any(|p| p.family == *family),
                "family {family} missing from a {}-payload corpus",
                a.len()
            );
        }
    }

    #[test]
    fn payloads_are_nonempty_and_patience_is_flagged_only_for_truncation() {
        for p in corpus(7, 96) {
            assert!(!p.bytes.is_empty(), "{} generated an empty payload", p.family);
            assert_eq!(
                p.needs_patience,
                p.family == "truncated-body",
                "{} patience flag",
                p.family
            );
        }
    }

    #[test]
    fn bad_utf8_bodies_actually_are() {
        for p in corpus(11, 96).into_iter().filter(|p| p.family == "bad-utf8-body") {
            let body_start = p
                .bytes
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .map(|i| i + 4)
                .expect("framed payload has a header/body split");
            assert!(std::str::from_utf8(&p.bytes[body_start..]).is_err());
        }
    }
}

//! # overton-nlp
//!
//! The synthetic production workload: a tokenizer, vocabularies, a
//! knowledge base with deliberately ambiguous aliases, a template-based
//! factoid query generator with gold labels for all four schema tasks, a
//! weak-source simulator with controlled accuracy/coverage, a
//! pretraining corpus generator, and a seeded hostile-wire generator
//! ([`hostile_corpus`]) for fuzzing the socket tier.
//!
//! This crate substitutes for the paper's proprietary query logs: the
//! evaluation only depends on task *shapes* (singleton / sequence / set),
//! supervision *quality knobs* and slice structure, all of which are
//! controllable here.

#![warn(missing_docs)]

mod corpus;
mod hostile;
mod kb;
mod queries;
mod tokenizer;
mod traffic;
mod vocab;
mod workload;

pub use corpus::pretraining_corpus;
pub use hostile::{
    corpus as hostile_corpus, payload as hostile_payload, HostilePayload, HOSTILE_FAMILIES,
};
pub use kb::{Entity, KnowledgeBase, ENTITY_TYPES};
pub use queries::{
    required_types, template_catalog, Candidate, GeneratedQuery, QueryGenerator, INTENTS, POS_TAGS,
    SLICE_COMPLEX_DISAMBIGUATION, SLICE_NUTRITION, VAGUE_INTENTS, VAGUE_TEMPLATE_OFFSET,
};
pub use tokenizer::{detokenize, tokenize};
pub use traffic::{DriftConfig, DriftingTrafficStream, TrafficConfig, TrafficEvent, TrafficStream};
pub use vocab::{Vocab, MASK, PAD, UNK};
pub use workload::{
    generate_workload, generate_workload_sealed, generate_workload_with_kb, query_record,
    workload_schema, write_two_file_workload, SourceSpec, WorkloadConfig,
};

//! A small knowledge base of entities backing the synthetic factoid
//! workload (the stand-in for the paper's production knowledge graph).
//!
//! Ambiguous aliases ("washington", "paris", "apple", ...) map to several
//! entities with an explicit *sense priority*; queries whose correct reading
//! is a non-default sense form the "complex disambiguation" slice the paper
//! highlights (§2.2: a production system improved such a slice by >50 F1).

use std::collections::BTreeMap;

/// Entity type labels used by the `EntityType` bitvector task.
pub const ENTITY_TYPES: [&str; 6] = ["person", "country", "city", "state", "food", "organization"];

/// One knowledge-base entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// Stable external id (e.g. `george_washington`).
    pub id: String,
    /// Types from [`ENTITY_TYPES`].
    pub types: Vec<&'static str>,
    /// Surface forms (lowercase, space-separated tokens).
    pub aliases: Vec<String>,
}

impl Entity {
    /// True if the entity carries the given type.
    pub fn has_type(&self, t: &str) -> bool {
        self.types.contains(&t)
    }
}

/// The knowledge base: entities plus an alias index with sense priorities.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    entities: Vec<Entity>,
    /// alias -> `(rank, entity index)`, kept sorted by rank (default sense
    /// first).
    by_alias: BTreeMap<String, Vec<(u8, usize)>>,
}

impl KnowledgeBase {
    /// Creates an empty knowledge base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an entity with `(alias, rank)` surface forms — lower rank
    /// means more-default sense for that alias. Returns the entity index.
    ///
    /// # Panics
    /// Panics on an unknown entity type.
    pub fn add(&mut self, id: &str, types: &[&'static str], aliases: &[(&str, u8)]) -> usize {
        for t in types {
            assert!(ENTITY_TYPES.contains(t), "unknown entity type '{t}'");
        }
        let idx = self.entities.len();
        self.entities.push(Entity {
            id: id.to_string(),
            types: types.to_vec(),
            aliases: aliases.iter().map(|(a, _)| a.to_string()).collect(),
        });
        for (alias, rank) in aliases {
            let senses = self.by_alias.entry(alias.to_string()).or_default();
            let pos = senses.iter().position(|(r, _)| *r > *rank).unwrap_or(senses.len());
            senses.insert(pos, (*rank, idx));
        }
        idx
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True when the knowledge base has no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Entity by index.
    pub fn entity(&self, idx: usize) -> &Entity {
        &self.entities[idx]
    }

    /// All entities.
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// Entity indices for an alias, default sense first.
    pub fn senses(&self, alias: &str) -> Vec<usize> {
        self.by_alias
            .get(alias)
            .map(|v| v.iter().map(|(_, idx)| *idx).collect())
            .unwrap_or_default()
    }

    /// Aliases with more than one sense, sorted.
    pub fn ambiguous_aliases(&self) -> Vec<&str> {
        self.by_alias
            .iter()
            .filter(|(_, senses)| senses.len() > 1)
            .map(|(alias, _)| alias.as_str())
            .collect()
    }

    /// Entity indices having a given type.
    pub fn with_type(&self, t: &str) -> Vec<usize> {
        (0..self.entities.len()).filter(|&i| self.entities[i].has_type(t)).collect()
    }

    /// The standard workload knowledge base: ~50 entities across people,
    /// countries, cities, states, foods and organizations, with six
    /// deliberately ambiguous aliases.
    pub fn standard() -> Self {
        let mut kb = Self::new();
        // People. "washington", "paris", "lincoln" participate in
        // ambiguities; ranks define the default reading of each alias.
        kb.add("george_washington", &["person"], &[("george washington", 0), ("washington", 0)]);
        kb.add("abraham_lincoln", &["person"], &[("abraham lincoln", 0), ("lincoln", 0)]);
        kb.add("donald_trump", &["person"], &[("donald trump", 0), ("trump", 0)]);
        kb.add("barack_obama", &["person"], &[("barack obama", 0), ("obama", 0)]);
        kb.add("emmanuel_macron", &["person"], &[("emmanuel macron", 0), ("macron", 0)]);
        kb.add("lebron_james", &["person"], &[("lebron james", 0), ("lebron", 0)]);
        kb.add("lionel_messi", &["person"], &[("lionel messi", 0), ("messi", 0)]);
        kb.add("serena_williams", &["person"], &[("serena williams", 0), ("serena", 0)]);
        kb.add("marie_curie", &["person"], &[("marie curie", 0), ("curie", 0)]);
        kb.add("albert_einstein", &["person"], &[("albert einstein", 0), ("einstein", 0)]);
        kb.add("paris_hilton", &["person"], &[("paris hilton", 0), ("paris", 1)]);
        // Countries.
        kb.add("united_states", &["country"], &[("united states", 0), ("america", 0), ("usa", 0)]);
        kb.add("france", &["country"], &[("france", 0)]);
        kb.add("germany", &["country"], &[("germany", 0)]);
        kb.add("japan", &["country"], &[("japan", 0)]);
        kb.add("brazil", &["country"], &[("brazil", 0)]);
        kb.add("india", &["country"], &[("india", 0)]);
        kb.add("egypt", &["country"], &[("egypt", 0)]);
        kb.add("canada", &["country"], &[("canada", 0)]);
        kb.add("australia", &["country"], &[("australia", 0)]);
        kb.add("mexico", &["country"], &[("mexico", 0)]);
        kb.add("georgia_country", &["country"], &[("georgia", 0)]);
        // Cities.
        kb.add("washington_dc", &["city"], &[("washington dc", 0), ("washington", 1)]);
        kb.add("paris_city", &["city"], &[("paris", 0)]);
        kb.add("berlin", &["city"], &[("berlin", 0)]);
        kb.add("tokyo", &["city"], &[("tokyo", 0)]);
        kb.add("brasilia", &["city"], &[("brasilia", 0)]);
        kb.add("new_delhi", &["city"], &[("new delhi", 0), ("delhi", 0)]);
        kb.add("cairo", &["city"], &[("cairo", 0)]);
        kb.add("ottawa", &["city"], &[("ottawa", 0)]);
        kb.add("canberra", &["city"], &[("canberra", 0)]);
        kb.add("mexico_city", &["city"], &[("mexico city", 0), ("mexico", 1)]);
        kb.add("olympia", &["city"], &[("olympia", 0)]);
        kb.add("atlanta", &["city"], &[("atlanta", 0)]);
        kb.add("austin", &["city"], &[("austin", 0)]);
        kb.add("sacramento", &["city"], &[("sacramento", 0)]);
        kb.add("lincoln_city", &["city"], &[("lincoln city", 0), ("lincoln", 1)]);
        kb.add("tbilisi", &["city"], &[("tbilisi", 0)]);
        // States.
        kb.add("washington_state", &["state"], &[("washington state", 0), ("washington", 2)]);
        kb.add("texas", &["state"], &[("texas", 0)]);
        kb.add("california", &["state"], &[("california", 0)]);
        kb.add("georgia_state", &["state"], &[("georgia", 1)]);
        // Foods.
        kb.add("apple_food", &["food"], &[("apple", 1)]);
        kb.add("banana", &["food"], &[("banana", 0)]);
        kb.add("pizza", &["food"], &[("pizza", 0)]);
        kb.add("rice", &["food"], &[("rice", 0)]);
        kb.add("cheese", &["food"], &[("cheese", 0)]);
        kb.add("avocado", &["food"], &[("avocado", 0)]);
        // Organizations.
        kb.add("apple_inc", &["organization"], &[("apple", 0)]);
        kb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_kb_is_populated() {
        let kb = KnowledgeBase::standard();
        assert!(kb.len() >= 45, "{} entities", kb.len());
        assert!(!kb.with_type("person").is_empty());
        assert!(!kb.with_type("food").is_empty());
    }

    #[test]
    fn washington_sense_priority() {
        let kb = KnowledgeBase::standard();
        let senses = kb.senses("washington");
        assert_eq!(senses.len(), 3);
        assert_eq!(kb.entity(senses[0]).id, "george_washington");
        assert_eq!(kb.entity(senses[1]).id, "washington_dc");
        assert_eq!(kb.entity(senses[2]).id, "washington_state");
    }

    #[test]
    fn apple_defaults_to_organization() {
        let kb = KnowledgeBase::standard();
        let senses = kb.senses("apple");
        assert_eq!(kb.entity(senses[0]).id, "apple_inc");
        assert_eq!(kb.entity(senses[1]).id, "apple_food");
    }

    #[test]
    fn ambiguous_aliases_found() {
        let kb = KnowledgeBase::standard();
        let amb = kb.ambiguous_aliases();
        for a in ["washington", "paris", "georgia", "lincoln", "mexico", "apple"] {
            assert!(amb.contains(&a), "missing ambiguity '{a}'");
        }
    }

    #[test]
    fn unknown_alias_has_no_senses() {
        let kb = KnowledgeBase::standard();
        assert!(kb.senses("narnia").is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown entity type")]
    fn bad_type_rejected() {
        let mut kb = KnowledgeBase::new();
        kb.add("x", &["alien"], &[("x", 0)]);
    }

    #[test]
    fn types_and_lookup() {
        let kb = KnowledgeBase::standard();
        let idx = kb.senses("tokyo")[0];
        assert!(kb.entity(idx).has_type("city"));
        assert!(!kb.entity(idx).has_type("person"));
    }
}

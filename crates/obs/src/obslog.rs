//! The append-only metrics log: one JSONL line per closed window.
//!
//! Layout under a deployment's registry directory
//! (`<root>/registry/<deployment>/obslog/`):
//!
//! ```text
//! obslog/
//!   meta.json       slice space, window/debounce config, rules, baseline
//!   windows.jsonl   one WindowRecord per line, in close order
//! ```
//!
//! `meta.json` carries everything evaluation depends on, so
//! [`ObsLog::replay`] reconstructs the **entire** monitoring state — ring
//! of windows, drift values, alert log, debounce state — from the files
//! alone, with zero live state. Window records are integer counters and
//! the vendored JSON printer is shortest-round-trip for floats, so the
//! replayed state is bit-identical to the live one (asserted in
//! `tests/observability.rs`).

use crate::monitor::{Monitor, ObsConfig};
use crate::window::WindowRecord;
use crate::AlertRule;
use overton_serving::TrafficBaseline;
use overton_store::StoreError;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

/// The obslog's self-describing header, persisted as `meta.json`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ObsLogMeta {
    /// Slice space the windows report over (indicator order).
    pub slice_names: Vec<String>,
    /// Requests per tumbling window.
    pub window_len: u64,
    /// Ring capacity of the live monitor.
    pub history: usize,
    /// Debounce re-arm length.
    pub rearm_windows: u32,
    /// The alert rules in force.
    pub rules: Vec<AlertRule>,
    /// The training-time baseline drift was measured against.
    pub baseline: Option<TrafficBaseline>,
}

/// An open, appendable obslog.
#[derive(Debug)]
pub struct ObsLog {
    dir: PathBuf,
    file: std::fs::File,
}

impl ObsLog {
    /// Creates (or truncates) the obslog at `dir`, writing `meta.json`.
    pub fn create(dir: &Path, meta: &ObsLogMeta) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        let text = serde_json::to_string_pretty(meta)?;
        std::fs::write(dir.join("meta.json"), text)?;
        let file = std::fs::File::create(dir.join("windows.jsonl"))?;
        Ok(Self { dir: dir.to_path_buf(), file })
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one closed window as a JSONL line (flushed per window —
    /// windows are coarse, so durability wins over write batching).
    pub fn append(&mut self, window: &WindowRecord) -> std::io::Result<()> {
        let line =
            serde_json::to_string(window).map_err(|e| std::io::Error::other(e.to_string()))?;
        writeln!(self.file, "{line}")?;
        self.file.flush()
    }

    /// Reads a log back: the meta header plus every window, in order.
    pub fn read(dir: &Path) -> Result<(ObsLogMeta, Vec<WindowRecord>), StoreError> {
        let meta_path = dir.join("meta.json");
        let text = std::fs::read_to_string(&meta_path)?;
        let meta: ObsLogMeta = serde_json::from_str(&text)?;
        let file = std::fs::File::open(dir.join("windows.jsonl"))?;
        let mut windows = Vec::new();
        for (i, line) in std::io::BufReader::new(file).lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let window: WindowRecord = serde_json::from_str(&line).map_err(|e| {
                StoreError::Corrupt(format!("{}: line {}: {e}", dir.display(), i + 1))
            })?;
            windows.push(window);
        }
        Ok((meta, windows))
    }

    /// Replays a log into a fresh [`Monitor`]: every logged window runs
    /// through the same ring + alert evaluation the live monitor used, so
    /// the returned monitor's windowed state, alert log and debounce
    /// state equal the live monitor's at the moment its last window
    /// closed.
    ///
    /// Skipped window indexes in `windows.jsonl` — the durable footprint
    /// of appends that failed at write time — are surfaced on the
    /// replayed monitor as [`Monitor::log_errors`], so a historical write
    /// failure is visible in `overton monitor`, not silently absorbed.
    pub fn replay(dir: &Path) -> Result<Monitor, StoreError> {
        let (meta, windows) = Self::read(dir)?;
        let config = ObsConfig {
            window_len: meta.window_len,
            history: meta.history,
            rearm_windows: meta.rearm_windows,
            channel_capacity: 1, // no live channel on a replayed monitor
            rules: meta.rules,
        };
        let mut monitor = Monitor::new(meta.slice_names, meta.baseline, config);
        let mut expected: Option<u64> = None;
        let mut missing = 0u64;
        let mut last_gap = None;
        for window in windows {
            if let Some(expected) = expected {
                if window.index > expected {
                    missing += window.index - expected;
                    last_gap = Some((expected, window.index));
                }
            }
            expected = Some(window.index + 1);
            monitor.ingest_closed(window);
        }
        if let Some((from, until)) = last_gap {
            monitor.note_log_failure(
                missing,
                format!(
                    "windows.jsonl skips {missing} window(s) (latest gap: window {from} missing \
                     before window {until}) — appends failed when the log was written"
                ),
            );
        }
        Ok(monitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::{Severity, Signal};
    use overton_serving::{confidence_bin, ServeSample};

    fn sample(confidence: f32, slice_mask: u64) -> ServeSample {
        ServeSample {
            ok: true,
            confidence_bin: confidence_bin(confidence),
            confidence_millionths: (f64::from(confidence) * 1e6) as u64,
            latency_micros: 80,
            slice_mask,
            gold_accuracy_millionths: Some(500_000),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("overton-obslog-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn log_roundtrips_and_replay_matches_live() {
        let dir = temp_dir("roundtrip");
        let rules = vec![AlertRule {
            slice: None,
            signal: Signal::GoldAccuracy,
            threshold: 0.9,
            min_window_count: 1,
            severity: Severity::Warning,
        }];
        let config = ObsConfig { window_len: 8, history: 3, rules, ..Default::default() };
        let meta = ObsLogMeta {
            slice_names: vec!["hard".into()],
            window_len: config.window_len,
            history: config.history,
            rearm_windows: config.rearm_windows,
            rules: config.rules.clone(),
            baseline: None,
        };
        let mut live = Monitor::new(meta.slice_names.clone(), None, config);
        let mut log = ObsLog::create(&dir, &meta).unwrap();
        // Mirror the live path by hand: ingest, log every closed window.
        // (40 samples = 5 windows; ring keeps 3, the log keeps all 5.)
        for i in 0..40u64 {
            let before = live.stats().closed();
            live.ingest(&sample(0.3 + (i % 5) as f32 * 0.1, i % 2));
            if live.stats().closed() > before {
                log.append(live.stats().latest().unwrap()).unwrap();
            }
        }
        assert_eq!(live.stats().closed(), 5);
        assert_eq!(live.stats().evicted(), 2);
        let replayed = ObsLog::replay(&dir).unwrap();
        assert_eq!(replayed.stats(), live.stats());
        assert_eq!(replayed.alerts(), live.alerts());
        assert_eq!(replayed.alert_engine(), live.alert_engine());
        // The raw read sees all five windows even though the ring kept 3.
        let (meta_back, windows) = ObsLog::read(&dir).unwrap();
        assert_eq!(windows.len(), 5);
        assert_eq!(meta_back.slice_names, vec!["hard".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pre_statistics_obslog_still_replays_bit_identically() {
        use overton_serving::CONFIDENCE_BINS;
        let dir = temp_dir("legacy");
        let mut hist = vec![0u64; CONFIDENCE_BINS];
        hist[confidence_bin(0.9)] = 100;
        // A baseline exactly as builds persisted it before sample sizes
        // and tag counts were recorded: both fields at their defaults,
        // and (below) absent from the JSON entirely.
        let baseline = TrafficBaseline {
            slice_shares: vec![("hard".into(), 0.5)],
            mean_confidence: 0.9,
            tag_shares: vec![("hard".into(), 0.5)],
            confidence_hist: hist.clone(),
            slice_confidence_hists: vec![hist],
            sample_size: 0,
            tag_counts: vec![],
        };
        let rules = vec![
            AlertRule {
                slice: None,
                signal: Signal::GoldAccuracy,
                threshold: 0.9,
                min_window_count: 1,
                severity: Severity::Warning,
            },
            AlertRule {
                slice: Some("hard".into()),
                signal: Signal::TrafficPsi,
                threshold: 0.05,
                min_window_count: 1,
                severity: Severity::Critical,
            },
        ];
        let config = ObsConfig { window_len: 8, history: 4, rules, ..Default::default() };
        let meta = ObsLogMeta {
            slice_names: vec!["hard".into()],
            window_len: config.window_len,
            history: config.history,
            rearm_windows: config.rearm_windows,
            rules: config.rules.clone(),
            baseline: Some(baseline.clone()),
        };
        let mut live = Monitor::new(meta.slice_names.clone(), Some(baseline), config);
        let mut log = ObsLog::create(&dir, &meta).unwrap();
        for i in 0..32u64 {
            let before = live.stats().closed();
            live.ingest(&sample(0.3 + (i % 5) as f32 * 0.1, i % 2));
            if live.stats().closed() > before {
                log.append(live.stats().latest().unwrap()).unwrap();
            }
        }
        assert_eq!(live.stats().closed(), 4);
        // Rewrite meta.json in the legacy schema: strip the keys the
        // statistics work added, leaving the file a pre-upgrade build
        // would have written.
        let stripped = serde_json::to_string(&meta)
            .unwrap()
            .replace(",\"sample_size\":0", "")
            .replace(",\"tag_counts\":[]", "");
        assert!(!stripped.contains("sample_size"), "{stripped}");
        std::fs::write(dir.join("meta.json"), stripped).unwrap();

        // The stripped header parses with the serde defaults...
        let (meta_back, windows) = ObsLog::read(&dir).unwrap();
        let base_back = meta_back.baseline.as_ref().unwrap();
        assert_eq!(base_back.sample_size, 0);
        assert!(base_back.tag_counts.is_empty());
        assert_eq!(windows.len(), 4);

        // ...and the legacy log replays to exactly the live state: the
        // defaulted fields change nothing about window evaluation.
        let replayed = ObsLog::replay(&dir).unwrap();
        assert_eq!(replayed.stats(), live.stats());
        assert_eq!(replayed.alerts(), live.alerts());
        assert_eq!(replayed.alert_engine(), live.alert_engine());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_window_line_is_a_named_error() {
        let dir = temp_dir("corrupt");
        let meta = ObsLogMeta {
            slice_names: vec![],
            window_len: 4,
            history: 2,
            rearm_windows: 1,
            rules: vec![],
            baseline: None,
        };
        let _ = ObsLog::create(&dir, &meta).unwrap();
        std::fs::write(dir.join("windows.jsonl"), "{not json\n").unwrap();
        let err = ObsLog::replay(&dir).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_log_is_an_io_error() {
        let dir = temp_dir("missing");
        assert!(matches!(ObsLog::replay(&dir), Err(StoreError::Io(_))));
    }
}

//! Prometheus exposition for the monitoring layer.
//!
//! The serving crate renders pool/trace/connection metrics for `GET
//! /metrics` ([`overton_serving::prom`]); this module renders the *obs*
//! side — windowed state, obslog health, and the alert ledger — in the
//! same text format, and packages it as the
//! [`MetricsExt`](overton_serving::MetricsExt) hook the socket tier
//! appends to its own exposition. The CLI wires the two together for
//! `overton serve --listen --obs`, so one scrape covers the whole stack:
//! request counters and histograms from serving, drift windows and
//! alerts from monitoring.

use crate::monitor::Monitor;
use overton_serving::{MetricsExt, PromWriter};
use std::sync::{Arc, Mutex};

/// Renders a monitor's windowed state and alert ledger as Prometheus
/// text exposition.
pub fn monitor_metrics(monitor: &Monitor) -> String {
    let mut w = PromWriter::new();
    let stats = monitor.stats();
    w.family("overton_obs_windows_closed_total", "counter", "Tumbling windows closed so far.");
    w.count("overton_obs_windows_closed_total", &[], stats.closed());
    w.family(
        "overton_obs_windows_evicted_total",
        "counter",
        "Closed windows evicted from the in-memory ring.",
    );
    w.count("overton_obs_windows_evicted_total", &[], stats.evicted());
    w.family("overton_obs_open_samples", "gauge", "Samples in the not-yet-closed window.");
    w.count("overton_obs_open_samples", &[], stats.open_count());
    w.family(
        "overton_obs_log_failures_total",
        "counter",
        "Obslog window appends that failed (the log has gaps).",
    );
    w.count("overton_obs_log_failures_total", &[], monitor.log_errors());
    w.family("overton_obs_alerts_total", "counter", "Alerts fired, by severity.");
    for severity in ["info", "warning", "critical"] {
        let n = monitor.alerts().iter().filter(|a| a.severity.to_string() == severity).count();
        w.count("overton_obs_alerts_total", &[("severity", severity)], n as u64);
    }
    w.family("overton_obs_active_alerts", "gauge", "Alert rules currently in breach.");
    w.count("overton_obs_active_alerts", &[], monitor.active_alerts().len() as u64);
    if let Some(window) = stats.latest() {
        w.family("overton_obs_window_index", "gauge", "Index of the latest closed window.");
        w.count("overton_obs_window_index", &[], window.index);
        w.family(
            "overton_obs_window_error_rate",
            "gauge",
            "Error rate over the latest closed window.",
        );
        w.sample("overton_obs_window_error_rate", &[], window.overall.error_rate());
        w.family(
            "overton_obs_window_mean_confidence",
            "gauge",
            "Mean confidence over the latest closed window.",
        );
        w.sample("overton_obs_window_mean_confidence", &[], window.overall.mean_confidence());
        if let Some(accuracy) = window.overall.gold_accuracy() {
            w.family(
                "overton_obs_window_gold_accuracy",
                "gauge",
                "Gold accuracy over the latest closed window's labeled traffic.",
            );
            w.sample("overton_obs_window_gold_accuracy", &[], accuracy);
        }
        w.family(
            "overton_obs_window_latency_seconds",
            "gauge",
            "Latency quantiles over the latest closed window.",
        );
        for q in [0.5, 0.95, 0.99] {
            let label = format!("{q}");
            w.sample(
                "overton_obs_window_latency_seconds",
                &[("quantile", &label)],
                window.latency_quantile(q).as_secs_f64(),
            );
        }
        w.family(
            "overton_obs_window_traffic_share",
            "gauge",
            "Per-slice traffic share over the latest closed window.",
        );
        for (i, name) in stats.slice_names().iter().enumerate() {
            w.sample("overton_obs_window_traffic_share", &[("slice", name)], window.slice_share(i));
        }
        w.family(
            "overton_obs_window_slice_mean_confidence",
            "gauge",
            "Per-slice mean confidence over the latest closed window.",
        );
        for (i, name) in stats.slice_names().iter().enumerate() {
            if let Some(slice) = window.slices.get(i) {
                w.sample(
                    "overton_obs_window_slice_mean_confidence",
                    &[("slice", name)],
                    slice.mean_confidence(),
                );
            }
        }
    }
    w.finish()
}

/// Packages a shared monitor as the socket tier's `/metrics` extension
/// hook ([`overton_serving::net::NetConfig::metrics_ext`]): each scrape
/// appends the monitor's exposition under its lock. The serving side
/// never blocks on this — the hook runs on the connection handler
/// answering the scrape, not on a worker.
pub fn metrics_ext(monitor: Arc<Mutex<Monitor>>) -> MetricsExt {
    Arc::new(move |out: &mut String| {
        if let Ok(monitor) = monitor.lock() {
            out.push_str(&monitor_metrics(&monitor));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::ObsConfig;
    use overton_serving::{confidence_bin, validate_exposition, ServeSample};

    fn sample(confidence: f32, ok: bool) -> ServeSample {
        ServeSample {
            ok,
            confidence_bin: confidence_bin(confidence),
            confidence_millionths: (f64::from(confidence) * 1e6) as u64,
            latency_micros: 120,
            slice_mask: 1,
            gold_accuracy_millionths: Some(900_000),
        }
    }

    #[test]
    fn monitor_exposition_is_valid_and_covers_windows() {
        let config = ObsConfig { window_len: 4, history: 4, ..Default::default() };
        let mut monitor = Monitor::new(vec!["hard".into()], None, config);
        for _ in 0..4 {
            monitor.ingest(&sample(0.8, true));
        }
        monitor.ingest(&sample(0.2, false));
        let text = monitor_metrics(&monitor);
        validate_exposition(&text).unwrap();
        for needle in [
            "overton_obs_windows_closed_total 1",
            "overton_obs_open_samples 1",
            "overton_obs_log_failures_total 0",
            "overton_obs_window_traffic_share{slice=\"hard\"} 1",
            "overton_obs_window_gold_accuracy 0.9",
            "overton_obs_window_latency_seconds{quantile=\"0.99\"}",
            "overton_obs_alerts_total{severity=\"critical\"}",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn metrics_ext_appends_under_the_shared_lock() {
        let config = ObsConfig { window_len: 2, history: 2, ..Default::default() };
        let monitor = Arc::new(Mutex::new(Monitor::new(vec![], None, config)));
        let ext = metrics_ext(Arc::clone(&monitor));
        let mut out = String::from("overton_requests_served_total 0\n");
        ext(&mut out);
        validate_exposition(&out).unwrap();
        assert!(out.contains("overton_obs_windows_closed_total 0"), "{out}");
    }
}

//! Prometheus exposition for the monitoring layer.
//!
//! The serving crate renders pool/trace/connection metrics for `GET
//! /metrics` ([`overton_serving::prom`]); this module renders the *obs*
//! side — windowed state, obslog health, and the alert ledger — in the
//! same text format, and packages it as the
//! [`MetricsExt`](overton_serving::MetricsExt) hook the socket tier
//! appends to its own exposition. The CLI wires the two together for
//! `overton serve --listen --obs`, so one scrape covers the whole stack:
//! request counters and histograms from serving, drift windows and
//! alerts from monitoring.

use crate::monitor::Monitor;
use overton_serving::{MetricsExt, PromWriter};
use std::sync::{Arc, Mutex};

/// Renders a monitor's windowed state and alert ledger as Prometheus
/// text exposition.
pub fn monitor_metrics(monitor: &Monitor) -> String {
    let mut w = PromWriter::new();
    let stats = monitor.stats();
    w.family("overton_obs_windows_closed_total", "counter", "Tumbling windows closed so far.");
    w.count("overton_obs_windows_closed_total", &[], stats.closed());
    w.family(
        "overton_obs_windows_evicted_total",
        "counter",
        "Closed windows evicted from the in-memory ring.",
    );
    w.count("overton_obs_windows_evicted_total", &[], stats.evicted());
    w.family("overton_obs_open_samples", "gauge", "Samples in the not-yet-closed window.");
    w.count("overton_obs_open_samples", &[], stats.open_count());
    w.family(
        "overton_obs_log_failures_total",
        "counter",
        "Obslog window appends that failed (the log has gaps).",
    );
    w.count("overton_obs_log_failures_total", &[], monitor.log_errors());
    w.family("overton_obs_alerts_total", "counter", "Alerts fired, by severity.");
    for severity in ["info", "warning", "critical"] {
        let n = monitor.alerts().iter().filter(|a| a.severity.to_string() == severity).count();
        w.count("overton_obs_alerts_total", &[("severity", severity)], n as u64);
    }
    w.family("overton_obs_active_alerts", "gauge", "Alert rules currently in breach.");
    w.count("overton_obs_active_alerts", &[], monitor.active_alerts().len() as u64);
    if let Some(window) = stats.latest() {
        w.family("overton_obs_window_index", "gauge", "Index of the latest closed window.");
        w.count("overton_obs_window_index", &[], window.index);
        w.family(
            "overton_obs_window_error_rate",
            "gauge",
            "Error rate over the latest closed window.",
        );
        w.sample("overton_obs_window_error_rate", &[], window.overall.error_rate());
        w.family(
            "overton_obs_window_mean_confidence",
            "gauge",
            "Mean confidence over the latest closed window.",
        );
        w.sample("overton_obs_window_mean_confidence", &[], window.overall.mean_confidence());
        if let Some(accuracy) = window.overall.gold_accuracy() {
            w.family(
                "overton_obs_window_gold_accuracy",
                "gauge",
                "Gold accuracy over the latest closed window's labeled traffic.",
            );
            w.sample("overton_obs_window_gold_accuracy", &[], accuracy);
        }
        w.family(
            "overton_obs_window_latency_seconds",
            "gauge",
            "Latency quantiles over the latest closed window.",
        );
        for q in [0.5, 0.95, 0.99] {
            let label = format!("{q}");
            w.sample(
                "overton_obs_window_latency_seconds",
                &[("quantile", &label)],
                window.latency_quantile(q).as_secs_f64(),
            );
        }
        w.family(
            "overton_obs_window_traffic_share",
            "gauge",
            "Per-slice traffic share over the latest closed window.",
        );
        for (i, name) in stats.slice_names().iter().enumerate() {
            w.sample("overton_obs_window_traffic_share", &[("slice", name)], window.slice_share(i));
        }
        w.family(
            "overton_obs_window_slice_mean_confidence",
            "gauge",
            "Per-slice mean confidence over the latest closed window.",
        );
        for (i, name) in stats.slice_names().iter().enumerate() {
            if let Some(slice) = window.slices.get(i) {
                w.sample(
                    "overton_obs_window_slice_mean_confidence",
                    &[("slice", name)],
                    slice.mean_confidence(),
                );
            }
        }
        // Per-slice gold-accuracy confidence bounds over the latest
        // window: the dashboard-facing face of the statistics kernel. A
        // slice with no scored gold traffic this window is omitted — its
        // bounds would be the vacuous [0, 1].
        w.family(
            "overton_slice_accuracy_ci_lower",
            "gauge",
            "Lower 95% Clopper-Pearson bound on per-slice gold accuracy (latest window).",
        );
        w.family(
            "overton_slice_accuracy_ci_upper",
            "gauge",
            "Upper 95% Clopper-Pearson bound on per-slice gold accuracy (latest window).",
        );
        for (i, name) in stats.slice_names().iter().enumerate() {
            let Some(slice) = window.slices.get(i) else { continue };
            if slice.gold_scored == 0 {
                continue;
            }
            let successes = (slice.gold_correct_millionths as f64 / 1e6).round() as u64;
            let ci = overton_monitor::stats::clopper_pearson(
                successes,
                slice.gold_scored,
                overton_monitor::stats::DEFAULT_ALPHA,
            );
            w.sample("overton_slice_accuracy_ci_lower", &[("slice", name)], ci.lower);
            w.sample("overton_slice_accuracy_ci_upper", &[("slice", name)], ci.upper);
        }
    }
    w.finish()
}

/// Renders the test-set reuse budget as a one-gauge exposition block.
pub fn meter_metrics(ledger: &overton_monitor::stats::MeterLedger) -> String {
    let mut w = PromWriter::new();
    w.family(
        "overton_meter_budget_remaining",
        "gauge",
        "Test-set reuse budget remaining for this project (ease.ml/meter).",
    );
    w.count("overton_meter_budget_remaining", &[], ledger.remaining());
    w.finish()
}

/// Packages a shared monitor as the socket tier's `/metrics` extension
/// hook ([`overton_serving::net::NetConfig::metrics_ext`]): each scrape
/// appends the monitor's exposition under its lock. The serving side
/// never blocks on this — the hook runs on the connection handler
/// answering the scrape, not on a worker.
pub fn metrics_ext(monitor: Arc<Mutex<Monitor>>) -> MetricsExt {
    Arc::new(move |out: &mut String| {
        if let Ok(monitor) = monitor.lock() {
            out.push_str(&monitor_metrics(&monitor));
        }
    })
}

/// Like [`metrics_ext`], additionally re-reading the project's meter
/// ledger at every scrape so `overton_meter_budget_remaining` tracks
/// debits made by retrains running concurrently with the server. A
/// missing or unreadable ledger simply omits the gauge — scrapes must
/// never fail because a project has not evaluated yet.
pub fn metrics_ext_with_meter(
    monitor: Arc<Mutex<Monitor>>,
    meter_path: std::path::PathBuf,
) -> MetricsExt {
    Arc::new(move |out: &mut String| {
        if let Ok(monitor) = monitor.lock() {
            out.push_str(&monitor_metrics(&monitor));
        }
        if let Ok(ledger) = overton_monitor::stats::MeterLedger::load(&meter_path) {
            out.push_str(&meter_metrics(&ledger));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::ObsConfig;
    use overton_serving::{confidence_bin, validate_exposition, ServeSample};

    fn sample(confidence: f32, ok: bool) -> ServeSample {
        ServeSample {
            ok,
            confidence_bin: confidence_bin(confidence),
            confidence_millionths: (f64::from(confidence) * 1e6) as u64,
            latency_micros: 120,
            slice_mask: 1,
            gold_accuracy_millionths: Some(900_000),
        }
    }

    #[test]
    fn monitor_exposition_is_valid_and_covers_windows() {
        let config = ObsConfig { window_len: 4, history: 4, ..Default::default() };
        let mut monitor = Monitor::new(vec!["hard".into()], None, config);
        for _ in 0..4 {
            monitor.ingest(&sample(0.8, true));
        }
        monitor.ingest(&sample(0.2, false));
        let text = monitor_metrics(&monitor);
        validate_exposition(&text).unwrap();
        for needle in [
            "overton_obs_windows_closed_total 1",
            "overton_obs_open_samples 1",
            "overton_obs_log_failures_total 0",
            "overton_obs_window_traffic_share{slice=\"hard\"} 1",
            "overton_obs_window_gold_accuracy 0.9",
            "overton_obs_window_latency_seconds{quantile=\"0.99\"}",
            "overton_obs_alerts_total{severity=\"critical\"}",
            "overton_slice_accuracy_ci_lower{slice=\"hard\"}",
            "overton_slice_accuracy_ci_upper{slice=\"hard\"}",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn slices_without_gold_traffic_omit_ci_gauges() {
        let config = ObsConfig { window_len: 2, history: 2, ..Default::default() };
        let mut monitor = Monitor::new(vec!["hard".into()], None, config);
        for _ in 0..2 {
            let mut s = sample(0.8, true);
            s.slice_mask = 0;
            s.gold_accuracy_millionths = None;
            monitor.ingest(&s);
        }
        let text = monitor_metrics(&monitor);
        validate_exposition(&text).unwrap();
        assert!(!text.contains("overton_slice_accuracy_ci_lower{"), "{text}");
    }

    #[test]
    fn meter_gauge_renders_and_composes_with_the_monitor_ext() {
        use overton_monitor::stats::{MeterLedger, DEFAULT_METER_BUDGET};
        let dir = std::env::temp_dir().join(format!("overton-meter-ext-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut ledger = MeterLedger::open_or_create(&dir).unwrap();
        ledger.debit("run-0001", 1).unwrap();
        let path = ledger.path().unwrap().to_path_buf();

        let text = meter_metrics(&ledger);
        validate_exposition(&text).unwrap();
        let expect = format!("overton_meter_budget_remaining {}", DEFAULT_METER_BUDGET - 1);
        assert!(text.contains(&expect), "{text}");

        // Composed hook: monitor families + the live ledger, one scrape.
        let config = ObsConfig { window_len: 2, history: 2, ..Default::default() };
        let monitor = Arc::new(Mutex::new(Monitor::new(vec![], None, config)));
        let ext = metrics_ext_with_meter(Arc::clone(&monitor), path.clone());
        let mut out = String::new();
        ext(&mut out);
        validate_exposition(&out).unwrap();
        assert!(out.contains("overton_obs_windows_closed_total 0"), "{out}");
        assert!(out.contains(&expect), "{out}");

        // A scrape after another debit sees the new balance; a scrape
        // with no ledger omits the gauge but still validates.
        ledger.debit("run-0002", 1).unwrap();
        let mut out = String::new();
        ext(&mut out);
        assert!(
            out.contains(&format!("overton_meter_budget_remaining {}", DEFAULT_METER_BUDGET - 2)),
            "{out}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
        let mut out = String::new();
        ext(&mut out);
        validate_exposition(&out).unwrap();
        assert!(!out.contains("overton_meter_budget_remaining"), "{out}");
    }

    #[test]
    fn metrics_ext_appends_under_the_shared_lock() {
        let config = ObsConfig { window_len: 2, history: 2, ..Default::default() };
        let monitor = Arc::new(Mutex::new(Monitor::new(vec![], None, config)));
        let ext = metrics_ext(Arc::clone(&monitor));
        let mut out = String::from("overton_requests_served_total 0\n");
        ext(&mut out);
        validate_exposition(&out).unwrap();
        assert!(out.contains("overton_obs_windows_closed_total 0"), "{out}");
    }
}

//! The live monitor: the receiving end of the serving observer hook.
//!
//! A [`Monitor`] owns the windowed statistics, the alert engine and
//! (optionally) the metrics log for one deployment. Attach it to a
//! running [`WorkerPool`] and every served request flows in as a
//! [`ServeSample`] over a bounded channel; [`Monitor::pump`] drains the
//! channel on the *monitoring* thread, so the serving hot path never does
//! more than an atomic load and a `try_send`.

use crate::alert::{ActiveAlert, Alert, AlertEngine, AlertRule, Severity, Signal};
use crate::obslog::{ObsLog, ObsLogMeta};
use crate::window::{WindowRecord, WindowedStats};
use overton_serving::{ServeSample, TrafficBaseline, WorkerPool};
use overton_store::StoreError;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::time::Duration;

/// Configuration of a deployment's continuous monitoring.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ObsConfig {
    /// Requests per tumbling window.
    pub window_len: u64,
    /// Closed windows retained in memory (the obslog keeps them all).
    pub history: usize,
    /// Clean windows after which a fired alert rule re-arms.
    pub rearm_windows: u32,
    /// Bound of the sample channel between the serving workers and the
    /// monitor; when the monitor falls behind, samples are dropped (and
    /// counted by the pool's telemetry), never queued unboundedly.
    pub channel_capacity: usize,
    /// The alert rules evaluated at every window close.
    pub rules: Vec<AlertRule>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            window_len: 256,
            history: 64,
            rearm_windows: 2,
            channel_capacity: 8192,
            rules: Vec::new(),
        }
    }
}

/// A sensible default rule set for a slice space: per-slice traffic-mix
/// PSI (critical), statistically gated traffic-share significance
/// (critical, alpha 0.01) and confidence-distribution KS (warning), plus
/// deployment-wide error-rate and confidence-KS guards. The PSI
/// threshold sits at the top of the conventional "drifting" band (0.2);
/// the KS level clears sampling noise at the default window size; the
/// significance rule fires only when a share excursion is too large to
/// be sampling noise given the window and baseline sample sizes (it
/// disables itself on baselines that predate integer tag counts).
pub fn default_rules(slice_names: &[String]) -> Vec<AlertRule> {
    let mut rules = vec![
        AlertRule {
            slice: None,
            signal: Signal::ErrorRate,
            threshold: 0.2,
            min_window_count: 32,
            severity: Severity::Critical,
        },
        AlertRule {
            slice: None,
            signal: Signal::ConfidenceKs,
            threshold: 0.35,
            min_window_count: 64,
            severity: Severity::Warning,
        },
    ];
    for name in slice_names {
        rules.push(AlertRule {
            slice: Some(name.clone()),
            signal: Signal::TrafficPsi,
            threshold: 0.2,
            min_window_count: 64,
            severity: Severity::Critical,
        });
        rules.push(AlertRule {
            slice: Some(name.clone()),
            signal: Signal::ConfidenceKs,
            threshold: 0.45,
            min_window_count: 32,
            severity: Severity::Warning,
        });
        rules.push(AlertRule {
            slice: Some(name.clone()),
            signal: Signal::Significance,
            threshold: 0.01,
            min_window_count: 64,
            severity: Severity::Critical,
        });
    }
    rules
}

/// Continuous monitoring state for one deployment: windowed statistics,
/// alert engine, optional metrics log, and (when attached to a pool) the
/// receiving end of the observer channel.
#[derive(Debug)]
pub struct Monitor {
    config: ObsConfig,
    baseline: Option<TrafficBaseline>,
    stats: WindowedStats,
    engine: AlertEngine,
    log: Option<ObsLog>,
    rx: Option<Receiver<ServeSample>>,
    log_errors: u64,
    last_log_error: Option<String>,
}

impl Monitor {
    /// Creates a detached monitor (samples come via [`Monitor::ingest`];
    /// tests and replay use this form).
    pub fn new(
        slice_names: Vec<String>,
        baseline: Option<TrafficBaseline>,
        config: ObsConfig,
    ) -> Self {
        let stats = WindowedStats::new(slice_names, config.window_len, config.history);
        let engine = AlertEngine::new(config.rules.clone(), config.rearm_windows);
        Self {
            config,
            baseline,
            stats,
            engine,
            log: None,
            rx: None,
            log_errors: 0,
            last_log_error: None,
        }
    }

    /// Attaches a monitor to a running pool: the slice space and baseline
    /// come from the pool's telemetry, a bounded sample channel is hooked
    /// into the serving path, and — when `log_dir` is given — an obslog
    /// is created there (its meta records everything replay needs).
    /// Fails when the pool already has an observer.
    pub fn attach(
        pool: &WorkerPool,
        config: ObsConfig,
        log_dir: Option<&Path>,
    ) -> Result<Self, StoreError> {
        let slice_names = pool.telemetry().slice_names().to_vec();
        let baseline = pool.telemetry().baseline().cloned();
        let mut monitor = Self::new(slice_names, baseline, config);
        // Create the obslog *before* claiming the pool's (one-shot)
        // observer slot: an unwritable log directory leaves the pool
        // untouched and the whole attach retryable, instead of poisoning
        // the observer hook for the pool's lifetime.
        if let Some(dir) = log_dir {
            let meta = ObsLogMeta {
                slice_names: monitor.stats.slice_names().to_vec(),
                window_len: monitor.config.window_len,
                history: monitor.config.history,
                rearm_windows: monitor.config.rearm_windows,
                rules: monitor.config.rules.clone(),
                baseline: monitor.baseline.clone(),
            };
            monitor.log = Some(ObsLog::create(dir, &meta)?);
        }
        let (tx, rx) = sync_channel(monitor.config.channel_capacity.max(1));
        pool.telemetry().attach_observer(tx)?;
        monitor.rx = Some(rx);
        Ok(monitor)
    }

    /// The monitoring configuration.
    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    /// The training-time baseline drift is measured against, if any.
    pub fn baseline(&self) -> Option<&TrafficBaseline> {
        self.baseline.as_ref()
    }

    /// The windowed statistics (ring of closed windows + open window).
    pub fn stats(&self) -> &WindowedStats {
        &self.stats
    }

    /// Every alert emitted so far, in window order.
    pub fn alerts(&self) -> &[Alert] {
        self.engine.alerts()
    }

    /// Rules currently breaching (with how long they have been).
    pub fn active_alerts(&self) -> Vec<ActiveAlert> {
        self.engine.active()
    }

    /// The alert engine's full state (rules + debounce), for equality
    /// checks between live and replayed monitors.
    pub fn alert_engine(&self) -> &AlertEngine {
        &self.engine
    }

    /// Obslog write failures so far (monitoring keeps running; the log
    /// has a gap). The most recent message is in
    /// [`last_log_error`](Monitor::last_log_error).
    pub fn log_errors(&self) -> u64 {
        self.log_errors
    }

    /// The most recent obslog write failure, if any.
    pub fn last_log_error(&self) -> Option<&str> {
        self.last_log_error.as_deref()
    }

    /// Records obslog write failures detected after the fact —
    /// [`ObsLog::replay`](crate::ObsLog::replay) calls this when
    /// `windows.jsonl` skips window indexes, the durable footprint of an
    /// append that failed at write time.
    pub(crate) fn note_log_failure(&mut self, count: u64, message: String) {
        self.log_errors += count;
        self.last_log_error = Some(message);
    }

    /// Drains every sample currently queued on the observer channel into
    /// the windowed state; returns how many were absorbed. Call this from
    /// the monitoring loop — never from a serving worker.
    pub fn pump(&mut self) -> usize {
        let Some(rx) = &self.rx else { return 0 };
        let mut drained = Vec::new();
        while let Ok(sample) = rx.try_recv() {
            drained.push(sample);
        }
        for sample in &drained {
            self.ingest(sample);
        }
        drained.len()
    }

    /// Runs the monitoring loop on the calling thread: pump, sleep
    /// `interval`, repeat until `stop` is set, then drain once more so no
    /// sample queued before the stop is lost. Returns the total absorbed.
    /// This is the loop `overton serve` runs on its dedicated monitoring
    /// thread alongside the socket tier.
    pub fn pump_loop(&mut self, stop: &AtomicBool, interval: Duration) -> usize {
        let mut total = 0;
        while !stop.load(Ordering::SeqCst) {
            total += self.pump();
            std::thread::sleep(interval);
        }
        total + self.pump()
    }

    /// Absorbs one sample directly (the channel-free path).
    pub fn ingest(&mut self, sample: &ServeSample) {
        if let Some(closed) = self.stats.ingest(sample) {
            self.on_window_close(&closed);
        }
    }

    /// Replays one already-closed window (the obslog path): pushes it
    /// into the ring and evaluates alerts, exactly as the live close did.
    pub fn ingest_closed(&mut self, window: WindowRecord) {
        self.stats.push_closed(window);
        let closed = self.stats.latest().expect("just pushed").clone();
        self.evaluate_only(&closed);
    }

    fn on_window_close(&mut self, closed: &WindowRecord) {
        self.evaluate_only(closed);
        if let Some(log) = &mut self.log {
            if let Err(e) = log.append(closed) {
                self.log_errors += 1;
                self.last_log_error = Some(e.to_string());
            }
        }
    }

    fn evaluate_only(&mut self, closed: &WindowRecord) {
        let names: &[String] = self.stats.slice_names();
        // Split borrows: engine is a separate field from stats/baseline.
        let baseline = self.baseline.as_ref();
        self.engine.evaluate(names, baseline, closed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_serving::confidence_bin;

    fn sample(confidence: f32, slice_mask: u64) -> ServeSample {
        ServeSample {
            ok: true,
            confidence_bin: confidence_bin(confidence),
            confidence_millionths: (f64::from(confidence) * 1e6) as u64,
            latency_micros: 25,
            slice_mask,
            gold_accuracy_millionths: Some(1_000_000),
        }
    }

    #[test]
    fn default_rules_cover_every_slice_plus_overall() {
        let rules = default_rules(&["a".to_string(), "b".to_string()]);
        assert_eq!(rules.len(), 2 + 3 * 2);
        assert_eq!(rules.iter().filter(|r| r.slice.is_none()).count(), 2);
        for name in ["a", "b"] {
            assert!(rules
                .iter()
                .any(|r| r.slice.as_deref() == Some(name) && r.signal == Signal::TrafficPsi));
            assert!(rules
                .iter()
                .any(|r| r.slice.as_deref() == Some(name) && r.signal == Signal::ConfidenceKs));
            assert!(rules
                .iter()
                .any(|r| r.slice.as_deref() == Some(name) && r.signal == Signal::Significance));
        }
    }

    #[test]
    fn detached_monitor_windows_and_alerts() {
        let mut config = ObsConfig { window_len: 10, history: 8, ..Default::default() };
        config.rules = vec![AlertRule {
            slice: None,
            signal: Signal::GoldAccuracy,
            threshold: 2.0, // gold accuracy is always below 2: fires on window 0
            min_window_count: 1,
            severity: Severity::Critical,
        }];
        let mut monitor = Monitor::new(vec!["hard".into()], None, config);
        for _ in 0..25 {
            monitor.ingest(&sample(0.9, 1));
        }
        assert_eq!(monitor.stats().closed(), 2);
        assert_eq!(monitor.stats().open_count(), 5);
        assert_eq!(monitor.alerts().len(), 1, "debounced to the rising edge");
        assert_eq!(monitor.active_alerts().len(), 1);
        assert_eq!(monitor.active_alerts()[0].windows_active, 2);
        assert_eq!(monitor.pump(), 0, "no channel attached");
    }

    #[test]
    fn pump_loop_drains_until_stopped_and_takes_a_final_pass() {
        use std::sync::mpsc::sync_channel;
        use std::sync::Arc;

        let mut monitor =
            Monitor::new(vec![], None, ObsConfig { window_len: 4, ..Default::default() });
        let (tx, rx) = sync_channel(64);
        monitor.rx = Some(rx);
        let stop = Arc::new(AtomicBool::new(false));
        for _ in 0..6 {
            tx.send(sample(0.9, 0)).unwrap();
        }
        let stopper = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Samples that land right before the stop must still be
                // absorbed by the loop's final pass.
                for _ in 0..3 {
                    tx.send(sample(0.8, 0)).unwrap();
                }
                stop.store(true, Ordering::SeqCst);
            })
        };
        let total = monitor.pump_loop(&stop, Duration::from_millis(1));
        stopper.join().unwrap();
        assert_eq!(total, 9);
        assert_eq!(monitor.stats().closed(), 2);
        assert_eq!(monitor.stats().open_count(), 1);
    }
}

//! Declarative alert rules over closed windows, with debounce.
//!
//! A rule names a scope (one slice, or the whole deployment), a signal, a
//! threshold, a minimum window population (noise guard) and a severity.
//! Rules are evaluated at every window close; an [`Alert`] is emitted on
//! the **rising edge** only, and the rule re-arms after a configurable
//! run of clean windows — a flapping slice alerts once per episode, not
//! once per window. Evaluation is a pure function of the window, the
//! baseline and the rule state, so a replayed obslog reproduces the
//! exact alert sequence.

use crate::drift::{ks_statistic, psi_binary};
use crate::window::WindowRecord;
use overton_serving::TrafficBaseline;
use std::fmt;

/// How urgent an alert is.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Severity {
    /// Worth a look on the dashboard.
    Info,
    /// Needs triage.
    Warning,
    /// Needs action; the watchdog treats sustained criticals (and above
    /// its configured floor generally) as retrain triggers.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        })
    }
}

/// The monitored signal a rule thresholds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Signal {
    /// Population Stability Index of the slice's traffic share against
    /// the baseline's tagged share (slice-scoped rules only; fires when
    /// the value **exceeds** the threshold).
    TrafficPsi,
    /// KS statistic between the window's confidence distribution and the
    /// baseline's (per-slice, or overall); fires when the value
    /// **exceeds** the threshold.
    ConfidenceKs,
    /// Mean gold accuracy over the window's scored requests; fires when
    /// the value **drops below** the threshold.
    GoldAccuracy,
    /// Fraction of requests that failed; fires when the value **exceeds**
    /// the threshold.
    ErrorRate,
    /// Statistically gated traffic drift (slice-scoped rules only): the
    /// one-sided two-proportion p-value that the slice's windowed traffic
    /// share is *greater* than its baseline tagged share, given both
    /// sample sizes. The threshold is the significance level — the rule
    /// fires when the value **drops below** it (p < alpha), i.e. when the
    /// observed shift is too large to be sampling noise at this window
    /// size. Needs a baseline that recorded integer tag counts
    /// ([`TrafficBaseline::sample_size`] > 0); older baselines silently
    /// disable the rule. One-sided deliberately: under a mix shift toward
    /// one slice, every *other* slice's share shrinks — a two-sided test
    /// would page for healthy slices that merely got diluted.
    Significance,
}

impl Signal {
    /// Stable lowercase name (used in displays and the CLI table).
    pub fn name(self) -> &'static str {
        match self {
            Signal::TrafficPsi => "traffic-psi",
            Signal::ConfidenceKs => "confidence-ks",
            Signal::GoldAccuracy => "gold-accuracy",
            Signal::ErrorRate => "error-rate",
            Signal::Significance => "significance",
        }
    }

    /// Whether `value` breaches `threshold` in this signal's direction.
    pub fn breaches(self, value: f64, threshold: f64) -> bool {
        match self {
            // A p-value below the significance level is the breach.
            Signal::GoldAccuracy | Signal::Significance => value < threshold,
            Signal::TrafficPsi | Signal::ConfidenceKs | Signal::ErrorRate => value > threshold,
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AlertRule {
    /// The slice the rule watches; `None` scopes it to the whole
    /// deployment ([`Signal::TrafficPsi`] requires a slice).
    pub slice: Option<String>,
    /// The signal thresholded.
    pub signal: Signal,
    /// Threshold (direction depends on the signal — see [`Signal`]).
    pub threshold: f64,
    /// Minimum population in the rule's scope for the window to be
    /// evaluated at all: the window's request count for
    /// [`Signal::TrafficPsi`]/[`Signal::ErrorRate`], the scope's *served*
    /// count for [`Signal::ConfidenceKs`], the scope's *gold-scored*
    /// count for [`Signal::GoldAccuracy`]. Windows below it neither fire
    /// nor clear the rule.
    pub min_window_count: u64,
    /// Severity of alerts the rule emits.
    pub severity: Severity,
}

/// A fired alert: one rule's rising edge at one window close.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Alert {
    /// Index of the window whose close fired the alert.
    pub window: u64,
    /// The rule's slice scope (`None` = deployment-wide).
    pub slice: Option<String>,
    /// The signal that breached.
    pub signal: Signal,
    /// The observed value.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// The rule's severity.
    pub severity: Severity,
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} window={} value={:.4} threshold={:.4}",
            self.severity,
            self.signal,
            self.slice.as_deref().unwrap_or("overall"),
            self.window,
            self.value,
            self.threshold
        )
    }
}

/// A rule that is currently breaching, with how long it has been.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveAlert {
    /// The breaching rule.
    pub rule: AlertRule,
    /// Consecutive breaching windows so far (≥ 1).
    pub windows_active: u32,
    /// The most recent breaching value.
    pub value: f64,
}

#[derive(Debug, Clone, Default, PartialEq)]
struct RuleState {
    /// Consecutive breaching windows (0 when currently clean).
    breaching: u32,
    /// Consecutive clean windows since the last breach.
    clean: u32,
    /// An alert was emitted and the rule has not re-armed yet.
    alerted: bool,
    /// Last breaching value (for the active-alerts table).
    value: f64,
}

/// Evaluates a fixed rule set against each closed window, maintaining
/// debounce state and the emitted alert log.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    /// Clean windows required before a fired rule re-arms.
    rearm_windows: u32,
    states: Vec<RuleState>,
    alerts: Vec<Alert>,
}

impl AlertEngine {
    /// Creates the engine for a rule set. `rearm_windows` clean windows
    /// re-arm a fired rule (0 = re-arm immediately, i.e. alert on every
    /// rising edge).
    pub fn new(rules: Vec<AlertRule>, rearm_windows: u32) -> Self {
        let states = rules.iter().map(|_| RuleState::default()).collect();
        Self { rules, rearm_windows, states, alerts: Vec::new() }
    }

    /// The rule set.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Every alert emitted so far, in window order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Rules currently breaching.
    pub fn active(&self) -> Vec<ActiveAlert> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| s.breaching > 0)
            .map(|(r, s)| ActiveAlert {
                rule: r.clone(),
                windows_active: s.breaching,
                value: s.value,
            })
            .collect()
    }

    /// Evaluates every rule against a freshly closed window.
    pub fn evaluate(
        &mut self,
        slice_names: &[String],
        baseline: Option<&TrafficBaseline>,
        window: &WindowRecord,
    ) {
        for (rule, state) in self.rules.iter().zip(&mut self.states) {
            let Some(value) = signal_value(rule, slice_names, baseline, window) else {
                // Below the population guard (or no baseline): the window
                // says nothing about this rule either way.
                continue;
            };
            if rule.signal.breaches(value, rule.threshold) {
                state.breaching += 1;
                state.clean = 0;
                state.value = value;
                if !state.alerted {
                    state.alerted = true;
                    self.alerts.push(Alert {
                        window: window.index,
                        slice: rule.slice.clone(),
                        signal: rule.signal,
                        value,
                        threshold: rule.threshold,
                        severity: rule.severity,
                    });
                }
            } else {
                state.breaching = 0;
                state.clean += 1;
                // Re-arm after `rearm_windows` clean windows, exactly as
                // documented (0 = any clean window re-arms, i.e. every
                // rising edge alerts).
                if state.clean >= self.rearm_windows {
                    state.alerted = false;
                }
            }
        }
    }
}

/// The value a rule's signal takes on a window, or `None` when the
/// window's population is below the rule's guard (or the signal needs a
/// baseline/slice the deployment does not have).
fn signal_value(
    rule: &AlertRule,
    slice_names: &[String],
    baseline: Option<&TrafficBaseline>,
    window: &WindowRecord,
) -> Option<f64> {
    let slice_index = match &rule.slice {
        Some(name) => Some(slice_names.iter().position(|n| n == name)?),
        None => None,
    };
    let group = match slice_index {
        Some(i) => &window.slices[i],
        None => &window.overall,
    };
    match rule.signal {
        Signal::TrafficPsi => {
            let name = rule.slice.as_deref()?;
            let base = baseline?.tag_share(name)?;
            if window.overall.count < rule.min_window_count {
                return None;
            }
            Some(psi_binary(window.slice_share(slice_index?), base))
        }
        Signal::ConfidenceKs => {
            if group.served() < rule.min_window_count {
                return None;
            }
            let base_hist = match rule.slice.as_deref() {
                Some(name) => baseline?.slice_confidence_hist(name)?,
                None => baseline?.confidence_hist.as_slice(),
            };
            Some(ks_statistic(&group.confidence_hist, base_hist))
        }
        Signal::GoldAccuracy => {
            if group.gold_scored < rule.min_window_count {
                return None;
            }
            group.gold_accuracy()
        }
        Signal::ErrorRate => {
            if group.count < rule.min_window_count {
                return None;
            }
            Some(group.error_rate())
        }
        Signal::Significance => {
            let name = rule.slice.as_deref()?;
            let base = baseline?;
            // Older baselines recorded shares only; without integer
            // counts there is no sample size to test against.
            if base.sample_size == 0 {
                return None;
            }
            let base_count = base.tag_count(name)?;
            if window.overall.count < rule.min_window_count {
                return None;
            }
            Some(overton_monitor::stats::two_proportion_p_value_greater(
                window.slices[slice_index?].count,
                window.overall.count,
                base_count,
                base.sample_size,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowedStats;
    use overton_serving::{confidence_bin, ServeSample, CONFIDENCE_BINS};

    fn sample(confidence: f32, slice_mask: u64, gold: Option<f64>) -> ServeSample {
        ServeSample {
            ok: true,
            confidence_bin: confidence_bin(confidence),
            confidence_millionths: (f64::from(confidence) * 1e6) as u64,
            latency_micros: 50,
            slice_mask,
            gold_accuracy_millionths: gold.map(|g| (g * 1e6).round() as u64),
        }
    }

    fn baseline(share: f64) -> TrafficBaseline {
        let mut hist = vec![0u64; CONFIDENCE_BINS];
        hist[confidence_bin(0.9)] = 100;
        // Anchor the share to a concrete reference sample of 1000
        // records so significance rules have counts to test against.
        let sample_size = 1000u64;
        TrafficBaseline {
            slice_shares: vec![("hard".into(), share)],
            mean_confidence: 0.9,
            tag_shares: vec![("hard".into(), share)],
            confidence_hist: hist.clone(),
            slice_confidence_hists: vec![hist],
            sample_size,
            tag_counts: vec![(share * sample_size as f64).round() as u64],
        }
    }

    fn window(n: u64, in_slice: u64, confidence: f32) -> WindowRecord {
        let mut stats = WindowedStats::new(vec!["hard".into()], n, 4);
        let mut closed = None;
        for i in 0..n {
            closed = stats.ingest(&sample(confidence, u64::from(i < in_slice), Some(1.0)));
        }
        closed.expect("window closed")
    }

    fn psi_rule(min: u64) -> AlertRule {
        AlertRule {
            slice: Some("hard".into()),
            signal: Signal::TrafficPsi,
            threshold: 0.25,
            min_window_count: min,
            severity: Severity::Critical,
        }
    }

    #[test]
    fn psi_rule_fires_on_drifted_share_only() {
        let names = vec!["hard".to_string()];
        let base = baseline(0.1);
        let mut engine = AlertEngine::new(vec![psi_rule(10)], 2);
        // Stable window: share 0.1 == baseline.
        engine.evaluate(&names, Some(&base), &window(100, 10, 0.9));
        assert!(engine.alerts().is_empty());
        assert!(engine.active().is_empty());
        // Drifted window: share 0.6.
        engine.evaluate(&names, Some(&base), &window(100, 60, 0.9));
        assert_eq!(engine.alerts().len(), 1);
        let alert = &engine.alerts()[0];
        assert_eq!(alert.signal, Signal::TrafficPsi);
        assert_eq!(alert.slice.as_deref(), Some("hard"));
        assert!(alert.value > 0.25);
        assert_eq!(alert.severity, Severity::Critical);
        assert!(alert.to_string().contains("traffic-psi"), "{alert}");
    }

    #[test]
    fn debounce_alerts_once_per_episode_and_rearms_after_clean_run() {
        let names = vec!["hard".to_string()];
        let base = baseline(0.1);
        let mut engine = AlertEngine::new(vec![psi_rule(10)], 2);
        let drifted = window(100, 60, 0.9);
        let stable = window(100, 10, 0.9);
        // Five breaching windows: exactly one alert, active the whole time.
        for _ in 0..5 {
            engine.evaluate(&names, Some(&base), &drifted);
        }
        assert_eq!(engine.alerts().len(), 1);
        assert_eq!(engine.active().len(), 1);
        assert_eq!(engine.active()[0].windows_active, 5);
        // One clean window is not enough to re-arm (flap guard)...
        engine.evaluate(&names, Some(&base), &stable);
        engine.evaluate(&names, Some(&base), &drifted);
        assert_eq!(engine.alerts().len(), 1, "a flap must not re-alert");
        // ...but a clean run longer than rearm_windows is.
        for _ in 0..3 {
            engine.evaluate(&names, Some(&base), &stable);
        }
        engine.evaluate(&names, Some(&base), &drifted);
        assert_eq!(engine.alerts().len(), 2, "re-armed rule fires on the next episode");
    }

    #[test]
    fn population_guard_skips_thin_windows() {
        let names = vec!["hard".to_string()];
        let base = baseline(0.1);
        let mut engine = AlertEngine::new(vec![psi_rule(500)], 2);
        engine.evaluate(&names, Some(&base), &window(100, 60, 0.9));
        assert!(engine.alerts().is_empty(), "window below min_window_count must not fire");
        // And without a baseline PSI has no reference: nothing fires.
        let mut engine = AlertEngine::new(vec![psi_rule(10)], 2);
        engine.evaluate(&names, None, &window(100, 60, 0.9));
        assert!(engine.alerts().is_empty());
    }

    #[test]
    fn ks_accuracy_and_error_signals_threshold_in_the_right_direction() {
        let names = vec!["hard".to_string()];
        let base = baseline(0.1);
        let rules = vec![
            AlertRule {
                slice: Some("hard".into()),
                signal: Signal::ConfidenceKs,
                threshold: 0.5,
                min_window_count: 10,
                severity: Severity::Warning,
            },
            AlertRule {
                slice: None,
                signal: Signal::GoldAccuracy,
                threshold: 0.6,
                min_window_count: 10,
                severity: Severity::Critical,
            },
            AlertRule {
                slice: None,
                signal: Signal::ErrorRate,
                threshold: 0.5,
                min_window_count: 10,
                severity: Severity::Info,
            },
        ];
        let mut engine = AlertEngine::new(rules, 2);
        // Confidence collapsed to 0.1 (baseline is at 0.9) in the slice;
        // gold accuracy is 1.0 (no GoldAccuracy breach), errors 0.
        engine.evaluate(&names, Some(&base), &window(100, 60, 0.1));
        let signals: Vec<Signal> = engine.alerts().iter().map(|a| a.signal).collect();
        assert_eq!(signals, vec![Signal::ConfidenceKs]);
        // Accuracy direction: a low-accuracy window fires GoldAccuracy.
        let mut stats = WindowedStats::new(vec!["hard".into()], 20, 4);
        let mut low = None;
        for _ in 0..20 {
            low = stats.ingest(&sample(0.9, 0, Some(0.0)));
        }
        engine.evaluate(&names, Some(&base), &low.unwrap());
        assert!(engine.alerts().iter().any(|a| a.signal == Signal::GoldAccuracy));
    }

    fn significance_rule(alpha: f64, min: u64) -> AlertRule {
        AlertRule {
            slice: Some("hard".into()),
            signal: Signal::Significance,
            threshold: alpha,
            min_window_count: min,
            severity: Severity::Critical,
        }
    }

    #[test]
    fn significance_rule_fires_on_real_shifts_and_suppresses_noise() {
        let names = vec!["hard".to_string()];
        let base = baseline(0.1);
        let mut engine = AlertEngine::new(vec![significance_rule(0.01, 10)], 2);
        // Share 0.14 on a 100-request window against baseline 0.10/1000:
        // a real-but-small wobble, p well above alpha — no page.
        engine.evaluate(&names, Some(&base), &window(100, 14, 0.9));
        assert!(engine.alerts().is_empty(), "insignificant wobble must not fire");
        // Share 0.60 on the same window size is unmistakable.
        engine.evaluate(&names, Some(&base), &window(100, 60, 0.9));
        assert_eq!(engine.alerts().len(), 1);
        let alert = &engine.alerts()[0];
        assert_eq!(alert.signal, Signal::Significance);
        assert!(alert.value < 0.01, "fired value is the p-value: {}", alert.value);
        assert!(alert.to_string().contains("significance"), "{alert}");
    }

    #[test]
    fn significance_rule_is_one_sided_and_needs_counts() {
        let names = vec!["hard".to_string()];
        // A slice whose live share *collapses* (dilution under a mix
        // shift toward some other slice) must not fire.
        let base = baseline(0.5);
        let mut engine = AlertEngine::new(vec![significance_rule(0.01, 10)], 2);
        engine.evaluate(&names, Some(&base), &window(200, 10, 0.9));
        assert!(engine.alerts().is_empty(), "a shrinking share is not this rule's business");
        // A pre-sample-size baseline (counts defaulted away) disables the
        // rule rather than firing on garbage.
        let mut legacy = baseline(0.1);
        legacy.sample_size = 0;
        legacy.tag_counts.clear();
        let mut engine = AlertEngine::new(vec![significance_rule(0.01, 10)], 2);
        engine.evaluate(&names, Some(&legacy), &window(100, 60, 0.9));
        assert!(engine.alerts().is_empty(), "no counts, no significance test");
        // And below the population guard nothing is evaluated.
        let mut engine = AlertEngine::new(vec![significance_rule(0.01, 500)], 2);
        engine.evaluate(&names, Some(&baseline(0.1)), &window(100, 60, 0.9));
        assert!(engine.alerts().is_empty());
    }

    #[test]
    fn rules_and_alerts_serialize_roundtrip() {
        let rule = psi_rule(10);
        let json = serde_json::to_string(&rule).unwrap();
        let back: AlertRule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rule);
        let rule = significance_rule(0.01, 64);
        let json = serde_json::to_string(&rule).unwrap();
        let back: AlertRule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rule);
        let alert = Alert {
            window: 3,
            slice: None,
            signal: Signal::ErrorRate,
            value: 0.4,
            threshold: 0.2,
            severity: Severity::Info,
        };
        let json = serde_json::to_string(&alert).unwrap();
        let back: Alert = serde_json::from_str(&json).unwrap();
        assert_eq!(back, alert);
        assert!(Severity::Critical > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}

//! Drift statistics: pure functions from windowed state + baseline to a
//! scalar, so live evaluation and obslog replay compute identical values.

/// Population Stability Index of a binary in/out-of-slice distribution:
/// how far a slice's live traffic share has moved from its baseline
/// share. Shares are clamped away from 0/1 so the statistic stays finite
/// when a slice vanishes or saturates, and non-finite inputs (a share
/// computed over an empty window) yield 0.0 — drift statistics feed the
/// significance gates downstream and must never be NaN/inf. The
/// conventional reading is `< 0.1` stable, `0.1–0.25` drifting, `> 0.25`
/// drifted.
pub fn psi_binary(live_share: f64, baseline_share: f64) -> f64 {
    const EPS: f64 = 1e-4;
    if !live_share.is_finite() || !baseline_share.is_finite() {
        return 0.0;
    }
    let p = live_share.clamp(EPS, 1.0 - EPS);
    let q = baseline_share.clamp(EPS, 1.0 - EPS);
    (p - q) * (p / q).ln() + ((1.0 - p) - (1.0 - q)) * ((1.0 - p) / (1.0 - q)).ln()
}

/// Kolmogorov–Smirnov-style statistic between two binned distributions
/// (same binning): the maximum absolute difference of the empirical CDFs,
/// in `[0, 1]`. A degenerate comparison — either histogram empty or
/// all-zero — is 0.0: no observable evidence of drift, never NaN/inf
/// (alert guards keep thin windows from being *evaluated* at all; this
/// keeps a poisoned value out of any path that slips through).
pub fn ks_statistic(live: &[u64], baseline: &[u64]) -> f64 {
    let (n_live, n_base) = (live.iter().sum::<u64>(), baseline.iter().sum::<u64>());
    if n_live == 0 || n_base == 0 {
        return 0.0;
    }
    let mut cdf_live = 0.0f64;
    let mut cdf_base = 0.0f64;
    let mut sup = 0.0f64;
    for i in 0..live.len().max(baseline.len()) {
        cdf_live += live.get(i).copied().unwrap_or(0) as f64 / n_live as f64;
        cdf_base += baseline.get(i).copied().unwrap_or(0) as f64 / n_base as f64;
        sup = sup.max((cdf_live - cdf_base).abs());
    }
    sup
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_is_zero_at_baseline_and_grows_with_shift() {
        assert!(psi_binary(0.1, 0.1).abs() < 1e-12);
        let small = psi_binary(0.12, 0.1);
        let large = psi_binary(0.5, 0.1);
        assert!(small > 0.0 && small < 0.02, "small shift PSI {small}");
        assert!(large > 0.25, "large shift PSI {large}");
        assert!(large > small);
        // Symmetric in direction of shift, finite at the edges.
        assert!(psi_binary(0.0, 0.5).is_finite());
        assert!(psi_binary(1.0, 0.5).is_finite());
        assert!((psi_binary(0.3, 0.1) - psi_binary(0.1, 0.3)).abs() < 1e-12);
    }

    #[test]
    fn psi_never_emits_non_finite_values() {
        // Poisoned inputs (a share computed over an empty window) are 0.0.
        assert_eq!(psi_binary(f64::NAN, 0.5), 0.0);
        assert_eq!(psi_binary(0.5, f64::NAN), 0.0);
        assert_eq!(psi_binary(f64::INFINITY, 0.5), 0.0);
        assert_eq!(psi_binary(0.5, f64::NEG_INFINITY), 0.0);
        // Extreme but finite inputs clamp rather than blow up.
        for (p, q) in [(0.0, 1.0), (1.0, 0.0), (-3.0, 7.0)] {
            assert!(psi_binary(p, q).is_finite());
        }
    }

    #[test]
    fn ks_detects_distribution_shift() {
        // Identical distributions (different scales): 0.
        assert_eq!(ks_statistic(&[10, 20, 10], &[1, 2, 1]), 0.0);
        // Disjoint distributions: 1.
        assert_eq!(ks_statistic(&[5, 0, 0], &[0, 0, 7]), 1.0);
        // A partial shift lands in between.
        let ks = ks_statistic(&[8, 2, 0], &[2, 2, 6]);
        assert!(ks > 0.3 && ks < 1.0, "ks {ks}");
    }

    #[test]
    fn ks_degenerate_windows_are_zero_never_nan() {
        // Empty or all-zero sides carry no evidence: exactly 0.0.
        assert_eq!(ks_statistic(&[], &[1]), 0.0);
        assert_eq!(ks_statistic(&[1], &[]), 0.0);
        assert_eq!(ks_statistic(&[0, 0], &[1, 1]), 0.0);
        assert_eq!(ks_statistic(&[1], &[0]), 0.0);
        assert_eq!(ks_statistic(&[], &[]), 0.0);
        // And a zero KS can never breach a positive threshold, so a
        // degenerate window cannot fire a confidence-drift alert.
        assert!(!crate::alert::Signal::ConfidenceKs.breaches(ks_statistic(&[], &[]), 0.35));
    }
}

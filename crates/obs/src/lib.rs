//! # overton-obs
//!
//! Continuous observability for deployed Overton models — the paper's
//! title promise ("*monitoring* machine-learned products") extended past
//! build-time evaluation into the deployment's lifetime, following the
//! observability literature's demand for continuous, historical,
//! replayable views of ML behavior:
//!
//! - **Windowed statistics** ([`WindowedStats`]): serving samples
//!   aggregate into tumbling windows (traffic counts, per-slice shares,
//!   confidence histograms, gold accuracy when labels exist, latency
//!   quantiles) held in a fixed-capacity ring — bounded memory under
//!   unbounded traffic.
//! - **Drift detection** ([`psi_binary`], [`ks_statistic`]): per-slice
//!   traffic-mix PSI and confidence-distribution KS against the
//!   training-time [`TrafficBaseline`](overton_serving::TrafficBaseline)
//!   persisted in the run directory.
//! - **Alert rules** ([`AlertRule`], [`Alert`]): declarative thresholds
//!   evaluated at every window close, debounced so a flapping slice
//!   alerts once per episode.
//! - **Metrics log** ([`ObsLog`]): an append-only JSONL log written at
//!   window boundaries; [`ObsLog::replay`] reconstructs the live
//!   monitoring state bit-identically from the files alone (`overton
//!   monitor <dir>` renders history with zero live state).
//! - **Closed loop** ([`Watchdog`]): sustained high-severity alerts
//!   become the same ranked [`SliceDiagnosis`](overton_monitor::SliceDiagnosis)
//!   worklist the rest of the system uses, feeding
//!   `Project::retrain_and_compare` — Figure 1 as running code.
//! - **Scrape exposition** ([`monitor_metrics`], [`metrics_ext`]): the
//!   windowed state, obslog health, alert ledger, per-slice accuracy
//!   confidence bounds and the test-set reuse budget
//!   ([`metrics_ext_with_meter`]) rendered as Prometheus text, appended
//!   to the socket tier's `GET /metrics` via the
//!   [`MetricsExt`](overton_serving::MetricsExt) hook.
//!
//! The serving hot path pays one atomic load plus a bounded-channel
//! `try_send` per request (`crates/bench`'s `obs_overhead` measures the
//! observed pool within 1.5x of the unobserved one); all aggregation
//! happens on the monitor's thread via [`Monitor::pump`].

#![warn(missing_docs)]

mod alert;
mod drift;
mod export;
mod monitor;
mod obslog;
mod watchdog;
mod window;

pub use alert::{ActiveAlert, Alert, AlertEngine, AlertRule, Severity, Signal};
pub use drift::{ks_statistic, psi_binary};
pub use export::{meter_metrics, metrics_ext, metrics_ext_with_meter, monitor_metrics};
pub use monitor::{default_rules, Monitor, ObsConfig};
pub use obslog::{ObsLog, ObsLogMeta};
pub use watchdog::{Watchdog, WatchdogConfig, TAG_CAPTURED, WATCHDOG_TASK};
pub use window::{GroupWindow, WindowRecord, WindowedStats};

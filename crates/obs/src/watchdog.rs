//! The closed loop: sustained alerts → ranked retrain worklist.
//!
//! Figure 1's feedback edge, automated: when high-severity alerts stay
//! active for enough consecutive windows, the [`Watchdog`] converts the
//! flagged slices into the same [`SliceDiagnosis`] worklist every other
//! monitoring surface produces — via the shared
//! [`diagnose_reports`](overton_monitor::diagnose_reports) kernel — so
//! the caller can hand the worst slice straight to
//! `Project::retrain_and_compare` (see `overton::Project::retrain_for_slice`)
//! and the loop runs end-to-end without a human. Determinism matters
//! here: the kernel's tie-breaking makes watchdog-triggered retrains
//! reproducible.

use crate::alert::Severity;
use crate::monitor::Monitor;
use overton_monitor::{diagnose_reports, Metrics, QualityReport, SliceDiagnosis, SLICE_PREFIX};
use overton_store::{LiveStore, Record, StoreError, TAG_DEV, TAG_TEST, TAG_TRAIN};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// The pseudo-task name under which the watchdog reports windowed serving
/// quality (windowed gold accuracy is task-agnostic; the caller maps the
/// slice back onto real tasks when retraining).
pub const WATCHDOG_TASK: &str = "serving";

/// Lineage tag stamped on every record the watchdog captures into a live
/// store, so captured traffic stays queryable (and excludable) downstream
/// exactly like synthetic cold-start data.
pub const TAG_CAPTURED: &str = "capture:watchdog";

/// When the watchdog escalates.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WatchdogConfig {
    /// Minimum severity of alerts the watchdog acts on.
    pub min_severity: Severity,
    /// Consecutive breaching windows before a slice is escalated
    /// (transient blips never trigger a retrain).
    pub sustain_windows: u32,
    /// Minimum scored examples behind a diagnosis (passed to the
    /// diagnosis kernel's noise guard).
    pub min_count: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self { min_severity: Severity::Warning, sustain_windows: 3, min_count: 10 }
    }
}

/// Converts a monitor's sustained alerts into the ranked slice worklist.
#[derive(Debug, Clone, Default)]
pub struct Watchdog {
    config: WatchdogConfig,
}

impl Watchdog {
    /// A watchdog with the given escalation policy.
    pub fn new(config: WatchdogConfig) -> Self {
        Self { config }
    }

    /// The escalation policy.
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }

    /// Slices whose alerts have been active for at least
    /// `sustain_windows` windows at `min_severity` or above (sorted, so
    /// downstream processing is deterministic).
    pub fn flagged_slices(&self, monitor: &Monitor) -> Vec<String> {
        let flagged: BTreeSet<String> = monitor
            .active_alerts()
            .into_iter()
            .filter(|a| {
                a.rule.severity >= self.config.min_severity
                    && a.windows_active >= self.config.sustain_windows
            })
            .filter_map(|a| a.rule.slice)
            .collect();
        flagged.into_iter().collect()
    }

    /// The retrain worklist: flagged slices scored with their windowed
    /// traffic volume and gold accuracy over the sustained episode (the
    /// last `sustain_windows` closed windows), ranked by the shared
    /// diagnosis kernel. A flagged slice whose traffic carried no gold
    /// scores accuracy 0 — unknown quality on a drifted slice ranks
    /// worst, which is the safe ordering for a retrain queue. Empty when
    /// nothing is sustained — the loop stays closed but quiet.
    pub fn worklist(&self, monitor: &Monitor) -> Vec<SliceDiagnosis> {
        let flagged = self.flagged_slices(monitor);
        if flagged.is_empty() {
            return Vec::new();
        }
        let recent: Vec<_> = {
            let all: Vec<_> = monitor.stats().windows().collect();
            let keep = (self.config.sustain_windows as usize).min(all.len());
            all[all.len() - keep..].to_vec()
        };
        let mut report = QualityReport::new(WATCHDOG_TASK);
        for slice in &flagged {
            let Some(i) = monitor.stats().slice_names().iter().position(|n| n == slice) else {
                continue;
            };
            let mut count = 0u64;
            let mut gold_scored = 0u64;
            let mut gold_correct = 0u64;
            for window in &recent {
                let group = &window.slices[i];
                count += group.count;
                gold_scored += group.gold_scored;
                gold_correct += group.gold_correct_millionths;
            }
            let accuracy =
                if gold_scored == 0 { 0.0 } else { gold_correct as f64 / 1e6 / gold_scored as f64 };
            report.push(
                &format!("{SLICE_PREFIX}{slice}"),
                Metrics { count: count as usize, accuracy, macro_f1: accuracy, micro_f1: accuracy },
            );
        }
        let reports = BTreeMap::from([(WATCHDOG_TASK.to_string(), report)]);
        diagnose_reports(&reports, self.config.min_count)
    }

    /// The capture half of the closed loop: appends the gold-labeled
    /// records of `records` that belong to a currently escalated slice
    /// ([`flagged_slices`](Watchdog::flagged_slices)) into `live`, where
    /// the next incremental retrain picks them up as a sealed delta.
    ///
    /// Captured records are re-tagged as training data: `dev`/`test`
    /// split tags are stripped (live traffic must never leak into the
    /// held-out splits), `train` is ensured, and [`TAG_CAPTURED`] records
    /// the lineage. Records without gold supervision are skipped — the
    /// retrain needs labels, not more unlabeled drift. Returns how many
    /// records were appended; the rows become visible to snapshots at
    /// the next seal ([`LiveStore::flush`] or the byte/row target).
    pub fn capture_into(
        &self,
        monitor: &Monitor,
        records: &[Record],
        live: &LiveStore,
    ) -> Result<usize, StoreError> {
        let flagged = self.flagged_slices(monitor);
        if flagged.is_empty() {
            return Ok(0);
        }
        let mut captured = 0;
        for record in records {
            if !record.slices().any(|s| flagged.iter().any(|f| f == s)) {
                continue;
            }
            if !record.tasks.keys().any(|task| record.gold(task).is_some()) {
                continue;
            }
            let mut capture = record.clone();
            capture.tags.remove(TAG_DEV);
            capture.tags.remove(TAG_TEST);
            capture.tags.insert(TAG_TRAIN.to_string());
            capture.tags.insert(TAG_CAPTURED.to_string());
            live.append(capture)?;
            captured += 1;
        }
        Ok(captured)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::{AlertRule, Signal};
    use crate::monitor::ObsConfig;
    use overton_serving::{confidence_bin, ServeSample};

    fn sample(slice_mask: u64, gold: f64) -> ServeSample {
        ServeSample {
            ok: true,
            confidence_bin: confidence_bin(0.8),
            confidence_millionths: 800_000,
            latency_micros: 40,
            slice_mask,
            gold_accuracy_millionths: Some((gold * 1e6).round() as u64),
        }
    }

    fn low_accuracy_rule(slice: &str) -> AlertRule {
        AlertRule {
            slice: Some(slice.into()),
            signal: Signal::GoldAccuracy,
            threshold: 0.5,
            min_window_count: 1,
            severity: Severity::Critical,
        }
    }

    #[test]
    fn sustained_alerts_become_a_ranked_worklist() {
        let config = ObsConfig {
            window_len: 10,
            history: 16,
            rules: vec![low_accuracy_rule("bad"), low_accuracy_rule("fine")],
            ..Default::default()
        };
        let mut monitor = Monitor::new(vec!["bad".into(), "fine".into()], None, config);
        // 5 windows: "bad" slice always wrong, "fine" slice always right.
        for i in 0..50u64 {
            let (mask, gold) = if i % 2 == 0 { (0b01, 0.0) } else { (0b10, 1.0) };
            monitor.ingest(&sample(mask, gold));
        }
        let watchdog = Watchdog::new(WatchdogConfig {
            min_severity: Severity::Warning,
            sustain_windows: 3,
            min_count: 5,
        });
        assert_eq!(watchdog.flagged_slices(&monitor), vec!["bad".to_string()]);
        let worklist = watchdog.worklist(&monitor);
        assert_eq!(worklist.len(), 1);
        assert_eq!(worklist[0].slice, "bad");
        assert_eq!(worklist[0].task, WATCHDOG_TASK);
        assert!(worklist[0].metrics.accuracy < 0.5);
        // 3 sustained windows × 5 "bad" samples each.
        assert_eq!(worklist[0].metrics.count, 15);
    }

    #[test]
    fn transient_blips_and_low_severity_do_not_escalate() {
        let config = ObsConfig {
            window_len: 10,
            history: 16,
            rules: vec![low_accuracy_rule("bad")],
            ..Default::default()
        };
        let mut monitor = Monitor::new(vec!["bad".into()], None, config);
        // One bad window only.
        for _ in 0..10 {
            monitor.ingest(&sample(1, 0.0));
        }
        let watchdog = Watchdog::new(WatchdogConfig { sustain_windows: 3, ..Default::default() });
        assert!(watchdog.flagged_slices(&monitor).is_empty(), "one window is a blip");
        assert!(watchdog.worklist(&monitor).is_empty());
        // Severity floor: a Critical-only watchdog ignores Warning rules.
        let mut warn_rule = low_accuracy_rule("bad");
        warn_rule.severity = Severity::Warning;
        let config =
            ObsConfig { window_len: 10, history: 16, rules: vec![warn_rule], ..Default::default() };
        let mut monitor = Monitor::new(vec!["bad".into()], None, config);
        for _ in 0..50 {
            monitor.ingest(&sample(1, 0.0));
        }
        let strict = Watchdog::new(WatchdogConfig {
            min_severity: Severity::Critical,
            sustain_windows: 3,
            min_count: 5,
        });
        assert!(strict.flagged_slices(&monitor).is_empty());
    }

    #[test]
    fn capture_appends_gold_rows_from_flagged_slices_only() {
        use overton_nlp::{generate_workload, WorkloadConfig};

        const SLICE: &str = "complex-disambiguation";
        let config = ObsConfig {
            window_len: 10,
            history: 16,
            rules: vec![low_accuracy_rule(SLICE)],
            ..Default::default()
        };
        let mut monitor = Monitor::new(vec![SLICE.into()], None, config);
        for _ in 0..50 {
            monitor.ingest(&sample(1, 0.0));
        }
        let watchdog = Watchdog::new(WatchdogConfig {
            min_severity: Severity::Warning,
            sustain_windows: 3,
            min_count: 5,
        });
        assert_eq!(watchdog.flagged_slices(&monitor), vec![SLICE.to_string()]);

        let ds = generate_workload(&WorkloadConfig {
            n_train: 60,
            n_dev: 20,
            n_test: 20,
            seed: 33,
            slice_rate: 0.3,
            ..Default::default()
        });
        let dir =
            std::env::temp_dir().join(format!("overton-watchdog-capture-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let live = LiveStore::create(&dir, ds.schema().clone()).unwrap();

        let captured = watchdog.capture_into(&monitor, ds.records(), &live).unwrap();
        let eligible = ds
            .records()
            .iter()
            .filter(|r| r.in_slice(SLICE) && r.tasks.keys().any(|t| r.gold(t).is_some()))
            .count();
        assert!(captured > 0);
        assert_eq!(captured, eligible, "exactly the gold-labeled slice members are captured");
        assert_eq!(live.pending_rows(), captured);

        // Captured rows are retagged training data with capture lineage.
        live.flush().unwrap();
        let snapshot = live.snapshot();
        for row in 0..snapshot.len() {
            let record = snapshot.store().get(row).unwrap();
            assert!(record.in_slice(SLICE));
            assert!(record.has_tag(TAG_TRAIN) && record.has_tag(TAG_CAPTURED));
            assert!(!record.has_tag(TAG_DEV) && !record.has_tag(TAG_TEST));
            assert!(record.tasks.keys().any(|t| record.gold(t).is_some()));
        }

        // A quiet watchdog captures nothing.
        let quiet = Monitor::new(vec![SLICE.into()], None, ObsConfig::default());
        assert_eq!(watchdog.capture_into(&quiet, ds.records(), &live).unwrap(), 0);

        std::fs::remove_dir_all(&dir).ok();
    }
}

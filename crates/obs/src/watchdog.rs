//! The closed loop: sustained alerts → ranked retrain worklist.
//!
//! Figure 1's feedback edge, automated: when high-severity alerts stay
//! active for enough consecutive windows, the [`Watchdog`] converts the
//! flagged slices into the same [`SliceDiagnosis`] worklist every other
//! monitoring surface produces — via the shared
//! [`diagnose_reports`](overton_monitor::diagnose_reports) kernel — so
//! the caller can hand the worst slice straight to
//! `Project::retrain_and_compare` (see `overton::Project::retrain_for_slice`)
//! and the loop runs end-to-end without a human. Determinism matters
//! here: the kernel's tie-breaking makes watchdog-triggered retrains
//! reproducible.

use crate::alert::Severity;
use crate::monitor::Monitor;
use overton_monitor::{diagnose_reports, Metrics, QualityReport, SliceDiagnosis, SLICE_PREFIX};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// The pseudo-task name under which the watchdog reports windowed serving
/// quality (windowed gold accuracy is task-agnostic; the caller maps the
/// slice back onto real tasks when retraining).
pub const WATCHDOG_TASK: &str = "serving";

/// When the watchdog escalates.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WatchdogConfig {
    /// Minimum severity of alerts the watchdog acts on.
    pub min_severity: Severity,
    /// Consecutive breaching windows before a slice is escalated
    /// (transient blips never trigger a retrain).
    pub sustain_windows: u32,
    /// Minimum scored examples behind a diagnosis (passed to the
    /// diagnosis kernel's noise guard).
    pub min_count: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self { min_severity: Severity::Warning, sustain_windows: 3, min_count: 10 }
    }
}

/// Converts a monitor's sustained alerts into the ranked slice worklist.
#[derive(Debug, Clone, Default)]
pub struct Watchdog {
    config: WatchdogConfig,
}

impl Watchdog {
    /// A watchdog with the given escalation policy.
    pub fn new(config: WatchdogConfig) -> Self {
        Self { config }
    }

    /// The escalation policy.
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }

    /// Slices whose alerts have been active for at least
    /// `sustain_windows` windows at `min_severity` or above (sorted, so
    /// downstream processing is deterministic).
    pub fn flagged_slices(&self, monitor: &Monitor) -> Vec<String> {
        let flagged: BTreeSet<String> = monitor
            .active_alerts()
            .into_iter()
            .filter(|a| {
                a.rule.severity >= self.config.min_severity
                    && a.windows_active >= self.config.sustain_windows
            })
            .filter_map(|a| a.rule.slice)
            .collect();
        flagged.into_iter().collect()
    }

    /// The retrain worklist: flagged slices scored with their windowed
    /// traffic volume and gold accuracy over the sustained episode (the
    /// last `sustain_windows` closed windows), ranked by the shared
    /// diagnosis kernel. A flagged slice whose traffic carried no gold
    /// scores accuracy 0 — unknown quality on a drifted slice ranks
    /// worst, which is the safe ordering for a retrain queue. Empty when
    /// nothing is sustained — the loop stays closed but quiet.
    pub fn worklist(&self, monitor: &Monitor) -> Vec<SliceDiagnosis> {
        let flagged = self.flagged_slices(monitor);
        if flagged.is_empty() {
            return Vec::new();
        }
        let recent: Vec<_> = {
            let all: Vec<_> = monitor.stats().windows().collect();
            let keep = (self.config.sustain_windows as usize).min(all.len());
            all[all.len() - keep..].to_vec()
        };
        let mut report = QualityReport::new(WATCHDOG_TASK);
        for slice in &flagged {
            let Some(i) = monitor.stats().slice_names().iter().position(|n| n == slice) else {
                continue;
            };
            let mut count = 0u64;
            let mut gold_scored = 0u64;
            let mut gold_correct = 0u64;
            for window in &recent {
                let group = &window.slices[i];
                count += group.count;
                gold_scored += group.gold_scored;
                gold_correct += group.gold_correct_millionths;
            }
            let accuracy =
                if gold_scored == 0 { 0.0 } else { gold_correct as f64 / 1e6 / gold_scored as f64 };
            report.push(
                &format!("{SLICE_PREFIX}{slice}"),
                Metrics { count: count as usize, accuracy, macro_f1: accuracy, micro_f1: accuracy },
            );
        }
        let reports = BTreeMap::from([(WATCHDOG_TASK.to_string(), report)]);
        diagnose_reports(&reports, self.config.min_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::{AlertRule, Signal};
    use crate::monitor::ObsConfig;
    use overton_serving::{confidence_bin, ServeSample};

    fn sample(slice_mask: u64, gold: f64) -> ServeSample {
        ServeSample {
            ok: true,
            confidence_bin: confidence_bin(0.8),
            confidence_millionths: 800_000,
            latency_micros: 40,
            slice_mask,
            gold_accuracy_millionths: Some((gold * 1e6).round() as u64),
        }
    }

    fn low_accuracy_rule(slice: &str) -> AlertRule {
        AlertRule {
            slice: Some(slice.into()),
            signal: Signal::GoldAccuracy,
            threshold: 0.5,
            min_window_count: 1,
            severity: Severity::Critical,
        }
    }

    #[test]
    fn sustained_alerts_become_a_ranked_worklist() {
        let config = ObsConfig {
            window_len: 10,
            history: 16,
            rules: vec![low_accuracy_rule("bad"), low_accuracy_rule("fine")],
            ..Default::default()
        };
        let mut monitor = Monitor::new(vec!["bad".into(), "fine".into()], None, config);
        // 5 windows: "bad" slice always wrong, "fine" slice always right.
        for i in 0..50u64 {
            let (mask, gold) = if i % 2 == 0 { (0b01, 0.0) } else { (0b10, 1.0) };
            monitor.ingest(&sample(mask, gold));
        }
        let watchdog = Watchdog::new(WatchdogConfig {
            min_severity: Severity::Warning,
            sustain_windows: 3,
            min_count: 5,
        });
        assert_eq!(watchdog.flagged_slices(&monitor), vec!["bad".to_string()]);
        let worklist = watchdog.worklist(&monitor);
        assert_eq!(worklist.len(), 1);
        assert_eq!(worklist[0].slice, "bad");
        assert_eq!(worklist[0].task, WATCHDOG_TASK);
        assert!(worklist[0].metrics.accuracy < 0.5);
        // 3 sustained windows × 5 "bad" samples each.
        assert_eq!(worklist[0].metrics.count, 15);
    }

    #[test]
    fn transient_blips_and_low_severity_do_not_escalate() {
        let config = ObsConfig {
            window_len: 10,
            history: 16,
            rules: vec![low_accuracy_rule("bad")],
            ..Default::default()
        };
        let mut monitor = Monitor::new(vec!["bad".into()], None, config);
        // One bad window only.
        for _ in 0..10 {
            monitor.ingest(&sample(1, 0.0));
        }
        let watchdog = Watchdog::new(WatchdogConfig { sustain_windows: 3, ..Default::default() });
        assert!(watchdog.flagged_slices(&monitor).is_empty(), "one window is a blip");
        assert!(watchdog.worklist(&monitor).is_empty());
        // Severity floor: a Critical-only watchdog ignores Warning rules.
        let mut warn_rule = low_accuracy_rule("bad");
        warn_rule.severity = Severity::Warning;
        let config =
            ObsConfig { window_len: 10, history: 16, rules: vec![warn_rule], ..Default::default() };
        let mut monitor = Monitor::new(vec!["bad".into()], None, config);
        for _ in 0..50 {
            monitor.ingest(&sample(1, 0.0));
        }
        let strict = Watchdog::new(WatchdogConfig {
            min_severity: Severity::Critical,
            sustain_windows: 3,
            min_count: 5,
        });
        assert!(strict.flagged_slices(&monitor).is_empty());
    }
}

//! Windowed serving statistics: bounded-memory aggregation of unbounded
//! traffic.
//!
//! The observability literature's core demand (Shankar & Parameswaran) is
//! a *historical*, *queryable* view of a deployment — not a single
//! counter since process start. [`WindowedStats`] provides it with fixed
//! memory: samples aggregate into **tumbling windows** of a fixed number
//! of requests, and a fixed-capacity ring of closed windows keeps the
//! recent history. Every field is an integer counter, so a window
//! serialized to the obslog and read back reproduces the live state
//! **bit-identically** — drift statistics and alerts are pure functions
//! of this state and therefore replay exactly.

use overton_serving::{
    latency_bucket, latency_bucket_upper, ServeSample, CONFIDENCE_BINS, LATENCY_BUCKETS,
};
use std::collections::VecDeque;
use std::time::Duration;

/// Aggregates for one group — the whole window, or one slice — over one
/// tumbling window. Integer counters only (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GroupWindow {
    /// Requests in the group (including failed ones for the overall
    /// group; slice membership is only known for served requests).
    pub count: u64,
    /// Requests that failed validation or decoding.
    pub errors: u64,
    /// Confidence histogram over served requests
    /// ([`CONFIDENCE_BINS`] fixed-width bins on `[0, 1]`).
    pub confidence_hist: Vec<u64>,
    /// Served-confidence sum in millionths.
    pub confidence_millionths: u64,
    /// Requests that carried gold labels and were scored.
    pub gold_scored: u64,
    /// Sum of per-request gold accuracy in millionths.
    pub gold_correct_millionths: u64,
}

impl GroupWindow {
    fn empty() -> Self {
        Self {
            count: 0,
            errors: 0,
            confidence_hist: vec![0; CONFIDENCE_BINS],
            confidence_millionths: 0,
            gold_scored: 0,
            gold_correct_millionths: 0,
        }
    }

    fn ingest(&mut self, sample: &ServeSample) {
        self.count += 1;
        if !sample.ok {
            self.errors += 1;
            return;
        }
        self.confidence_hist[sample.confidence_bin.min(CONFIDENCE_BINS - 1)] += 1;
        self.confidence_millionths += sample.confidence_millionths;
        if let Some(correct) = sample.gold_accuracy_millionths {
            self.gold_scored += 1;
            self.gold_correct_millionths += correct;
        }
    }

    /// Successfully served requests in the group.
    pub fn served(&self) -> u64 {
        self.count - self.errors
    }

    /// Mean served confidence (0 when nothing was served).
    pub fn mean_confidence(&self) -> f64 {
        if self.served() == 0 {
            0.0
        } else {
            self.confidence_millionths as f64 / 1e6 / self.served() as f64
        }
    }

    /// Mean gold accuracy over scored requests, `None` when none carried
    /// gold.
    pub fn gold_accuracy(&self) -> Option<f64> {
        if self.gold_scored == 0 {
            None
        } else {
            Some(self.gold_correct_millionths as f64 / 1e6 / self.gold_scored as f64)
        }
    }

    /// Error rate over the group (0 when empty).
    pub fn error_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.errors as f64 / self.count as f64
        }
    }
}

/// One closed tumbling window: the overall aggregate, the latency
/// histogram, and one [`GroupWindow`] per slice (parallel to the owning
/// [`WindowedStats`]' slice names). This is exactly what one obslog line
/// records.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WindowRecord {
    /// Window sequence number, starting at 0 for the deployment.
    pub index: u64,
    /// Whole-window aggregates.
    pub overall: GroupWindow,
    /// Latency histogram over the window ([`LATENCY_BUCKETS`] log2-µs
    /// buckets, the same scheme as the serving telemetry histogram).
    pub latency_hist: Vec<u64>,
    /// Latency sum in microseconds (for the window mean).
    pub latency_sum_micros: u64,
    /// Per-slice aggregates.
    pub slices: Vec<GroupWindow>,
}

impl WindowRecord {
    fn empty(index: u64, n_slices: usize) -> Self {
        Self {
            index,
            overall: GroupWindow::empty(),
            latency_hist: vec![0; LATENCY_BUCKETS],
            latency_sum_micros: 0,
            slices: (0..n_slices).map(|_| GroupWindow::empty()).collect(),
        }
    }

    fn ingest(&mut self, sample: &ServeSample) {
        self.overall.ingest(sample);
        self.latency_hist[latency_bucket(sample.latency_micros)] += 1;
        self.latency_sum_micros += sample.latency_micros;
        for (i, slice) in self.slices.iter_mut().enumerate() {
            if sample.in_slice(i) {
                slice.ingest(sample);
            }
        }
    }

    /// Share of the window's traffic in slice `i` (0 when the window is
    /// empty or the slice index is out of range).
    pub fn slice_share(&self, i: usize) -> f64 {
        match self.slices.get(i) {
            Some(slice) if self.overall.count > 0 => slice.count as f64 / self.overall.count as f64,
            _ => 0.0,
        }
    }

    /// The `q`-quantile of the window's latency histogram, resolved to
    /// the containing bucket's upper bound (same semantics as
    /// [`overton_serving::LatencyHistogram::quantile`], including the
    /// defined empty/0/1 bounds).
    pub fn latency_quantile(&self, q: f64) -> Duration {
        let total: u64 = self.latency_hist.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.latency_hist.iter().enumerate() {
            seen += c;
            if seen >= target {
                return latency_bucket_upper(i);
            }
        }
        latency_bucket_upper(LATENCY_BUCKETS - 1)
    }

    /// Mean latency over the window (zero when empty).
    pub fn mean_latency(&self) -> Duration {
        self.latency_sum_micros
            .checked_div(self.overall.count)
            .map_or(Duration::ZERO, Duration::from_micros)
    }
}

/// Fixed-memory windowed statistics: an open tumbling window absorbing
/// samples plus a bounded ring of closed windows. Equality compares the
/// full windowed state (ring, counters, and the open accumulator), which
/// is what the obslog replay test relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedStats {
    slice_names: Vec<String>,
    window_len: u64,
    capacity: usize,
    history: VecDeque<WindowRecord>,
    /// Closed windows evicted from the ring (total closed = `next_index`).
    evicted: u64,
    /// Index the open window will close as.
    next_index: u64,
    open: WindowRecord,
}

impl WindowedStats {
    /// Creates the windowed state for a slice space. `window_len` is the
    /// number of requests per tumbling window, `capacity` the ring size.
    pub fn new(slice_names: Vec<String>, window_len: u64, capacity: usize) -> Self {
        assert!(window_len > 0, "window_len must be positive");
        assert!(capacity > 0, "history capacity must be positive");
        let open = WindowRecord::empty(0, slice_names.len());
        Self {
            slice_names,
            window_len,
            capacity,
            history: VecDeque::with_capacity(capacity),
            evicted: 0,
            next_index: 0,
            open,
        }
    }

    /// The slice space windows report over (indicator order).
    pub fn slice_names(&self) -> &[String] {
        &self.slice_names
    }

    /// Requests per tumbling window.
    pub fn window_len(&self) -> u64 {
        self.window_len
    }

    /// Ring capacity (closed windows retained).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Closed windows currently retained, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &WindowRecord> {
        self.history.iter()
    }

    /// The most recently closed window.
    pub fn latest(&self) -> Option<&WindowRecord> {
        self.history.back()
    }

    /// Total windows closed over the deployment's lifetime.
    pub fn closed(&self) -> u64 {
        self.next_index
    }

    /// Closed windows evicted from the ring (memory stayed bounded).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Samples accumulated in the open (not yet closed) window.
    pub fn open_count(&self) -> u64 {
        self.open.overall.count
    }

    /// Absorbs one sample; returns a clone of the window it closed, if
    /// this sample completed one (the closed window is also pushed into
    /// the ring).
    pub fn ingest(&mut self, sample: &ServeSample) -> Option<WindowRecord> {
        self.open.ingest(sample);
        if self.open.overall.count < self.window_len {
            return None;
        }
        let closed = std::mem::replace(
            &mut self.open,
            WindowRecord::empty(self.next_index + 1, self.slice_names.len()),
        );
        self.push_closed(closed.clone());
        Some(closed)
    }

    /// Pushes an already-closed window into the ring — the replay path
    /// ([`ObsLog::replay`](crate::ObsLog::replay) feeds logged windows
    /// through here so replayed state equals live state bit for bit).
    ///
    /// # Panics
    /// Panics if the window's slice count does not match this state's
    /// slice space (a log from a different deployment).
    pub fn push_closed(&mut self, window: WindowRecord) {
        assert_eq!(
            window.slices.len(),
            self.slice_names.len(),
            "window's slice space does not match"
        );
        self.next_index = window.index + 1;
        self.open = WindowRecord::empty(self.next_index, self.slice_names.len());
        if self.history.len() == self.capacity {
            self.history.pop_front();
            self.evicted += 1;
        }
        self.history.push_back(window);
    }

    /// Writes the retained history as CSV — one row per (window, group),
    /// groups being `overall` plus every slice — through the workspace's
    /// shared CSV-escaping helper, so free-form slice names stay RFC 4180
    /// clean.
    pub fn write_csv(&self, mut w: impl std::io::Write) -> std::io::Result<()> {
        writeln!(
            w,
            "window,group,count,errors,share,mean_confidence,gold_scored,gold_accuracy,p95_micros"
        )?;
        for window in &self.history {
            let p95 = window.latency_quantile(0.95).as_micros();
            let mut row = |group: &str, g: &GroupWindow, share: f64| {
                writeln!(
                    w,
                    "{},{},{},{},{:.6},{:.6},{},{:.6},{}",
                    window.index,
                    overton_monitor::csv_escape(group),
                    g.count,
                    g.errors,
                    share,
                    g.mean_confidence(),
                    g.gold_scored,
                    g.gold_accuracy().unwrap_or(0.0),
                    p95
                )
            };
            row("overall", &window.overall, 1.0)?;
            for (i, name) in self.slice_names.iter().enumerate() {
                row(name, &window.slices[i], window.slice_share(i))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(
        ok: bool,
        confidence: f32,
        latency_micros: u64,
        slice_mask: u64,
        gold: Option<f64>,
    ) -> ServeSample {
        ServeSample {
            ok,
            confidence_bin: overton_serving::confidence_bin(confidence),
            confidence_millionths: (f64::from(confidence) * 1e6) as u64,
            latency_micros,
            slice_mask,
            gold_accuracy_millionths: gold.map(|g| (g * 1e6).round() as u64),
        }
    }

    #[test]
    fn windows_tumble_at_window_len_and_ring_is_bounded() {
        let mut stats = WindowedStats::new(vec!["hard".into()], 4, 2);
        let mut closed = Vec::new();
        for i in 0..20u64 {
            let s = sample(true, 0.8, 100, u64::from(i % 2 == 0), Some(1.0));
            if let Some(w) = stats.ingest(&s) {
                closed.push(w);
            }
        }
        assert_eq!(closed.len(), 5);
        assert_eq!(stats.closed(), 5);
        // Ring keeps the last two; three were evicted.
        assert_eq!(stats.windows().count(), 2);
        assert_eq!(stats.evicted(), 3);
        assert_eq!(stats.latest().unwrap().index, 4);
        assert_eq!(stats.open_count(), 0);
        let w = &closed[0];
        assert_eq!(w.overall.count, 4);
        assert_eq!(w.slices[0].count, 2);
        assert!((w.slice_share(0) - 0.5).abs() < 1e-12);
        assert_eq!(w.overall.gold_accuracy(), Some(1.0));
    }

    #[test]
    fn errors_count_overall_but_not_in_slices() {
        let mut stats = WindowedStats::new(vec!["hard".into()], 3, 4);
        stats.ingest(&sample(true, 0.9, 10, 1, None));
        stats.ingest(&sample(false, 0.0, 5, 0, None));
        let w = stats.ingest(&sample(true, 0.5, 10, 1, Some(0.0))).unwrap();
        assert_eq!(w.overall.count, 3);
        assert_eq!(w.overall.errors, 1);
        assert_eq!(w.overall.served(), 2);
        assert!((w.overall.error_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(w.slices[0].count, 2);
        assert_eq!(w.slices[0].errors, 0);
        assert!((w.overall.mean_confidence() - 0.7).abs() < 1e-6);
        assert_eq!(w.overall.gold_accuracy(), Some(0.0));
    }

    #[test]
    fn window_latency_quantiles_are_defined_everywhere() {
        let empty = WindowRecord::empty(0, 0);
        assert_eq!(empty.latency_quantile(0.5), Duration::ZERO);
        assert_eq!(empty.mean_latency(), Duration::ZERO);
        let mut stats = WindowedStats::new(vec![], 3, 4);
        stats.ingest(&sample(true, 0.5, 10, 0, None));
        stats.ingest(&sample(true, 0.5, 100, 0, None));
        let w = stats.ingest(&sample(true, 0.5, 10_000, 0, None)).unwrap();
        assert!(w.latency_quantile(0.0) <= w.latency_quantile(0.5));
        assert!(w.latency_quantile(0.5) <= w.latency_quantile(1.0));
        assert!(w.latency_quantile(1.0) >= Duration::from_micros(10_000));
        assert!(w.latency_quantile(-1.0) == w.latency_quantile(0.0));
        assert!(w.latency_quantile(2.0) == w.latency_quantile(1.0));
    }

    #[test]
    fn push_closed_reconstructs_ingested_state() {
        let names = vec!["hard".to_string(), "rare".to_string()];
        let mut live = WindowedStats::new(names.clone(), 5, 3);
        let mut logged = Vec::new();
        for i in 0..35u64 {
            let s = sample(i % 7 != 0, 0.1 + (i % 9) as f32 * 0.1, i * 3, i % 4, Some(0.5));
            if let Some(w) = live.ingest(&s) {
                logged.push(w);
            }
        }
        let mut replayed = WindowedStats::new(names, 5, 3);
        for w in logged {
            replayed.push_closed(w);
        }
        assert_eq!(live, replayed);
    }

    #[test]
    fn csv_export_escapes_group_names() {
        let mut stats = WindowedStats::new(vec!["hard, rare".into()], 2, 4);
        stats.ingest(&sample(true, 0.9, 10, 1, None));
        stats.ingest(&sample(true, 0.9, 10, 0, None));
        let mut buf = Vec::new();
        stats.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().count() >= 3);
        assert!(text.contains("\"hard, rare\""), "{text}");
        assert!(text.starts_with("window,group"));
    }
}

//! i8 symmetric per-row quantization for inference-only weights.
//!
//! The cascade's small model (Overton §2.4) exists to be cheap, so its
//! affine layers can trade a little precision for a lot of bandwidth:
//! weights are stored transposed (one row per output channel) as `i8`
//! with a per-row symmetric scale, activations are quantized dynamically
//! per example row, and the affine kernel accumulates `i8 x i8` products
//! in `i32` before one dequantizing multiply per output. Quantization is
//! a deploy-time conversion — training and the large model stay `f32`.

use crate::matrix::Matrix;

/// Symmetric quantization bound: values map into `[-127, 127]` so the
/// scheme has no zero-point and negation stays exact.
const QMAX: f32 = 127.0;

/// An `i8` matrix with one symmetric scale per row.
///
/// Stored row-major like [`Matrix`]; element `(r, c)` reconstructs as
/// `data[r][c] as f32 * scale[r]`.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes a matrix row-wise: each row gets scale `max_abs / 127`
    /// (zero for an all-zero row) and round-to-nearest `i8` codes.
    pub fn quantize(m: &Matrix) -> Self {
        let (rows, cols) = m.shape();
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = m.row(r);
            let max_abs = row.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()));
            if max_abs == 0.0 {
                scales.push(0.0);
                data.extend(std::iter::repeat_n(0i8, cols));
            } else {
                let scale = max_abs / QMAX;
                scales.push(scale);
                data.extend(row.iter().map(|&x| (x / scale).round().clamp(-QMAX, QMAX) as i8));
            }
        }
        Self { rows, cols, data, scales }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reconstructs the nearest `f32` matrix (for tests and telemetry).
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let scale = self.scales[r];
            let codes = &self.data[r * self.cols..(r + 1) * self.cols];
            for (slot, &q) in out.row_mut(r).iter_mut().zip(codes) {
                *slot = f32::from(q) * scale;
            }
        }
        out
    }

    /// Worst-case reconstruction error of any element, `max |deq - orig|`.
    pub fn reconstruction_error(&self, original: &Matrix) -> f32 {
        self.dequantize().max_abs_diff(original)
    }
}

/// A deploy-time quantized affine layer `y = x * W + b`.
///
/// `W` (given `in_dim x out_dim`, as a [`crate::ParamStore`] stores it)
/// is kept transposed so each output channel is one contiguous `i8` row —
/// the inner product runs over `i8` codes with an `i32` accumulator and
/// dequantizes once per output element.
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    /// `out_dim x in_dim`: row `o` holds output channel `o`'s weights.
    weight_t: QuantizedMatrix,
    bias: Option<Matrix>,
}

impl QuantizedLinear {
    /// Quantizes an `in_dim x out_dim` weight (and optional `1 x out_dim`
    /// bias, kept `f32`) into the transposed per-channel representation.
    pub fn new(weight: &Matrix, bias: Option<&Matrix>) -> Self {
        Self { weight_t: QuantizedMatrix::quantize(&weight.transpose()), bias: bias.cloned() }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight_t.cols()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight_t.rows()
    }

    /// The quantized affine kernel: dynamically quantizes each row of `x`
    /// (per-row symmetric scale), accumulates `i8 x i8` products in
    /// `i32`, and dequantizes with the product of the two scales.
    ///
    /// # Panics
    /// Panics if `x.cols() != in_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let (m, k) = x.shape();
        assert_eq!(k, self.in_dim(), "quantized affine input width mismatch");
        let out_dim = self.out_dim();
        let mut out = Matrix::zeros(m, out_dim);
        // Serving runs this on many tiny (often 1-row) inputs — slice
        // heads, set elements, attention projections — so the activation
        // scratch row lives on the stack whenever it fits.
        let mut qx_stack = [0i8; 512];
        let mut qx_heap;
        let qx: &mut [i8] = if k <= qx_stack.len() {
            &mut qx_stack[..k]
        } else {
            qx_heap = vec![0i8; k];
            &mut qx_heap
        };
        let bias_row = self.bias.as_ref().map(|b| b.row(0));
        for r in 0..m {
            let row = x.row(r);
            let max_abs = row.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
            let out_row = out.row_mut(r);
            if max_abs == 0.0 || !max_abs.is_finite() {
                // Zero (or non-finite, which quantization cannot honor)
                // activations contribute nothing: the affine output is
                // just the bias.
                if let Some(b) = bias_row {
                    out_row.copy_from_slice(b);
                }
                continue;
            }
            let x_scale = max_abs / QMAX;
            let inv_scale = QMAX / max_abs;
            for (slot, &v) in qx.iter_mut().zip(row) {
                // Branchless round-half-away-from-zero: adding a
                // sign-matched 0.5 then truncating matches `f32::round`
                // without the per-element libm call the baseline target
                // would otherwise emit.
                let scaled = v * inv_scale;
                let rounded = (scaled + f32::copysign(0.5, scaled)) as i32;
                *slot = rounded.clamp(-127, 127) as i8;
            }
            for (o, slot) in out_row.iter_mut().enumerate() {
                let codes = &self.weight_t.data[o * k..(o + 1) * k];
                let mut acc = 0i32;
                // i8 x i8 fits in i16 exactly (|x| <= 127), and the
                // narrower product lets the autovectorizer use widening
                // multiply-add instead of full i32 lane multiplies.
                for (&xa, &wb) in qx.iter().zip(codes) {
                    acc += i32::from(i16::from(xa) * i16::from(wb));
                }
                let bias = bias_row.map_or(0.0, |b| b[o]);
                *slot = acc as f32 * (x_scale * self.weight_t.scales[o]) + bias;
            }
        }
        out
    }

    /// Total `i8` weight count (for size/telemetry reporting).
    pub fn weight_count(&self) -> usize {
        self.weight_t.rows() * self.weight_t.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut SmallRng, rows: usize, cols: usize) -> Matrix {
        let data = (0..rows * cols).map(|_| rng.gen_range(-1.5f32..1.5)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = random_matrix(&mut rng, 12, 33);
        let q = QuantizedMatrix::quantize(&m);
        // Symmetric round-to-nearest: error is at most half a step per row.
        for r in 0..m.rows() {
            let max_abs = m.row(r).iter().fold(0.0f32, |a, &x| a.max(x.abs()));
            let step = max_abs / 127.0;
            let deq = q.dequantize();
            for c in 0..m.cols() {
                assert!((deq[(r, c)] - m[(r, c)]).abs() <= step * 0.5 + 1e-7);
            }
        }
    }

    #[test]
    fn zero_rows_quantize_to_zero() {
        let m = Matrix::zeros(3, 5);
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn affine_tracks_f32_reference() {
        let mut rng = SmallRng::seed_from_u64(11);
        let w = random_matrix(&mut rng, 48, 24);
        let b = random_matrix(&mut rng, 1, 24);
        let x = random_matrix(&mut rng, 9, 48);
        let ql = QuantizedLinear::new(&w, Some(&b));
        let exact = {
            let mut y = x.matmul(&w);
            for r in 0..y.rows() {
                for c in 0..y.cols() {
                    y[(r, c)] += b[(0, c)];
                }
            }
            y
        };
        let approx = ql.forward(&x);
        assert_eq!(approx.shape(), exact.shape());
        // Per-term error is ~|w|*dx + |x|*dw ~ 0.02 here; 48 random-sign
        // terms keep the sum error well under 0.15.
        assert!(exact.max_abs_diff(&approx) < 0.15, "err {}", exact.max_abs_diff(&approx));
    }

    #[test]
    fn zero_activations_pass_bias_through() {
        let mut rng = SmallRng::seed_from_u64(3);
        let w = random_matrix(&mut rng, 6, 4);
        let b = Matrix::row_vector(&[1.0, -2.0, 3.0, -4.0]);
        let ql = QuantizedLinear::new(&w, Some(&b));
        let y = ql.forward(&Matrix::zeros(2, 6));
        assert_eq!(y.row(0), b.row(0));
        assert_eq!(y.row(1), b.row(0));
    }

    #[test]
    fn no_bias_affine_is_pure_product() {
        let w = Matrix::eye(3);
        let ql = QuantizedLinear::new(&w, None);
        let x = Matrix::from_rows(&[vec![1.0, -0.5, 0.25]]);
        let y = ql.forward(&x);
        assert!(x.max_abs_diff(&y) < 0.01);
    }
}

//! Dense, row-major, 2-D `f32` matrices.
//!
//! Everything in the Overton tensor engine is a matrix: a scalar is `[1, 1]`,
//! a vector is `[1, n]`, a token sequence embedded to dimension `d` is
//! `[seq_len, d]`, and a set of `k` candidate entities is `[k, d]`. Keeping a
//! single concrete rank makes the autograd rules small and easy to verify by
//! finite differences.

use crate::kernels;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of {} elements cannot back a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 0.0)
    }

    /// Creates a matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates a `1 x 1` matrix holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// Creates a `1 x n` row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows in from_rows");
            data.extend_from_slice(r);
        }
        Self::from_vec(rows.len(), cols, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the single element of a `1 x 1` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not `1 x 1`.
    pub fn scalar_value(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar_value on a {}x{} matrix", self.rows, self.cols);
        self.data[0]
    }

    /// Element-wise map, producing a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combine with another matrix of the same shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self += other`, element-wise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other`, element-wise (axpy).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales all elements in place.
    pub fn scale_inplace(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Matrix product `self * other`.
    ///
    /// Dispatches to the cache-blocked kernels (`kernels` module) above
    /// a size cutoff; small shapes use the naive loops. Both paths
    /// accumulate each output element in the same strictly-increasing-k
    /// order, so the result is bit-identical regardless of dispatch.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];
        if kernels::use_blocked(m, k, n) {
            kernels::gemm(m, k, n, &self.data, &other.data, &mut out);
        } else if kernels::probe_sparse(&self.data) {
            // Sparse operand (e.g. one-hot selections): skipping a zero
            // saves the whole n-wide inner loop, worth a branch per k.
            for i in 0..m {
                let a_row = &self.data[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (kk, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &other.data[kk * n..(kk + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        } else {
            // i-k-j loop order keeps the inner loop contiguous in both
            // `other` and `out`, which lets LLVM vectorize it.
            for i in 0..m {
                let a_row = &self.data[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (kk, &a) in a_row.iter().enumerate() {
                    let b_row = &other.data[kk * n..(kk + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        }
        Self::from_vec(m, n, out)
    }

    /// Matrix product `self * other^T`.
    ///
    /// Blocked-kernel dispatch as in [`Matrix::matmul`].
    ///
    /// # Panics
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transpose_b(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = vec![0.0f32; m * n];
        if kernels::use_blocked(m, k, n) {
            kernels::gemm_bt(m, k, n, &self.data, &other.data, &mut out);
        } else {
            for i in 0..m {
                let a_row = &self.data[i * k..(i + 1) * k];
                for j in 0..n {
                    let b_row = &other.data[j * k..(j + 1) * k];
                    out[i * n + j] = dot(a_row, b_row);
                }
            }
        }
        Self::from_vec(m, n, out)
    }

    /// Matrix product `self^T * other`.
    ///
    /// Blocked-kernel dispatch as in [`Matrix::matmul`].
    ///
    /// # Panics
    /// Panics if `self.rows() != other.rows()`.
    pub fn transpose_a_matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.rows, other.rows,
            "transpose_a_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.cols, self.rows, other.cols);
        let mut out = vec![0.0f32; m * n];
        if kernels::use_blocked(m, k, n) {
            kernels::gemm_at(m, k, n, &self.data, &other.data, &mut out);
        } else if kernels::probe_sparse(&self.data) {
            for kk in 0..k {
                let a_row = &self.data[kk * m..(kk + 1) * m];
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (i, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let out_row = &mut out[i * n..(i + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        } else {
            for kk in 0..k {
                let a_row = &self.data[kk * m..(kk + 1) * m];
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (i, &a) in a_row.iter().enumerate() {
                    let out_row = &mut out[i * n..(i + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        }
        Self::from_vec(m, n, out)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element within row `r` (first on ties).
    pub fn row_argmax(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        best
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Largest absolute difference against another matrix of the same shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Self::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Horizontally concatenates `self` with `other`.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = Self::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Returns a new matrix containing the given rows, in order.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut out = Self::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            assert!(r < self.rows, "select_rows index {r} out of {} rows", self.rows);
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Returns columns `lo..hi` as a new matrix.
    ///
    /// # Panics
    /// Panics if the range is invalid.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Self {
        assert!(
            lo <= hi && hi <= self.cols,
            "slice_cols range {lo}..{hi} out of {} cols",
            self.cols
        );
        let mut out = Self::zeros(self.rows, hi - lo);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[lo..hi]);
        }
        out
    }

    /// True if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:>9.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(12) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 12 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "buffer of 3 elements")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::eye(2)), a);
        assert_eq!(Matrix::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_transpose_variants_agree_with_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![0.0, 3.0, 1.0]]);
        let b = Matrix::from_rows(&[vec![2.0, 1.0, -1.0], vec![0.5, 0.0, 4.0]]);
        assert_eq!(a.matmul_transpose_b(&b), a.matmul(&b.transpose()));
        let c = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.transpose_a_matmul(&c).shape(), (3, 2));
        assert_eq!(a.transpose_a_matmul(&c), a.transpose().matmul(&c));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn stacking_and_slicing() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = a.hstack(&b);
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.slice_cols(1, 2).as_slice(), &[2.0, 4.0]);
        assert_eq!(v.select_rows(&[1, 0, 1]).row(0), &[3.0, 4.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 4.0]]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 1.5);
        assert_eq!(a.row_argmax(0), 0);
        assert_eq!(a.row_argmax(1), 1);
        assert!((a.frobenius_norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::ones(2, 2);
        let b = Matrix::full(2, 2, 3.0);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[7.0; 4]);
        a.scale_inplace(0.5);
        assert_eq!(a.as_slice(), &[3.5; 4]);
    }

    #[test]
    fn scalar_helpers() {
        assert_eq!(Matrix::scalar(4.25).scalar_value(), 4.25);
        assert_eq!(Matrix::row_vector(&[1.0, 2.0]).shape(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "scalar_value")]
    fn scalar_value_rejects_non_scalar() {
        let _ = Matrix::zeros(2, 1).scalar_value();
    }

    #[test]
    fn serde_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.5], vec![-3.0, 0.0]]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}

//! First-order optimizers over a [`ParamStore`].

use crate::matrix::Matrix;
use crate::params::ParamStore;

/// A gradient-descent style optimizer.
///
/// The usual step is: build a graph, `backward`, `flush_grads` into the
/// store, `step`, then `zero_grads`.
pub trait Optimizer {
    /// Applies one update using the gradients accumulated in `store`.
    /// Frozen parameters are left untouched.
    fn step(&mut self, store: &mut ParamStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and L2 weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Adds classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Adds L2 weight decay (added to the gradient).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        self.velocity.resize_with(store.len(), || None);
        let (lr, momentum, wd) = (self.lr, self.momentum, self.weight_decay);
        for id in store.ids().collect::<Vec<_>>() {
            if store.is_frozen(id) {
                continue;
            }
            // Fused single-pass update: no gradient clone, no velocity
            // clone, no temporaries — same arithmetic order as the
            // multi-pass version, so trajectories are bit-identical.
            let (value, grad) = store.value_and_grad_mut(id);
            let (rows, cols) = value.shape();
            let ws = value.as_mut_slice();
            let gs = grad.map(Matrix::as_slice);
            if momentum != 0.0 {
                let v =
                    self.velocity[id.0 as usize].get_or_insert_with(|| Matrix::zeros(rows, cols));
                for (i, (wi, vi)) in ws.iter_mut().zip(v.as_mut_slice()).enumerate() {
                    let g = gs.map_or(0.0, |g| g[i]);
                    let t = if wd != 0.0 { g + wd * *wi } else { g };
                    *vi = momentum * *vi + t;
                    *wi += -lr * *vi;
                }
            } else {
                for (i, wi) in ws.iter_mut().enumerate() {
                    let g = gs.map_or(0.0, |g| g[i]);
                    let t = if wd != 0.0 { g + wd * *wi } else { g };
                    *wi += -lr * t;
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Decoupled weight decay, applied directly to weights (AdamW style).
    weight_decay: f32,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// AdamW: decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Overrides the exponential decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.m.resize_with(store.len(), || None);
        self.v.resize_with(store.len(), || None);
        self.t += 1;
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, beta1, beta2, eps, wd) =
            (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        for id in store.ids().collect::<Vec<_>>() {
            if store.is_frozen(id) {
                continue;
            }
            let idx = id.0 as usize;
            // Fused single-pass update: moments and weights advance in one
            // sweep with no gradient clone; per-element arithmetic is
            // unchanged, so trajectories are bit-identical.
            let (value, grad) = store.value_and_grad_mut(id);
            let (rows, cols) = value.shape();
            let ws = value.as_mut_slice();
            let gs = grad.map(Matrix::as_slice);
            let m = self.m[idx].get_or_insert_with(|| Matrix::zeros(rows, cols));
            let v = self.v[idx].get_or_insert_with(|| Matrix::zeros(rows, cols));
            for (i, (wi, (mi, vi))) in
                ws.iter_mut().zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice())).enumerate()
            {
                let gi = gs.map_or(0.0, |g| g[i]);
                *mi = beta1 * *mi + (1.0 - beta1) * gi;
                *vi = beta2 * *vi + (1.0 - beta2) * gi * gi;
                let m_hat = *mi / bias1;
                let v_hat = *vi / bias2;
                *wi -= lr * (m_hat / (v_hat.sqrt() + eps) + wd * *wi);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimizes f(w) = (w - 3)^2 and checks convergence to 3.
    fn optimize_quadratic(mut opt: impl Optimizer, steps: usize) -> f32 {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Matrix::scalar(0.0));
        for _ in 0..steps {
            let mut g = Graph::new();
            let wn = g.param(&ps, w);
            let c = g.constant(Matrix::scalar(3.0));
            let d = g.sub(wn, c);
            let loss = g.mul(d, d);
            g.backward(loss);
            g.flush_grads(&mut ps);
            opt.step(&mut ps);
            ps.zero_grads();
        }
        ps.value(w).scalar_value()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = optimize_quadratic(Sgd::new(0.1), 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = optimize_quadratic(Sgd::new(0.05).with_momentum(0.9), 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = optimize_quadratic(Adam::new(0.1), 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn frozen_params_do_not_move() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Matrix::scalar(1.0));
        ps.freeze(w);
        ps.grad_mut(w).add_assign(&Matrix::scalar(10.0));
        let mut opt = Sgd::new(0.5);
        opt.step(&mut ps);
        assert_eq!(ps.value(w).scalar_value(), 1.0);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Matrix::scalar(1.0));
        // No task gradient, only decay.
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        opt.step(&mut ps);
        assert!((ps.value(w).scalar_value() - 0.95).abs() < 1e-6);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Adam::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}

//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Graph`] is a define-by-run tape: every operation appends a node that
//! records its inputs, so nodes are already in topological order and
//! [`Graph::backward`] is a single reverse sweep. A fresh graph is built per
//! training step; learnable parameters live outside the graph in a
//! [`ParamStore`](crate::params::ParamStore) and are brought in as leaf nodes
//! with [`Graph::param`].

use crate::matrix::{dot, Matrix};
use crate::params::{ParamId, ParamStore};

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The operation that produced a node, with everything backward needs.
enum Op {
    /// Leaf value. `param` links back to the [`ParamStore`] entry so its
    /// gradient can be flushed after the backward pass.
    Leaf {
        param: Option<ParamId>,
    },
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Scale(NodeId, f32),
    AddScalar(NodeId),
    Neg(NodeId),
    Matmul(NodeId, NodeId),
    /// `out = a + broadcast(bias)` where `bias` is `1 x n`.
    AddRowBroadcast(NodeId, NodeId),
    /// `out[i, :] = a[i, :] * s[i, 0]` where `s` is `m x 1`.
    MulRowScalar(NodeId, NodeId),
    Relu(NodeId),
    Tanh(NodeId),
    Sigmoid(NodeId),
    Exp(NodeId),
    /// Natural log of inputs clamped to `>= LN_CLAMP`.
    Ln(NodeId),
    SumAll(NodeId),
    MeanAll(NodeId),
    SumRows(NodeId),
    MeanRows(NodeId),
    /// Column-wise max over rows; `argmax[j]` is the winning row per column.
    MaxRows {
        x: NodeId,
        argmax: Vec<u32>,
    },
    SoftmaxRows(NodeId),
    ConcatRows(Vec<NodeId>),
    ConcatCols(Vec<NodeId>),
    /// Gather rows of `x` by index (also the embedding lookup primitive).
    SelectRows {
        x: NodeId,
        indices: Vec<u32>,
    },
    SliceCols {
        x: NodeId,
        lo: usize,
    },
    ReverseRows(NodeId),
    Transpose(NodeId),
    /// Sliding-window unfold for 1-D convolution: row `t` of the output is
    /// the concatenation of rows `t - pad .. t - pad + k` of the input
    /// (zeros outside), so a convolution is `im2row(x) * W`.
    Im2Row {
        x: NodeId,
        k: usize,
        pad: usize,
    },
    /// Fused softmax cross-entropy against a constant target distribution,
    /// with constant per-row weights. Produces a scalar.
    CrossEntropy {
        logits: NodeId,
        targets: Matrix,
        row_weights: Vec<f32>,
        weight_sum: f32,
    },
    /// Fused sigmoid binary cross-entropy with a constant per-element mask.
    BceWithLogits {
        logits: NodeId,
        targets: Matrix,
        mask: Matrix,
        mask_sum: f32,
    },
    /// Per-row layer normalization with learnable gain/bias (each `1 x n`).
    LayerNorm {
        x: NodeId,
        gain: NodeId,
        bias: NodeId,
        normalized: Matrix,
        inv_std: Vec<f32>,
    },
}

/// Inputs to the natural-log op ([`Graph::ln`]) are clamped to this value
/// to keep the op total.
pub const LN_CLAMP: f32 = 1e-12;

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
    needs_grad: bool,
}

/// A define-by-run computation tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// When present, [`Graph::param`] memoizes: the first use of a parameter
    /// inserts a leaf, later uses return the same node instead of cloning the
    /// weight matrix again. See [`Graph::with_param_cache`].
    param_cache: Option<std::collections::HashMap<ParamId, NodeId>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self { nodes: Vec::with_capacity(64), param_cache: None }
    }

    /// Creates an empty graph that memoizes [`Graph::param`]: each parameter
    /// is brought in as a leaf once and every later use shares that node.
    ///
    /// [`Graph::param`] copies the weight matrix into the tape, so a loop
    /// that runs many forward passes through one graph (batched inference)
    /// would otherwise re-copy every weight — including embedding tables —
    /// per example. Sharing the leaf amortizes that cost across the batch.
    /// Gradients still flush correctly (they accumulate on the shared node),
    /// but the cache assumes the [`ParamStore`] is not mutated while the
    /// graph is alive, which is why it is opt-in rather than the default.
    pub fn with_param_cache() -> Self {
        Self { nodes: Vec::with_capacity(64), param_cache: Some(std::collections::HashMap::new()) }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.idx()].value
    }

    /// The gradient accumulated on a node by [`backward`](Self::backward),
    /// or `None` if the node did not require gradients (or backward has not
    /// run).
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.nodes[id.idx()].grad.as_ref()
    }

    fn push(&mut self, value: Matrix, op: Op, needs_grad: bool) -> NodeId {
        debug_assert!(value.all_finite(), "non-finite forward value");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { value, grad: None, op, needs_grad });
        id
    }

    fn needs(&self, id: NodeId) -> bool {
        self.nodes[id.idx()].needs_grad
    }

    // ---- leaves -----------------------------------------------------------

    /// Adds a differentiable leaf (used for inputs in gradient checking).
    pub fn leaf(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf { param: None }, true)
    }

    /// Adds a constant leaf that never receives a gradient.
    pub fn constant(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf { param: None }, false)
    }

    /// Brings a parameter from `store` into the graph as a leaf node. After
    /// [`backward`](Self::backward), call
    /// [`flush_grads`](Self::flush_grads) to push the gradient back.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        if let Some(cache) = &self.param_cache {
            if let Some(&node) = cache.get(&id) {
                return node;
            }
        }
        let node = self.push(store.value(id).clone(), Op::Leaf { param: Some(id) }, true);
        if let Some(cache) = &mut self.param_cache {
            cache.insert(id, node);
        }
        node
    }

    // ---- arithmetic -------------------------------------------------------

    /// Element-wise sum of two same-shaped nodes.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Add(a, b), ng)
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Sub(a, b), ng)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Mul(a, b), ng)
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.value(a).map(|x| x * c);
        let ng = self.needs(a);
        self.push(v, Op::Scale(a, c), ng)
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.value(a).map(|x| x + c);
        let ng = self.needs(a);
        self.push(v, Op::AddScalar(a), ng)
    }

    /// Element-wise negation.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| -x);
        let ng = self.needs(a);
        self.push(v, Op::Neg(a), ng)
    }

    /// Matrix product `a * b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Matmul(a, b), ng)
    }

    /// Adds a `1 x n` bias row to every row of an `m x n` node.
    pub fn add_row_broadcast(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let (av, bv) = (self.value(a), self.value(bias));
        assert_eq!(bv.rows(), 1, "bias must be a row vector");
        assert_eq!(av.cols(), bv.cols(), "bias width mismatch");
        let mut v = av.clone();
        for r in 0..v.rows() {
            for (o, &b) in v.row_mut(r).iter_mut().zip(bv.row(0)) {
                *o += b;
            }
        }
        let ng = self.needs(a) || self.needs(bias);
        self.push(v, Op::AddRowBroadcast(a, bias), ng)
    }

    /// Scales row `i` of an `m x n` node by element `i` of an `m x 1` node.
    pub fn mul_row_scalar(&mut self, a: NodeId, s: NodeId) -> NodeId {
        let (av, sv) = (self.value(a), self.value(s));
        assert_eq!(sv.cols(), 1, "row scalars must be a column vector");
        assert_eq!(av.rows(), sv.rows(), "row scalar length mismatch");
        let mut v = av.clone();
        for r in 0..v.rows() {
            let c = sv[(r, 0)];
            for o in v.row_mut(r) {
                *o *= c;
            }
        }
        let ng = self.needs(a) || self.needs(s);
        self.push(v, Op::MulRowScalar(a, s), ng)
    }

    // ---- activations ------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(0.0));
        let ng = self.needs(a);
        self.push(v, Op::Relu(a), ng)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::tanh);
        let ng = self.needs(a);
        self.push(v, Op::Tanh(a), ng)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(stable_sigmoid);
        let ng = self.needs(a);
        self.push(v, Op::Sigmoid(a), ng)
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::exp);
        let ng = self.needs(a);
        self.push(v, Op::Exp(a), ng)
    }

    /// Element-wise natural log of inputs clamped to [`LN_CLAMP`].
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(LN_CLAMP).ln());
        let ng = self.needs(a);
        self.push(v, Op::Ln(a), ng)
    }

    // ---- reductions -------------------------------------------------------

    /// Sum of all elements, as a `1 x 1` node.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::scalar(self.value(a).sum());
        let ng = self.needs(a);
        self.push(v, Op::SumAll(a), ng)
    }

    /// Mean of all elements, as a `1 x 1` node.
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::scalar(self.value(a).mean());
        let ng = self.needs(a);
        self.push(v, Op::MeanAll(a), ng)
    }

    /// Column-wise sum over rows: `m x n -> 1 x n`.
    pub fn sum_rows(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        let mut v = Matrix::zeros(1, av.cols());
        for r in 0..av.rows() {
            for (o, &x) in v.row_mut(0).iter_mut().zip(av.row(r)) {
                *o += x;
            }
        }
        let ng = self.needs(a);
        self.push(v, Op::SumRows(a), ng)
    }

    /// Column-wise mean over rows: `m x n -> 1 x n`.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        assert!(av.rows() > 0, "mean_rows over an empty matrix");
        let inv = 1.0 / av.rows() as f32;
        let mut v = Matrix::zeros(1, av.cols());
        for r in 0..av.rows() {
            for (o, &x) in v.row_mut(0).iter_mut().zip(av.row(r)) {
                *o += x * inv;
            }
        }
        let ng = self.needs(a);
        self.push(v, Op::MeanRows(a), ng)
    }

    /// Column-wise max over rows: `m x n -> 1 x n`.
    pub fn max_rows(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        assert!(av.rows() > 0, "max_rows over an empty matrix");
        let mut v = Matrix::zeros(1, av.cols());
        let mut argmax = vec![0u32; av.cols()];
        for j in 0..av.cols() {
            let mut best = f32::NEG_INFINITY;
            for r in 0..av.rows() {
                if av[(r, j)] > best {
                    best = av[(r, j)];
                    argmax[j] = r as u32;
                }
            }
            v[(0, j)] = best;
        }
        let ng = self.needs(a);
        self.push(v, Op::MaxRows { x: a, argmax }, ng)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        let mut v = av.clone();
        for r in 0..v.rows() {
            softmax_in_place(v.row_mut(r));
        }
        let ng = self.needs(a);
        self.push(v, Op::SoftmaxRows(a), ng)
    }

    // ---- shape ops --------------------------------------------------------

    /// Vertically stacks nodes (all must share a column count).
    ///
    /// # Panics
    /// Panics if `parts` is empty.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let mut v = self.value(parts[0]).clone();
        for &p in &parts[1..] {
            v = v.vstack(self.value(p));
        }
        let ng = parts.iter().any(|&p| self.needs(p));
        self.push(v, Op::ConcatRows(parts.to_vec()), ng)
    }

    /// Horizontally concatenates nodes (all must share a row count).
    ///
    /// # Panics
    /// Panics if `parts` is empty.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let mut v = self.value(parts[0]).clone();
        for &p in &parts[1..] {
            v = v.hstack(self.value(p));
        }
        let ng = parts.iter().any(|&p| self.needs(p));
        self.push(v, Op::ConcatCols(parts.to_vec()), ng)
    }

    /// Gathers rows of `a` by index. Row indices may repeat; gradients
    /// scatter-add. This is also the embedding lookup primitive.
    pub fn select_rows(&mut self, a: NodeId, indices: &[usize]) -> NodeId {
        let av = self.value(a);
        let v = av.select_rows(indices);
        let idx: Vec<u32> = indices.iter().map(|&i| i as u32).collect();
        let ng = self.needs(a);
        self.push(v, Op::SelectRows { x: a, indices: idx }, ng)
    }

    /// Takes columns `lo..hi` of a node.
    pub fn slice_cols(&mut self, a: NodeId, lo: usize, hi: usize) -> NodeId {
        let v = self.value(a).slice_cols(lo, hi);
        let ng = self.needs(a);
        self.push(v, Op::SliceCols { x: a, lo }, ng)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).transpose();
        let ng = self.needs(a);
        self.push(v, Op::Transpose(a), ng)
    }

    /// Reverses the row order (used by backward RNN passes).
    pub fn reverse_rows(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        let rev: Vec<usize> = (0..av.rows()).rev().collect();
        let v = av.select_rows(&rev);
        let ng = self.needs(a);
        self.push(v, Op::ReverseRows(a), ng)
    }

    /// Sliding-window unfold: row `t` of the result is the concatenation of
    /// rows `t - pad .. t - pad + k` of `a`, with zeros outside the matrix.
    /// `im2row(x, k, k/2) * W` is a same-length 1-D convolution.
    pub fn im2row(&mut self, a: NodeId, k: usize, pad: usize) -> NodeId {
        let av = self.value(a);
        let (t_len, d) = av.shape();
        let mut v = Matrix::zeros(t_len, k * d);
        for t in 0..t_len {
            for o in 0..k {
                let src = t as isize + o as isize - pad as isize;
                if src >= 0 && (src as usize) < t_len {
                    v.row_mut(t)[o * d..(o + 1) * d].copy_from_slice(av.row(src as usize));
                }
            }
        }
        let ng = self.needs(a);
        self.push(v, Op::Im2Row { x: a, k, pad }, ng)
    }

    // ---- fused losses -----------------------------------------------------

    /// Softmax cross-entropy of `logits` (`m x n`) against a constant target
    /// distribution (`m x n`, rows sum to 1), weighted per row. Returns the
    /// scalar `-(sum_i w_i <t_i, log softmax(x_i)>) / max(sum_i w_i, eps)`.
    ///
    /// Probabilistic targets are how weak supervision enters training: the
    /// label model's posterior over classes is used directly as `targets`.
    pub fn cross_entropy(
        &mut self,
        logits: NodeId,
        targets: &Matrix,
        row_weights: &[f32],
    ) -> NodeId {
        let lv = self.value(logits);
        assert_eq!(lv.shape(), targets.shape(), "cross_entropy target shape mismatch");
        assert_eq!(lv.rows(), row_weights.len(), "cross_entropy weight length mismatch");
        let weight_sum = row_weights.iter().sum::<f32>().max(1e-12);
        let mut loss = 0.0f64;
        for (r, &weight) in row_weights.iter().enumerate() {
            if weight == 0.0 {
                continue;
            }
            let row = lv.row(r);
            let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let logsum =
                row.iter().map(|&x| ((x - max) as f64).exp()).sum::<f64>().ln() + max as f64;
            let mut row_loss = 0.0f64;
            for (j, &t) in targets.row(r).iter().enumerate() {
                if t != 0.0 {
                    row_loss -= t as f64 * (row[j] as f64 - logsum);
                }
            }
            loss += weight as f64 * row_loss;
        }
        let v = Matrix::scalar((loss / weight_sum as f64) as f32);
        let ng = self.needs(logits);
        self.push(
            v,
            Op::CrossEntropy {
                logits,
                targets: targets.clone(),
                row_weights: row_weights.to_vec(),
                weight_sum,
            },
            ng,
        )
    }

    /// Sigmoid binary cross-entropy of `logits` against constant targets in
    /// `[0, 1]`, with a constant mask (0 drops an element from the loss).
    /// Returns `sum(mask * bce) / max(sum(mask), eps)` as a scalar, computed
    /// with the numerically stable `max(x,0) - x*t + ln(1 + e^-|x|)` form.
    pub fn bce_with_logits(&mut self, logits: NodeId, targets: &Matrix, mask: &Matrix) -> NodeId {
        let lv = self.value(logits);
        assert_eq!(lv.shape(), targets.shape(), "bce target shape mismatch");
        assert_eq!(lv.shape(), mask.shape(), "bce mask shape mismatch");
        let mask_sum = mask.sum().max(1e-12);
        let mut loss = 0.0f64;
        for ((&x, &t), &m) in lv.as_slice().iter().zip(targets.as_slice()).zip(mask.as_slice()) {
            if m == 0.0 {
                continue;
            }
            let term = x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
            loss += (m * term) as f64;
        }
        let v = Matrix::scalar((loss / mask_sum as f64) as f32);
        let ng = self.needs(logits);
        self.push(
            v,
            Op::BceWithLogits { logits, targets: targets.clone(), mask: mask.clone(), mask_sum },
            ng,
        )
    }

    /// Per-row layer normalization with learnable `gain` and `bias`
    /// (both `1 x n`): `y = gain * (x - mean) / sqrt(var + eps) + bias`.
    pub fn layer_norm(&mut self, x: NodeId, gain: NodeId, bias: NodeId, eps: f32) -> NodeId {
        let xv = self.value(x);
        let (m, n) = xv.shape();
        assert_eq!(self.value(gain).shape(), (1, n), "layer_norm gain shape");
        assert_eq!(self.value(bias).shape(), (1, n), "layer_norm bias shape");
        let mut normalized = Matrix::zeros(m, n);
        let mut inv_std = vec![0.0f32; m];
        for r in 0..m {
            let row = xv.row(r);
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
            let is = 1.0 / (var + eps).sqrt();
            inv_std[r] = is;
            for (j, &v) in row.iter().enumerate() {
                normalized[(r, j)] = (v - mean) * is;
            }
        }
        let gv = self.value(gain).clone();
        let bv = self.value(bias).clone();
        let mut out = Matrix::zeros(m, n);
        for r in 0..m {
            for j in 0..n {
                out[(r, j)] = gv[(0, j)] * normalized[(r, j)] + bv[(0, j)];
            }
        }
        let ng = self.needs(x) || self.needs(gain) || self.needs(bias);
        self.push(out, Op::LayerNorm { x, gain, bias, normalized, inv_std }, ng)
    }

    // ---- backward ---------------------------------------------------------

    /// Runs the reverse sweep from a scalar `loss` node, accumulating
    /// gradients on every node that requires them.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward requires a scalar loss");
        self.nodes[loss.idx()].grad = Some(Matrix::scalar(1.0));
        for i in (0..=loss.idx()).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let Some(g) = self.nodes[i].grad.take() else { continue };
            self.step_backward(i, &g);
            self.nodes[i].grad = Some(g);
        }
    }

    fn accumulate(&mut self, id: NodeId, delta: &Matrix) {
        let node = &mut self.nodes[id.idx()];
        if !node.needs_grad {
            return;
        }
        match &mut node.grad {
            Some(g) => g.add_assign(delta),
            None => node.grad = Some(delta.clone()),
        }
    }

    fn accumulate_owned(&mut self, id: NodeId, delta: Matrix) {
        let node = &mut self.nodes[id.idx()];
        if !node.needs_grad {
            return;
        }
        match &mut node.grad {
            Some(g) => g.add_assign(&delta),
            None => node.grad = Some(delta),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step_backward(&mut self, i: usize, g: &Matrix) {
        // `op` is moved out and restored so we can mutate other nodes while
        // reading the recorded operands.
        let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf { param: None });
        match &op {
            Op::Leaf { .. } => {}
            Op::Add(a, b) => {
                self.accumulate(*a, g);
                self.accumulate(*b, g);
            }
            Op::Sub(a, b) => {
                self.accumulate(*a, g);
                self.accumulate_owned(*b, g.map(|x| -x));
            }
            Op::Mul(a, b) => {
                let da = g.zip(self.value(*b), |gg, bb| gg * bb);
                let db = g.zip(self.value(*a), |gg, aa| gg * aa);
                self.accumulate_owned(*a, da);
                self.accumulate_owned(*b, db);
            }
            Op::Scale(a, c) => {
                self.accumulate_owned(*a, g.map(|x| x * c));
            }
            Op::AddScalar(a) => {
                self.accumulate(*a, g);
            }
            Op::Neg(a) => {
                self.accumulate_owned(*a, g.map(|x| -x));
            }
            Op::Matmul(a, b) => {
                // d/da (a b) = g b^T ; d/db (a b) = a^T g
                let da = g.matmul_transpose_b(self.value(*b));
                let db = self.value(*a).transpose_a_matmul(g);
                self.accumulate_owned(*a, da);
                self.accumulate_owned(*b, db);
            }
            Op::AddRowBroadcast(a, bias) => {
                self.accumulate(*a, g);
                let mut db = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (o, &x) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                        *o += x;
                    }
                }
                self.accumulate_owned(*bias, db);
            }
            Op::MulRowScalar(a, s) => {
                let sv = self.value(*s).clone();
                let av = self.value(*a).clone();
                let mut da = g.clone();
                let mut ds = Matrix::zeros(sv.rows(), 1);
                for r in 0..g.rows() {
                    let c = sv[(r, 0)];
                    for o in da.row_mut(r) {
                        *o *= c;
                    }
                    ds[(r, 0)] = dot(g.row(r), av.row(r));
                }
                self.accumulate_owned(*a, da);
                self.accumulate_owned(*s, ds);
            }
            Op::Relu(a) => {
                let da = g.zip(self.value(*a), |gg, x| if x > 0.0 { gg } else { 0.0 });
                self.accumulate_owned(*a, da);
            }
            Op::Tanh(a) => {
                let y = &self.nodes[i].value;
                let da = g.zip(y, |gg, yy| gg * (1.0 - yy * yy));
                self.accumulate_owned(*a, da);
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[i].value;
                let da = g.zip(y, |gg, yy| gg * yy * (1.0 - yy));
                self.accumulate_owned(*a, da);
            }
            Op::Exp(a) => {
                let y = &self.nodes[i].value;
                let da = g.zip(y, |gg, yy| gg * yy);
                self.accumulate_owned(*a, da);
            }
            Op::Ln(a) => {
                let da = g.zip(self.value(*a), |gg, x| gg / x.max(LN_CLAMP));
                self.accumulate_owned(*a, da);
            }
            Op::SumAll(a) => {
                let c = g.scalar_value();
                let (r, cl) = self.value(*a).shape();
                self.accumulate_owned(*a, Matrix::full(r, cl, c));
            }
            Op::MeanAll(a) => {
                let (r, cl) = self.value(*a).shape();
                let c = g.scalar_value() / (r * cl) as f32;
                self.accumulate_owned(*a, Matrix::full(r, cl, c));
            }
            Op::SumRows(a) => {
                let (r, cl) = self.value(*a).shape();
                let mut da = Matrix::zeros(r, cl);
                for rr in 0..r {
                    da.row_mut(rr).copy_from_slice(g.row(0));
                }
                self.accumulate_owned(*a, da);
            }
            Op::MeanRows(a) => {
                let (r, cl) = self.value(*a).shape();
                let inv = 1.0 / r as f32;
                let mut da = Matrix::zeros(r, cl);
                for rr in 0..r {
                    for (o, &x) in da.row_mut(rr).iter_mut().zip(g.row(0)) {
                        *o = x * inv;
                    }
                }
                self.accumulate_owned(*a, da);
            }
            Op::MaxRows { x, argmax } => {
                let (r, cl) = self.value(*x).shape();
                let mut da = Matrix::zeros(r, cl);
                for (j, &win) in argmax.iter().enumerate() {
                    da[(win as usize, j)] = g[(0, j)];
                }
                self.accumulate_owned(*x, da);
            }
            Op::SoftmaxRows(a) => {
                // dx_row = y ∘ (g_row - <g_row, y_row>)
                let y = self.nodes[i].value.clone();
                let mut da = Matrix::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let inner = dot(g.row(r), y.row(r));
                    for j in 0..y.cols() {
                        da[(r, j)] = y[(r, j)] * (g[(r, j)] - inner);
                    }
                }
                self.accumulate_owned(*a, da);
            }
            Op::ConcatRows(parts) => {
                let mut offset = 0;
                for &p in parts {
                    let rows = self.value(p).rows();
                    let idx: Vec<usize> = (offset..offset + rows).collect();
                    let dp = g.select_rows(&idx);
                    self.accumulate_owned(p, dp);
                    offset += rows;
                }
            }
            Op::ConcatCols(parts) => {
                let mut offset = 0;
                for &p in parts {
                    let cols = self.value(p).cols();
                    let dp = g.slice_cols(offset, offset + cols);
                    self.accumulate_owned(p, dp);
                    offset += cols;
                }
            }
            Op::SelectRows { x, indices } => {
                let (r, cl) = self.value(*x).shape();
                let mut da = Matrix::zeros(r, cl);
                for (out_row, &src) in indices.iter().enumerate() {
                    for (o, &gg) in da.row_mut(src as usize).iter_mut().zip(g.row(out_row)) {
                        *o += gg;
                    }
                }
                self.accumulate_owned(*x, da);
            }
            Op::SliceCols { x, lo } => {
                let (r, cl) = self.value(*x).shape();
                let mut da = Matrix::zeros(r, cl);
                for rr in 0..r {
                    da.row_mut(rr)[*lo..lo + g.cols()].copy_from_slice(g.row(rr));
                }
                self.accumulate_owned(*x, da);
            }
            Op::ReverseRows(a) => {
                let rev: Vec<usize> = (0..g.rows()).rev().collect();
                self.accumulate_owned(*a, g.select_rows(&rev));
            }
            Op::Transpose(a) => {
                self.accumulate_owned(*a, g.transpose());
            }
            Op::Im2Row { x, k, pad } => {
                let (t_len, d) = self.value(*x).shape();
                let mut da = Matrix::zeros(t_len, d);
                for t in 0..t_len {
                    for o in 0..*k {
                        let src = t as isize + o as isize - *pad as isize;
                        if src >= 0 && (src as usize) < t_len {
                            let gslice = &g.row(t)[o * d..(o + 1) * d];
                            for (dst, &gg) in da.row_mut(src as usize).iter_mut().zip(gslice) {
                                *dst += gg;
                            }
                        }
                    }
                }
                self.accumulate_owned(*x, da);
            }
            Op::CrossEntropy { logits, targets, row_weights, weight_sum } => {
                let gs = g.scalar_value();
                let lv = self.value(*logits);
                let mut da = Matrix::zeros(lv.rows(), lv.cols());
                for r in 0..lv.rows() {
                    if row_weights[r] == 0.0 {
                        continue;
                    }
                    let mut probs: Vec<f32> = lv.row(r).to_vec();
                    softmax_in_place(&mut probs);
                    let coeff = gs * row_weights[r] / weight_sum;
                    for j in 0..lv.cols() {
                        da[(r, j)] = coeff * (probs[j] - targets[(r, j)]);
                    }
                }
                self.accumulate_owned(*logits, da);
            }
            Op::BceWithLogits { logits, targets, mask, mask_sum } => {
                let gs = g.scalar_value();
                let lv = self.value(*logits);
                let mut da = Matrix::zeros(lv.rows(), lv.cols());
                for idx in 0..lv.len() {
                    let m = mask.as_slice()[idx];
                    if m == 0.0 {
                        continue;
                    }
                    let x = lv.as_slice()[idx];
                    let t = targets.as_slice()[idx];
                    da.as_mut_slice()[idx] = gs * m * (stable_sigmoid(x) - t) / mask_sum;
                }
                self.accumulate_owned(*logits, da);
            }
            Op::LayerNorm { x, gain, bias, normalized, inv_std } => {
                let (m, n) = normalized.shape();
                let gv = self.value(*gain).clone();
                let mut dgain = Matrix::zeros(1, n);
                let mut dbias = Matrix::zeros(1, n);
                let mut dx = Matrix::zeros(m, n);
                for r in 0..m {
                    // d/dx of y = gain*(x-mu)/sigma + bias, per row:
                    // dx = (1/sigma) * (dxhat - mean(dxhat) - xhat * mean(dxhat ∘ xhat))
                    let mut dxhat = vec![0.0f32; n];
                    for j in 0..n {
                        let go = g[(r, j)];
                        dgain[(0, j)] += go * normalized[(r, j)];
                        dbias[(0, j)] += go;
                        dxhat[j] = go * gv[(0, j)];
                    }
                    let mean_dxhat = dxhat.iter().sum::<f32>() / n as f32;
                    let mean_dxhat_xhat =
                        dxhat.iter().enumerate().map(|(j, &v)| v * normalized[(r, j)]).sum::<f32>()
                            / n as f32;
                    for j in 0..n {
                        dx[(r, j)] = inv_std[r]
                            * (dxhat[j] - mean_dxhat - normalized[(r, j)] * mean_dxhat_xhat);
                    }
                }
                self.accumulate_owned(*x, dx);
                self.accumulate_owned(*gain, dgain);
                self.accumulate_owned(*bias, dbias);
            }
        }
        self.nodes[i].op = op;
    }

    /// Adds the gradients accumulated on parameter leaves into `store`.
    /// Call after [`backward`](Self::backward); gradients in the store
    /// accumulate across graphs until
    /// [`ParamStore::zero_grads`](crate::params::ParamStore::zero_grads).
    pub fn flush_grads(&self, store: &mut ParamStore) {
        for node in &self.nodes {
            if let Op::Leaf { param: Some(pid) } = node.op {
                if let Some(g) = &node.grad {
                    store.grad_mut(pid).add_assign(g);
                }
            }
        }
    }

    /// Drains the leaf gradients into an owned list, in the same node
    /// order [`Graph::flush_grads`] applies them. Data-parallel training
    /// computes these per-example partials on worker threads, then merges
    /// them into the shared store in a fixed example order — the
    /// accumulated sums are bit-identical to serial flushing for any
    /// worker count.
    pub fn take_param_grads(&mut self) -> Vec<(ParamId, Matrix)> {
        let mut out = Vec::new();
        for node in &mut self.nodes {
            if let Op::Leaf { param: Some(pid) } = node.op {
                if let Some(g) = node.grad.take() {
                    out.push((pid, g));
                }
            }
        }
        out
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// In-place stable softmax over a slice.
pub fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row {
        *v *= inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_graph() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::scalar(3.0));
        let b = g.leaf(Matrix::scalar(4.0));
        (g, a, b)
    }

    #[test]
    fn add_backward() {
        let (mut g, a, b) = scalar_graph();
        let c = g.add(a, b);
        g.backward(c);
        assert_eq!(g.grad(a).unwrap().scalar_value(), 1.0);
        assert_eq!(g.grad(b).unwrap().scalar_value(), 1.0);
    }

    #[test]
    fn mul_backward() {
        let (mut g, a, b) = scalar_graph();
        let c = g.mul(a, b);
        g.backward(c);
        assert_eq!(g.grad(a).unwrap().scalar_value(), 4.0);
        assert_eq!(g.grad(b).unwrap().scalar_value(), 3.0);
    }

    #[test]
    fn fan_out_accumulates() {
        // f = a*a + a  =>  df/da = 2a + 1 = 7 at a = 3
        let mut g = Graph::new();
        let a = g.leaf(Matrix::scalar(3.0));
        let sq = g.mul(a, a);
        let f = g.add(sq, a);
        g.backward(f);
        assert_eq!(g.grad(a).unwrap().scalar_value(), 7.0);
    }

    #[test]
    fn param_cache_shares_leaf_nodes_and_flushes_grads_once() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::scalar(3.0));

        // Uncached: two uses insert two leaves, each flushing its gradient.
        let mut g = Graph::new();
        let a = g.param(&store, w);
        let b = g.param(&store, w);
        assert_ne!(a, b);
        let f = g.add(a, b); // d/dw (w + w) = 2
        g.backward(f);
        let mut plain = store.clone();
        g.flush_grads(&mut plain);
        assert_eq!(plain.grad(w).scalar_value(), 2.0);

        // Cached: one shared leaf, identical value and total gradient.
        let mut g = Graph::with_param_cache();
        let a = g.param(&store, w);
        let b = g.param(&store, w);
        assert_eq!(a, b);
        assert_eq!(g.len(), 1);
        let f = g.add(a, b);
        assert_eq!(g.value(f).scalar_value(), 6.0);
        g.backward(f);
        let mut cached = store.clone();
        g.flush_grads(&mut cached);
        assert_eq!(cached.grad(w).scalar_value(), 2.0);
    }

    #[test]
    fn constants_receive_no_grad() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::scalar(2.0));
        let c = g.constant(Matrix::scalar(5.0));
        let f = g.mul(a, c);
        g.backward(f);
        assert_eq!(g.grad(a).unwrap().scalar_value(), 5.0);
        assert!(g.grad(c).is_none());
    }

    #[test]
    fn matmul_forward_and_backward_shapes() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let b = g.leaf(Matrix::from_rows(&[vec![5.0], vec![6.0]]));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c).as_slice(), &[17.0, 39.0]);
        let loss = g.sum_all(c);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().shape(), (2, 2));
        assert_eq!(g.grad(b).unwrap().shape(), (2, 1));
        // dL/db = A^T * ones = [[4],[6]]
        assert_eq!(g.grad(b).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-1.0, 0.0, 1.0]]));
        let s = g.softmax_rows(a);
        for r in 0..2 {
            let sum: f32 = g.value(s).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let mut g = Graph::new();
        let logits = g.leaf(Matrix::from_rows(&[vec![2.0, 0.0, -1.0]]));
        let targets = Matrix::from_rows(&[vec![1.0, 0.0, 0.0]]);
        let loss = g.cross_entropy(logits, &targets, &[1.0]);
        let row = [2.0f32, 0.0, -1.0];
        let z: f32 = row.iter().map(|x| x.exp()).sum();
        let expected = -(2.0 - z.ln());
        assert!((g.value(loss).scalar_value() - expected).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_zero_weight_rows_are_skipped() {
        let mut g = Graph::new();
        let logits = g.leaf(Matrix::from_rows(&[vec![5.0, 0.0], vec![0.0, 5.0]]));
        let targets = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0]]);
        // Second row is badly wrong but weighted 0: loss should be small.
        let loss = g.cross_entropy(logits, &targets, &[1.0, 0.0]);
        assert!(g.value(loss).scalar_value() < 0.1);
        g.backward(loss);
        let dl = g.grad(logits).unwrap();
        assert_eq!(dl.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn bce_with_logits_matches_manual() {
        let mut g = Graph::new();
        let logits = g.leaf(Matrix::from_rows(&[vec![0.5, -0.5]]));
        let targets = Matrix::from_rows(&[vec![1.0, 0.0]]);
        let mask = Matrix::ones(1, 2);
        let loss = g.bce_with_logits(logits, &targets, &mask);
        let manual = |x: f32, t: f32| x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
        let expected = (manual(0.5, 1.0) + manual(-0.5, 0.0)) / 2.0;
        assert!((g.value(loss).scalar_value() - expected).abs() < 1e-5);
    }

    #[test]
    fn select_rows_scatter_adds() {
        let mut g = Graph::new();
        let table = g.leaf(Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![2.0, 2.0]]));
        // Row 1 used twice: its gradient must double.
        let picked = g.select_rows(table, &[1, 1, 0]);
        let loss = g.sum_all(picked);
        g.backward(loss);
        let grad = g.grad(table).unwrap();
        assert_eq!(grad.row(0), &[1.0, 1.0]);
        assert_eq!(grad.row(1), &[2.0, 2.0]);
        assert_eq!(grad.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn concat_and_slice_roundtrip_grads() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_rows(&[vec![1.0, 2.0]]));
        let b = g.leaf(Matrix::from_rows(&[vec![3.0, 4.0]]));
        let cat = g.concat_cols(&[a, b]);
        let right = g.slice_cols(cat, 2, 4);
        let loss = g.sum_all(right);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[0.0, 0.0]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn im2row_center_window() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]));
        let w = g.im2row(a, 3, 1);
        assert_eq!(g.value(w).row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(g.value(w).row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(g.value(w).row(2), &[2.0, 3.0, 0.0]);
        let loss = g.sum_all(w);
        g.backward(loss);
        // Interior rows participate in 3 windows, edges in 2.
        assert_eq!(g.grad(a).unwrap().as_slice(), &[2.0, 3.0, 2.0]);
    }

    #[test]
    fn reverse_rows_backward_reverses() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_rows(&[vec![1.0], vec![2.0]]));
        let r = g.reverse_rows(a);
        let picked = g.select_rows(r, &[0]);
        let loss = g.sum_all(picked);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn max_rows_routes_gradient_to_winner() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_rows(&[vec![1.0, 5.0], vec![3.0, 2.0]]));
        let m = g.max_rows(a);
        assert_eq!(g.value(m).as_slice(), &[3.0, 5.0]);
        let loss = g.sum_all(m);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn layer_norm_output_is_normalized() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]));
        let gain = g.constant(Matrix::ones(1, 4));
        let bias = g.constant(Matrix::zeros(1, 4));
        let y = g.layer_norm(x, gain, bias, 1e-5);
        let row = g.value(y).row(0);
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn stable_sigmoid_extremes() {
        assert!(stable_sigmoid(100.0) > 0.999);
        assert!(stable_sigmoid(-100.0) < 1e-3);
        assert!((stable_sigmoid(0.0) - 0.5).abs() < 1e-7);
    }
}

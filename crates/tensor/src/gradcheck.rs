//! Finite-difference gradient verification.
//!
//! Every differentiable op and layer in this crate is validated against
//! central finite differences. This is the ground truth for autograd
//! correctness — a wrong backward rule surfaces as a large relative error.

use crate::graph::{Graph, NodeId};
use crate::matrix::Matrix;

/// Result of a gradient check: the worst relative error across all inputs.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// max |analytic - numeric| / max(1, |analytic|, |numeric|)
    pub max_rel_error: f32,
    /// Number of scalar entries checked.
    pub entries_checked: usize,
}

impl GradCheckReport {
    /// Whether the check passed at the given tolerance.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_error <= tol
    }
}

/// Checks analytic gradients of `f` (which must build a scalar-valued graph
/// from leaf nodes created from `inputs`) against central finite differences.
///
/// `f` is invoked many times; it must be deterministic in its inputs.
pub fn check_gradients(
    inputs: &[Matrix],
    eps: f32,
    f: impl Fn(&mut Graph, &[NodeId]) -> NodeId,
) -> GradCheckReport {
    // Analytic pass.
    let mut g = Graph::new();
    let ids: Vec<NodeId> = inputs.iter().map(|m| g.leaf(m.clone())).collect();
    let loss = f(&mut g, &ids);
    assert_eq!(g.value(loss).shape(), (1, 1), "gradcheck requires a scalar output");
    g.backward(loss);
    let analytic: Vec<Matrix> = ids
        .iter()
        .map(|&id| {
            g.grad(id)
                .cloned()
                .unwrap_or_else(|| Matrix::zeros(g.value(id).rows(), g.value(id).cols()))
        })
        .collect();

    let eval = |perturbed: &[Matrix]| -> f32 {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = perturbed.iter().map(|m| g.leaf(m.clone())).collect();
        let loss = f(&mut g, &ids);
        g.value(loss).scalar_value()
    };

    let mut max_rel = 0.0f32;
    let mut checked = 0usize;
    let mut work: Vec<Matrix> = inputs.to_vec();
    for (which, input) in inputs.iter().enumerate() {
        for idx in 0..input.len() {
            let orig = input.as_slice()[idx];
            work[which].as_mut_slice()[idx] = orig + eps;
            let up = eval(&work);
            work[which].as_mut_slice()[idx] = orig - eps;
            let down = eval(&work);
            work[which].as_mut_slice()[idx] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let a = analytic[which].as_slice()[idx];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            let rel = (a - numeric).abs() / denom;
            max_rel = max_rel.max(rel);
            checked += 1;
        }
    }
    GradCheckReport { max_rel_error: max_rel, entries_checked: checked }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f32 = 2e-2; // f32 finite differences are noisy; rules are exact.
    const EPS: f32 = 1e-2;

    fn m(rows: &[Vec<f32>]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn gradcheck_add_mul_chain() {
        let a = m(&[vec![0.5, -1.0], vec![2.0, 0.3]]);
        let b = m(&[vec![1.5, 0.7], vec![-0.2, 1.1]]);
        let r = check_gradients(&[a, b], EPS, |g, ids| {
            let s = g.add(ids[0], ids[1]);
            let p = g.mul(s, ids[0]);
            g.sum_all(p)
        });
        assert!(r.passes(TOL), "max rel err {}", r.max_rel_error);
        assert_eq!(r.entries_checked, 8);
    }

    #[test]
    fn gradcheck_matmul() {
        let a = m(&[vec![0.5, -1.0, 0.2], vec![2.0, 0.3, -0.7]]);
        let b = m(&[vec![1.0, 0.5], vec![-0.5, 0.25], vec![0.8, -1.2]]);
        let r = check_gradients(&[a, b], EPS, |g, ids| {
            let p = g.matmul(ids[0], ids[1]);
            let t = g.tanh(p);
            g.sum_all(t)
        });
        assert!(r.passes(TOL), "max rel err {}", r.max_rel_error);
    }

    #[test]
    fn gradcheck_activations() {
        let a = m(&[vec![0.5, -1.0, 0.2, 2.0]]);
        for act in ["relu", "tanh", "sigmoid", "exp"] {
            let r = check_gradients(std::slice::from_ref(&a), EPS, |g, ids| {
                let y = match act {
                    "relu" => g.relu(ids[0]),
                    "tanh" => g.tanh(ids[0]),
                    "sigmoid" => g.sigmoid(ids[0]),
                    _ => g.exp(ids[0]),
                };
                let sq = g.mul(y, y);
                g.sum_all(sq)
            });
            assert!(r.passes(TOL), "{act}: max rel err {}", r.max_rel_error);
        }
    }

    #[test]
    fn gradcheck_ln() {
        let a = m(&[vec![0.5, 1.0, 2.0, 3.0]]); // positive, away from clamp
        let r = check_gradients(&[a], 1e-3, |g, ids| {
            let y = g.ln(ids[0]);
            g.sum_all(y)
        });
        assert!(r.passes(TOL), "max rel err {}", r.max_rel_error);
    }

    #[test]
    fn gradcheck_softmax_rows() {
        let a = m(&[vec![0.5, -1.0, 0.2], vec![1.0, 1.2, -0.4]]);
        let w = m(&[vec![1.0, 2.0, 3.0], vec![-1.0, 0.5, 0.2]]);
        let r = check_gradients(&[a, w], EPS, |g, ids| {
            let s = g.softmax_rows(ids[0]);
            let p = g.mul(s, ids[1]);
            g.sum_all(p)
        });
        assert!(r.passes(TOL), "max rel err {}", r.max_rel_error);
    }

    #[test]
    fn gradcheck_cross_entropy() {
        let logits = m(&[vec![0.5, -1.0, 0.2], vec![1.0, 1.2, -0.4]]);
        let targets = m(&[vec![1.0, 0.0, 0.0], vec![0.2, 0.5, 0.3]]);
        let r = check_gradients(&[logits], EPS, move |g, ids| {
            g.cross_entropy(ids[0], &targets, &[0.7, 1.3])
        });
        assert!(r.passes(TOL), "max rel err {}", r.max_rel_error);
    }

    #[test]
    fn gradcheck_bce_with_logits() {
        let logits = m(&[vec![0.5, -1.0], vec![1.0, 1.2]]);
        let targets = m(&[vec![1.0, 0.0], vec![0.5, 1.0]]);
        let mask = m(&[vec![1.0, 1.0], vec![0.0, 1.0]]);
        let r = check_gradients(&[logits], EPS, move |g, ids| {
            g.bce_with_logits(ids[0], &targets, &mask)
        });
        assert!(r.passes(TOL), "max rel err {}", r.max_rel_error);
    }

    #[test]
    fn gradcheck_reductions() {
        let a = m(&[vec![0.5, -1.0], vec![2.0, 0.3], vec![-0.4, 1.7]]);
        for red in ["mean_rows", "sum_rows", "mean_all"] {
            let r = check_gradients(std::slice::from_ref(&a), EPS, |g, ids| {
                let y = match red {
                    "mean_rows" => g.mean_rows(ids[0]),
                    "sum_rows" => g.sum_rows(ids[0]),
                    _ => g.mean_all(ids[0]),
                };
                let sq = g.mul(y, y);
                g.sum_all(sq)
            });
            assert!(r.passes(TOL), "{red}: max rel err {}", r.max_rel_error);
        }
    }

    #[test]
    fn gradcheck_broadcast_ops() {
        let a = m(&[vec![0.5, -1.0], vec![2.0, 0.3]]);
        let bias = m(&[vec![0.1, -0.2]]);
        let scal = m(&[vec![0.5], vec![-1.5]]);
        let r = check_gradients(&[a, bias, scal], EPS, |g, ids| {
            let y = g.add_row_broadcast(ids[0], ids[1]);
            let z = g.mul_row_scalar(y, ids[2]);
            let t = g.tanh(z);
            g.sum_all(t)
        });
        assert!(r.passes(TOL), "max rel err {}", r.max_rel_error);
    }

    #[test]
    fn gradcheck_shape_ops() {
        let a = m(&[vec![0.5, -1.0], vec![2.0, 0.3]]);
        let b = m(&[vec![1.5, 0.7], vec![-0.2, 1.1]]);
        let r = check_gradients(&[a, b], EPS, |g, ids| {
            let cat = g.concat_cols(&[ids[0], ids[1]]);
            let rows = g.concat_rows(&[cat, cat]);
            let sel = g.select_rows(rows, &[0, 3, 1]);
            let sli = g.slice_cols(sel, 1, 3);
            let rev = g.reverse_rows(sli);
            let sq = g.mul(rev, rev);
            g.sum_all(sq)
        });
        assert!(r.passes(TOL), "max rel err {}", r.max_rel_error);
    }

    #[test]
    fn gradcheck_im2row() {
        let a = m(&[vec![0.5, -1.0], vec![2.0, 0.3], vec![-0.4, 1.7], vec![0.9, -0.6]]);
        let r = check_gradients(&[a], EPS, |g, ids| {
            let w = g.im2row(ids[0], 3, 1);
            let sq = g.mul(w, w);
            g.sum_all(sq)
        });
        assert!(r.passes(TOL), "max rel err {}", r.max_rel_error);
    }

    #[test]
    fn gradcheck_layer_norm() {
        let x = m(&[vec![0.5, -1.0, 0.2, 1.4], vec![2.0, 0.3, -0.7, 0.1]]);
        let gain = m(&[vec![1.0, 0.8, 1.2, 0.9]]);
        let bias = m(&[vec![0.0, 0.1, -0.1, 0.2]]);
        let r = check_gradients(&[x, gain, bias], 5e-3, |g, ids| {
            let y = g.layer_norm(ids[0], ids[1], ids[2], 1e-5);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        });
        assert!(r.passes(5e-2), "max rel err {}", r.max_rel_error);
    }

    #[test]
    fn gradcheck_max_rows() {
        // Values well-separated so the argmax does not flip under eps.
        let a = m(&[vec![0.5, -1.0], vec![2.0, 0.3], vec![-0.4, 1.7]]);
        let r = check_gradients(&[a], 1e-3, |g, ids| {
            let y = g.max_rows(ids[0]);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        });
        assert!(r.passes(TOL), "max rel err {}", r.max_rel_error);
    }
}

//! Cache-blocked, panel-packed GEMM kernels.
//!
//! The naive triple loops in [`crate::matrix`] stream the full `B` operand
//! through cache once per row of `A`; above a few dozen rows that turns
//! matmul memory-bound. The kernels here use the classic BLIS-style
//! decomposition instead: the iteration space is tiled into `MC x KC`
//! blocks of `A` and `KC x NC` blocks of `B`, both repacked into
//! contiguous panels, and the innermost work is an `MR x NR`
//! register-tiled microkernel whose fixed-size loops LLVM unrolls and
//! autovectorizes. Packing costs `O(mk + kn)` against `O(mkn)` multiplies,
//! so it amortizes for every shape past the [`use_blocked`] cutoff.
//!
//! Determinism contract: for every output element `C[i][j]` the k-terms
//! are accumulated in strictly increasing `k` order — the blocking loops
//! only partition the output space and split `k` into panels that are
//! visited in order, and the microkernel walks each panel front to back.
//! Every partial sum is rounded to `f32` exactly as the naive loops round
//! theirs, so the blocked kernels produce bit-identical results to the
//! naive reference paths (and training trajectories do not depend on
//! which path a shape dispatches to).

/// Microkernel tile rows (register-blocked rows of `A`).
const MR: usize = 4;
/// Microkernel tile columns (register-blocked columns of `B`): two AVX2
/// vectors wide, so the 4x16 accumulator tile is eight `ymm` registers.
const NR: usize = 16;
/// k-panel depth: one `MC x KC` block of packed `A` stays L2-resident.
const KC: usize = 256;
/// Row-block height; must be a multiple of `MR`.
const MC: usize = 64;
/// Column-block width; must be a multiple of `NR`.
const NC: usize = 256;

/// Whether a `m x k * k x n` product is worth the blocked path.
///
/// Tiny shapes (scalar heads, single-row LSTM steps) stay on the naive
/// loops: packing would cost more than it saves and the microkernel's
/// edge handling would dominate.
#[inline]
pub(crate) fn use_blocked(m: usize, k: usize, n: usize) -> bool {
    m >= 4 && k >= 8 && n >= 8 && m * k * n >= 16_384
}

/// Cheap sparsity probe: samples up to 64 evenly-spaced elements and
/// reports whether at least a quarter of them are exact zeros. The naive
/// paths use this to decide whether their skip-zero branch (a win only
/// for genuinely sparse operands, e.g. one-hot selections) is worth a
/// per-multiply branch.
#[inline]
pub(crate) fn probe_sparse(data: &[f32]) -> bool {
    if data.is_empty() {
        return false;
    }
    let stride = (data.len() / 64).max(1);
    let sampled = data.iter().step_by(stride);
    let total = sampled.clone().count();
    let zeros = sampled.filter(|&&x| x == 0.0).count();
    zeros * 4 >= total
}

/// `out += A * B` where `A` is `m x k` row-major and `B` is `k x n`
/// row-major. `out` must hold `m * n` elements (normally zeroed).
pub(crate) fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    gemm_with(m, k, n, |i, p| a[i * k + p], |p, j| b[p * n + j], out);
}

/// `out += A * B^T` where `A` is `m x k` row-major and `bt` is the
/// transposed operand stored `n x k` row-major.
pub(crate) fn gemm_bt(m: usize, k: usize, n: usize, a: &[f32], bt: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(bt.len(), n * k);
    gemm_with(m, k, n, |i, p| a[i * k + p], |p, j| bt[j * k + p], out);
}

/// `out += A^T * B` where `at` is the transposed operand stored `k x m`
/// row-major and `B` is `k x n` row-major.
pub(crate) fn gemm_at(m: usize, k: usize, n: usize, at: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(at.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    gemm_with(m, k, n, |i, p| at[p * m + i], |p, j| b[p * n + j], out);
}

/// Blocked driver, generic over element accessors so all three transpose
/// variants share one core: packing adapts to the operand layout, the
/// macro/micro kernels only ever see packed panels.
fn gemm_with(
    m: usize,
    k: usize,
    n: usize,
    a_at: impl Fn(usize, usize) -> f32,
    b_at: impl Fn(usize, usize) -> f32,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let mut a_pack = vec![0.0f32; MC * KC];
    let mut b_pack = vec![0.0f32; KC * NC];
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(&mut b_pack, &b_at, pc, kc, jc, nc);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a(&mut a_pack, &a_at, ic, mc, pc, kc);
                macro_kernel(&a_pack, &b_pack, mc, nc, kc, &mut out[ic * n + jc..], n);
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Packs the `mc x kc` block of `A` at `(ic, pc)` into `MR`-row panels,
/// k-major within each panel, zero-padding the ragged last panel.
fn pack_a(
    pack: &mut [f32],
    a_at: &impl Fn(usize, usize) -> f32,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let panels = mc.div_ceil(MR);
    for ip in 0..panels {
        let mr = MR.min(mc - ip * MR);
        let panel = &mut pack[ip * kc * MR..(ip + 1) * kc * MR];
        for (p, chunk) in panel.chunks_exact_mut(MR).enumerate() {
            for (ii, slot) in chunk.iter_mut().enumerate() {
                *slot = if ii < mr { a_at(ic + ip * MR + ii, pc + p) } else { 0.0 };
            }
        }
    }
}

/// Packs the `kc x nc` block of `B` at `(pc, jc)` into `NR`-column
/// panels, k-major within each panel, zero-padding the ragged last panel.
fn pack_b(
    pack: &mut [f32],
    b_at: &impl Fn(usize, usize) -> f32,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let panels = nc.div_ceil(NR);
    for jp in 0..panels {
        let nr = NR.min(nc - jp * NR);
        let panel = &mut pack[jp * kc * NR..(jp + 1) * kc * NR];
        for (p, chunk) in panel.chunks_exact_mut(NR).enumerate() {
            for (jj, slot) in chunk.iter_mut().enumerate() {
                *slot = if jj < nr { b_at(pc + p, jc + jp * NR + jj) } else { 0.0 };
            }
        }
    }
}

/// Walks the packed block pair tile by tile. `c` starts at the block's
/// top-left output element; `ldc` is the full output row stride.
fn macro_kernel(
    a_pack: &[f32],
    b_pack: &[f32],
    mc: usize,
    nc: usize,
    kc: usize,
    c: &mut [f32],
    ldc: usize,
) {
    let mut jr = 0;
    while jr < nc {
        let nr = NR.min(nc - jr);
        let b_panel = &b_pack[(jr / NR) * kc * NR..][..kc * NR];
        let mut ir = 0;
        while ir < mc {
            let mr = MR.min(mc - ir);
            let a_panel = &a_pack[(ir / MR) * kc * MR..][..kc * MR];
            let tile = &mut c[ir * ldc + jr..];
            if mr == MR && nr == NR {
                micro_kernel_full(kc, a_panel, b_panel, tile, ldc);
            } else {
                micro_kernel_edge(kc, mr, nr, a_panel, b_panel, tile, ldc);
            }
            ir += MR;
        }
        jr += NR;
    }
}

/// Full-tile microkernel dispatch: the AVX2 build of the kernel when the
/// CPU has it (the feature probe is cached by `std`), the portable
/// autovectorized build otherwise. Both accumulate with one rounding per
/// multiply and one per add in identical order, so the choice never
/// changes an output bit.
#[inline]
fn micro_kernel_full(kc: usize, a_panel: &[f32], b_panel: &[f32], c: &mut [f32], ldc: usize) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        debug_assert!(a_panel.len() >= kc * MR && b_panel.len() >= kc * NR);
        debug_assert!(c.len() >= (MR - 1) * ldc + NR);
        // SAFETY: AVX2 was just detected, and the panel/tile bounds the
        // intrinsics read and write are asserted above.
        unsafe { micro_kernel_full_avx2(kc, a_panel, b_panel, c, ldc) };
        return;
    }
    micro_kernel_full_portable(kc, a_panel, b_panel, c, ldc);
}

/// AVX2 build of the full-tile microkernel: the 4x16 accumulator tile is
/// eight `ymm` registers; each k step broadcasts one `A` lane per row and
/// does vector multiply *then* vector add. FMA is deliberately not used —
/// fusing would drop the intermediate rounding and break bit-parity with
/// the naive loops.
///
/// # Safety
/// Requires AVX2. `a_panel`/`b_panel` must hold at least `kc` packed
/// steps and `c` must span the full `MR x NR` tile at row stride `ldc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn micro_kernel_full_avx2(
    kc: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    ldc: usize,
) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };
    unsafe {
        let mut acc = [[_mm256_set1_ps(0.0); 2]; MR];
        for (i, row) in acc.iter_mut().enumerate() {
            row[0] = _mm256_loadu_ps(c.as_ptr().add(i * ldc));
            row[1] = _mm256_loadu_ps(c.as_ptr().add(i * ldc + 8));
        }
        for p in 0..kc {
            let ap = a_panel.as_ptr().add(p * MR);
            let bp = b_panel.as_ptr().add(p * NR);
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for (i, row) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ap.add(i));
                row[0] = _mm256_add_ps(row[0], _mm256_mul_ps(av, b0));
                row[1] = _mm256_add_ps(row[1], _mm256_mul_ps(av, b1));
            }
        }
        for (i, row) in acc.iter().enumerate() {
            _mm256_storeu_ps(c.as_mut_ptr().add(i * ldc), row[0]);
            _mm256_storeu_ps(c.as_mut_ptr().add(i * ldc + 8), row[1]);
        }
    }
}

/// Portable build of the full-tile microkernel: loads the current C
/// tile, accumulates one k-panel front to back, stores the tile once.
/// The fixed-size accumulator array keeps the tile in whatever vector
/// registers the target offers.
#[inline(always)]
fn micro_kernel_full_portable(
    kc: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    ldc: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c[i * ldc..i * ldc + NR]);
    }
    for (ap, bp) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)).take(kc) {
        for (i, row) in acc.iter_mut().enumerate() {
            let av = ap[i];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot += av * bp[j];
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        c[i * ldc..i * ldc + NR].copy_from_slice(row);
    }
}

/// Ragged-edge microkernel for tiles narrower than `MR x NR`; same
/// strictly-increasing-k accumulation order as the full tile.
fn micro_kernel_edge(
    kc: usize,
    mr: usize,
    nr: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    ldc: usize,
) {
    for (ap, bp) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)).take(kc) {
        for i in 0..mr {
            let av = ap[i];
            let row = &mut c[i * ldc..i * ldc + nr];
            for (slot, &bv) in row.iter_mut().zip(&bp[..nr]) {
                *slot += av * bv;
            }
        }
    }
}

//! Weight initialization schemes.

use crate::matrix::Matrix;
use rand::Rng;

/// Samples a standard normal via the Box–Muller transform (avoids an extra
/// distribution dependency).
pub fn standard_normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Uniform initialization in `[-bound, bound]`.
pub fn uniform(rows: usize, cols: usize, bound: f32, rng: &mut impl Rng) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(-bound..=bound)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Glorot/Xavier uniform initialization: `bound = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rows, cols, bound, rng)
}

/// He/Kaiming normal initialization: `std = sqrt(2 / fan_in)` (for ReLU
/// stacks).
pub fn he_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let std = (2.0 / rows as f32).sqrt();
    let data = (0..rows * cols).map(|_| standard_normal(rng) * std).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Gaussian initialization with explicit standard deviation (embeddings).
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
    let data = (0..rows * cols).map(|_| standard_normal(rng) * std).collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = xavier_uniform(10, 20, &mut rng);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= bound + 1e-6));
    }

    #[test]
    fn normal_has_roughly_requested_std() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = normal(100, 100, 0.5, &mut rng);
        let mean = m.mean();
        let var =
            m.as_slice().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = xavier_uniform(3, 3, &mut SmallRng::seed_from_u64(7));
        let b = xavier_uniform(3, 3, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}

//! Learning-rate schedules.
//!
//! Schedules compose with any [`Optimizer`](crate::optim::Optimizer): call
//! [`LrSchedule::at`] each step and pass the result to
//! `set_learning_rate`. Kept separate from optimizers so searches can mix
//! and match.

/// A deterministic learning-rate schedule over optimizer steps.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// The same rate forever.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Linear warmup from 0 to `lr` over `warmup_steps`, then constant.
    Warmup {
        /// Peak rate.
        lr: f32,
        /// Steps to reach the peak.
        warmup_steps: u64,
    },
    /// Multiply by `factor` every `every` steps.
    StepDecay {
        /// Initial rate.
        lr: f32,
        /// Multiplier (0 < factor <= 1).
        factor: f32,
        /// Steps between decays.
        every: u64,
    },
    /// Linear warmup then cosine decay to `min_lr` at `total_steps`.
    WarmupCosine {
        /// Peak rate.
        lr: f32,
        /// Warmup length.
        warmup_steps: u64,
        /// Total schedule length.
        total_steps: u64,
        /// Floor after decay.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// The learning rate at a given (0-based) step.
    pub fn at(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::Warmup { lr, warmup_steps } => {
                if warmup_steps == 0 || step >= warmup_steps {
                    lr
                } else {
                    lr * (step + 1) as f32 / warmup_steps as f32
                }
            }
            LrSchedule::StepDecay { lr, factor, every } => {
                debug_assert!(factor > 0.0 && factor <= 1.0, "decay factor out of range");
                if every == 0 {
                    return lr;
                }
                lr * factor.powi((step / every) as i32)
            }
            LrSchedule::WarmupCosine { lr, warmup_steps, total_steps, min_lr } => {
                if step < warmup_steps {
                    return lr * (step + 1) as f32 / warmup_steps.max(1) as f32;
                }
                if step >= total_steps || total_steps <= warmup_steps {
                    return min_lr;
                }
                let progress = (step - warmup_steps) as f32 / (total_steps - warmup_steps) as f32;
                let cosine = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                min_lr + (lr - min_lr) * cosine
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = LrSchedule::Constant { lr: 0.01 };
        assert_eq!(s.at(0), 0.01);
        assert_eq!(s.at(1_000_000), 0.01);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { lr: 1.0, warmup_steps: 4 };
        assert!((s.at(0) - 0.25).abs() < 1e-6);
        assert!((s.at(1) - 0.5).abs() < 1e-6);
        assert!((s.at(3) - 1.0).abs() < 1e-6);
        assert_eq!(s.at(100), 1.0);
    }

    #[test]
    fn step_decay_halves() {
        let s = LrSchedule::StepDecay { lr: 0.8, factor: 0.5, every: 10 };
        assert_eq!(s.at(0), 0.8);
        assert_eq!(s.at(9), 0.8);
        assert_eq!(s.at(10), 0.4);
        assert_eq!(s.at(25), 0.2);
    }

    #[test]
    fn warmup_cosine_envelope() {
        let s =
            LrSchedule::WarmupCosine { lr: 1.0, warmup_steps: 10, total_steps: 110, min_lr: 0.1 };
        // Rises during warmup.
        assert!(s.at(0) < s.at(5));
        assert!((s.at(9) - 1.0).abs() < 1e-6);
        // Midpoint of cosine is halfway between peak and floor.
        let mid = s.at(60);
        assert!((mid - 0.55).abs() < 0.02, "mid {mid}");
        // Floor after the end.
        assert_eq!(s.at(110), 0.1);
        assert_eq!(s.at(10_000), 0.1);
        // Monotone decrease after warmup.
        for step in 10..109 {
            assert!(s.at(step) >= s.at(step + 1) - 1e-6);
        }
    }

    #[test]
    fn integrates_with_an_optimizer() {
        use crate::optim::{Optimizer, Sgd};
        let schedule = LrSchedule::StepDecay { lr: 0.1, factor: 0.1, every: 1 };
        let mut opt = Sgd::new(schedule.at(0));
        let mut ps = crate::ParamStore::new();
        let w = ps.add("w", crate::Matrix::scalar(1.0));
        for step in 0..3u64 {
            opt.set_learning_rate(schedule.at(step));
            ps.grad_mut(w).add_assign(&crate::Matrix::scalar(1.0));
            opt.step(&mut ps);
            ps.zero_grads();
        }
        // Updates: 0.1 + 0.01 + 0.001 subtracted from 1.0.
        assert!((ps.value(w).scalar_value() - (1.0 - 0.111)).abs() < 1e-5);
    }
}

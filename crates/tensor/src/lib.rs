//! # overton-tensor
//!
//! A minimal, dependency-light CPU tensor engine with reverse-mode autograd —
//! the deep-learning substrate for the Overton reproduction (the role
//! TensorFlow/PyTorch play in the paper).
//!
//! Design in one paragraph: all values are dense 2-D [`Matrix`] objects; a
//! [`Graph`] is a define-by-run tape rebuilt every step; learnable weights
//! live in a [`ParamStore`] shared across graphs; [`nn`] provides layers
//! (linear, embedding, LSTM/BiLSTM, 1-D conv, multi-head attention,
//! layer-norm, dropout); [`optim`] provides SGD/momentum and Adam/AdamW;
//! every backward rule is validated against finite differences in
//! [`gradcheck`].
//!
//! ```
//! use overton_tensor::{Graph, Matrix, ParamStore};
//! use overton_tensor::optim::{Optimizer, Sgd};
//!
//! // Fit w to minimize (3w - 6)^2.
//! let mut ps = ParamStore::new();
//! let w = ps.add("w", Matrix::scalar(0.0));
//! let mut opt = Sgd::new(0.05);
//! for _ in 0..100 {
//!     let mut g = Graph::new();
//!     let wn = g.param(&ps, w);
//!     let three = g.constant(Matrix::scalar(3.0));
//!     let six = g.constant(Matrix::scalar(6.0));
//!     let pred = g.mul(three, wn);
//!     let err = g.sub(pred, six);
//!     let loss = g.mul(err, err);
//!     g.backward(loss);
//!     g.flush_grads(&mut ps);
//!     opt.step(&mut ps);
//!     ps.zero_grads();
//! }
//! assert!((ps.value(w).scalar_value() - 2.0).abs() < 1e-3);
//! ```

#![warn(missing_docs)]

mod graph;
mod kernels;
mod matrix;
mod params;

pub mod gradcheck;
pub mod init;
pub mod nn;
pub mod optim;
pub mod quant;
pub mod schedule;

pub use graph::{softmax_in_place, stable_sigmoid, Graph, NodeId, LN_CLAMP};
pub use matrix::{dot, Matrix};
pub use params::{ParamId, ParamStore};

//! Affine layer `y = x W + b`.

use crate::graph::{Graph, NodeId};
use crate::init;
use crate::params::{ParamId, ParamStore};
use rand::Rng;

/// A fully-connected layer mapping `m x in` to `m x out`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers weights (Xavier) and a zero bias under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let weight =
            store.add(format!("{name}.weight"), init::xavier_uniform(in_dim, out_dim, rng));
        let bias = store.add(format!("{name}.bias"), crate::Matrix::zeros(1, out_dim));
        Self { weight, bias: Some(bias), in_dim, out_dim }
    }

    /// A linear map without bias.
    pub fn new_no_bias(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let weight =
            store.add(format!("{name}.weight"), init::xavier_uniform(in_dim, out_dim, rng));
        Self { weight, bias: None, in_dim, out_dim }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Handle to the `in_dim x out_dim` weight matrix (for offline
    /// conversions such as post-training quantization).
    pub fn weight_id(&self) -> ParamId {
        self.weight
    }

    /// Handle to the `1 x out_dim` bias row, absent for
    /// [`Linear::new_no_bias`] layers.
    pub fn bias_id(&self) -> Option<ParamId> {
        self.bias
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to an `m x in_dim` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        debug_assert_eq!(g.value(x).cols(), self.in_dim, "Linear input width mismatch");
        let w = g.param(store, self.weight);
        let xw = g.matmul(x, w);
        match self.bias {
            Some(b) => {
                let bn = g.param(store, b);
                g.add_row_broadcast(xw, bn)
            }
            None => xw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use crate::matrix::Matrix;
    use crate::optim::{Optimizer, Sgd};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let lin = Linear::new(&mut ps, "l", 4, 3, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Matrix::ones(5, 4));
        let y = lin.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).shape(), (5, 3));
    }

    #[test]
    fn gradcheck_through_linear() {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = crate::init::xavier_uniform(3, 2, &mut rng);
        let b = Matrix::row_vector(&[0.1, -0.2]);
        let x = Matrix::from_rows(&[vec![0.5, -1.0, 0.2], vec![2.0, 0.3, -0.7]]);
        let r = check_gradients(&[x, w, b], 1e-2, |g, ids| {
            let xw = g.matmul(ids[0], ids[1]);
            let y = g.add_row_broadcast(xw, ids[2]);
            let t = g.tanh(y);
            g.sum_all(t)
        });
        assert!(r.passes(2e-2), "max rel err {}", r.max_rel_error);
    }

    #[test]
    fn learns_a_linear_function() {
        // Fit y = 2x1 - x2 with a 2->1 linear layer.
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let lin = Linear::new(&mut ps, "l", 2, 1, &mut rng);
        let mut opt = Sgd::new(0.1);
        let xs =
            Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0], vec![0.5, -0.5]]);
        let ys = Matrix::from_rows(&[vec![2.0], vec![-1.0], vec![1.0], vec![1.5]]);
        let mut last = f32::MAX;
        for _ in 0..300 {
            let mut g = Graph::new();
            let x = g.constant(xs.clone());
            let target = g.constant(ys.clone());
            let pred = lin.forward(&mut g, &ps, x);
            let diff = g.sub(pred, target);
            let sq = g.mul(diff, diff);
            let loss = g.mean_all(sq);
            last = g.value(loss).scalar_value();
            g.backward(loss);
            g.flush_grads(&mut ps);
            opt.step(&mut ps);
            ps.zero_grads();
        }
        assert!(last < 1e-4, "final loss {last}");
    }

    #[test]
    fn no_bias_variant_has_one_param() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let _ = Linear::new_no_bias(&mut ps, "l", 4, 3, &mut rng);
        assert_eq!(ps.len(), 1);
    }
}

//! Neural-network layers built from graph ops.
//!
//! Layers own [`ParamId`](crate::params::ParamId)s into a shared
//! [`ParamStore`](crate::params::ParamStore) and expose a
//! `forward(&self, graph, store, input) -> NodeId` method. A layer can be
//! used in any number of graphs; the store is the single source of truth for
//! weights.

mod attention;
mod conv;
mod dropout;
mod embedding;
mod linear;
mod lstm;
mod norm;

pub use attention::MultiHeadSelfAttention;
pub use conv::Conv1d;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use linear::Linear;
pub use lstm::{BiLstm, Lstm};
pub use norm::LayerNorm;

//! Inverted dropout.

use crate::graph::{Graph, NodeId};
use crate::matrix::Matrix;
use rand::Rng;

/// Inverted dropout: at train time each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`, so inference needs no rescale.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability {p} out of [0,1)");
        Self { p }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Applies dropout. When `train` is false (or `p == 0`) this is the
    /// identity.
    pub fn forward(&self, g: &mut Graph, x: NodeId, train: bool, rng: &mut impl Rng) -> NodeId {
        if !train || self.p == 0.0 {
            return x;
        }
        let (rows, cols) = g.value(x).shape();
        let keep_scale = 1.0 / (1.0 - self.p);
        let data = (0..rows * cols)
            .map(|_| if rng.gen::<f32>() < self.p { 0.0 } else { keep_scale })
            .collect();
        let mask = g.constant(Matrix::from_vec(rows, cols, data));
        g.mul(x, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn identity_at_inference() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = Dropout::new(0.5);
        let mut g = Graph::new();
        let x = g.constant(Matrix::ones(3, 3));
        let y = d.forward(&mut g, x, false, &mut rng);
        assert_eq!(x, y);
    }

    #[test]
    fn preserves_expectation_at_train() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = Dropout::new(0.3);
        let mut g = Graph::new();
        let x = g.constant(Matrix::ones(100, 100));
        let y = d.forward(&mut g, x, true, &mut rng);
        let mean = g.value(y).mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zero_probability_is_identity_even_at_train() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = Dropout::new(0.0);
        let mut g = Graph::new();
        let x = g.constant(Matrix::ones(2, 2));
        let y = d.forward(&mut g, x, true, &mut rng);
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "out of [0,1)")]
    fn rejects_p_of_one() {
        let _ = Dropout::new(1.0);
    }
}

//! Multi-head scaled dot-product self-attention.

use crate::graph::{Graph, NodeId};
use crate::nn::Linear;
use crate::params::ParamStore;
use rand::Rng;

/// Multi-head self-attention over a `T x dim` sequence, producing `T x dim`.
///
/// This is the Transformer building block Overton's schema may select as a
/// sequence encoder, and the default mechanism for combining payload
/// references ("by default, combination is done with multi-headed
/// attention", paper §2.1).
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadSelfAttention {
    /// Registers projections under `name`.
    ///
    /// # Panics
    /// Panics unless `heads` divides `dim`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(heads > 0 && dim.is_multiple_of(heads), "heads ({heads}) must divide dim ({dim})");
        Self {
            wq: Linear::new_no_bias(store, &format!("{name}.wq"), dim, dim, rng),
            wk: Linear::new_no_bias(store, &format!("{name}.wk"), dim, dim, rng),
            wv: Linear::new_no_bias(store, &format!("{name}.wv"), dim, dim, rng),
            wo: Linear::new_no_bias(store, &format!("{name}.wo"), dim, dim, rng),
            heads,
            dim,
        }
    }

    /// Model dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// The query projection.
    pub fn wq(&self) -> &Linear {
        &self.wq
    }

    /// The key projection.
    pub fn wk(&self) -> &Linear {
        &self.wk
    }

    /// The value projection.
    pub fn wv(&self) -> &Linear {
        &self.wv
    }

    /// The output projection.
    pub fn wo(&self) -> &Linear {
        &self.wo
    }

    /// Self-attention: queries, keys and values all come from `xs`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, xs: NodeId) -> NodeId {
        self.forward_cross(g, store, xs, xs)
    }

    /// Cross-attention: `queries_from` attends over `context` (used for
    /// payload references, e.g. an entity set attending over query tokens).
    pub fn forward_cross(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        queries_from: NodeId,
        context: NodeId,
    ) -> NodeId {
        debug_assert_eq!(g.value(queries_from).cols(), self.dim);
        debug_assert_eq!(g.value(context).cols(), self.dim);
        let q = self.wq.forward(g, store, queries_from);
        let k = self.wk.forward(g, store, context);
        let v = self.wv.forward(g, store, context);
        let head_dim = self.dim / self.heads;
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (lo, hi) = (h * head_dim, (h + 1) * head_dim);
            let qh = g.slice_cols(q, lo, hi);
            let kh = g.slice_cols(k, lo, hi);
            let vh = g.slice_cols(v, lo, hi);
            let kht = g.transpose(kh);
            let scores_raw = g.matmul(qh, kht);
            let scores_scaled = g.scale(scores_raw, scale);
            let attn = g.softmax_rows(scores_scaled);
            let out = g.matmul(attn, vh);
            head_outputs.push(out);
        }
        let concat = g.concat_cols(&head_outputs);
        self.wo.forward(g, store, concat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut ps, "a", 8, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Matrix::ones(5, 8));
        let y = attn.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).shape(), (5, 8));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_indivisible_heads() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let _ = MultiHeadSelfAttention::new(&mut ps, "a", 8, 3, &mut rng);
    }

    #[test]
    fn cross_attention_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut ps, "a", 4, 2, &mut rng);
        let mut g = Graph::new();
        let queries = g.constant(Matrix::ones(3, 4));
        let context = g.constant(Matrix::ones(7, 4));
        let y = attn.forward_cross(&mut g, &ps, queries, context);
        assert_eq!(g.value(y).shape(), (3, 4));
    }

    #[test]
    fn attention_learns_to_copy_marked_token() {
        // Each sequence has exactly one row with feature[0] = 1 (the marker);
        // the task (same label at every position) is the class encoded in
        // features 1..3 of the MARKED row. Pointwise/pooling-free models at
        // other positions must attend to the marker row to solve this.
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut ps, "a", 4, 1, &mut rng);
        let head = crate::nn::Linear::new(&mut ps, "h", 4, 3, &mut rng);
        let mut opt = Adam::new(0.02);
        let gen = |rng: &mut SmallRng| -> (Matrix, usize) {
            let t_len = 5;
            let marked = rng.gen_range(0..t_len);
            let class = rng.gen_range(0..3usize);
            let mut x = Matrix::zeros(t_len, 4);
            for t in 0..t_len {
                x[(t, 3)] = 1.0; // constant feature
            }
            x[(marked, 0)] = 1.0;
            x[(marked, 1 + class.min(1))] = if class == 0 { 0.0 } else { 1.0 };
            x[(marked, 1)] = f32::from(class == 1);
            x[(marked, 2)] = f32::from(class == 2);
            (x, class)
        };
        for _ in 0..400 {
            let (x, class) = gen(&mut rng);
            let mut g = Graph::new();
            let xn = g.constant(x);
            let enc = attn.forward(&mut g, &ps, xn);
            let pooled = g.mean_rows(enc);
            let logits = head.forward(&mut g, &ps, pooled);
            let mut target = Matrix::zeros(1, 3);
            target[(0, class)] = 1.0;
            let loss = g.cross_entropy(logits, &target, &[1.0]);
            g.backward(loss);
            g.flush_grads(&mut ps);
            opt.step(&mut ps);
            ps.zero_grads();
        }
        let mut correct = 0;
        for _ in 0..50 {
            let (x, class) = gen(&mut rng);
            let mut g = Graph::new();
            let xn = g.constant(x);
            let enc = attn.forward(&mut g, &ps, xn);
            let pooled = g.mean_rows(enc);
            let logits = head.forward(&mut g, &ps, pooled);
            if g.value(logits).row_argmax(0) == class {
                correct += 1;
            }
        }
        assert!(correct >= 40, "accuracy {correct}/50");
    }
}

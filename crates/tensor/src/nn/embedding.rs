//! Token/entity embedding tables.

use crate::graph::{Graph, NodeId};
use crate::init;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use rand::Rng;

/// A lookup table mapping ids to `dim`-dimensional rows.
///
/// Lookup is [`Graph::select_rows`] on the table parameter, so gradients
/// scatter-add into only the rows that were used.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a `vocab x dim` table initialized N(0, 0.1).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let table = store.add(format!("{name}.table"), init::normal(vocab, dim, 0.1, rng));
        Self { table, vocab, dim }
    }

    /// Creates an embedding from an existing (e.g. pretrained) table.
    pub fn from_pretrained(store: &mut ParamStore, name: &str, table: Matrix) -> Self {
        let (vocab, dim) = table.shape();
        let id = store.add(format!("{name}.table"), table);
        Self { table: id, vocab, dim }
    }

    /// Freezes the table so fine-tuning cannot change it.
    pub fn freeze(&self, store: &mut ParamStore) {
        store.freeze(self.table);
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The underlying table parameter.
    pub fn table(&self) -> ParamId {
        self.table
    }

    /// Looks up a sequence of ids, producing `ids.len() x dim`.
    ///
    /// # Panics
    /// Panics if any id is out of vocabulary.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, ids: &[usize]) -> NodeId {
        assert!(
            ids.iter().all(|&i| i < self.vocab),
            "embedding id out of vocabulary (vocab = {})",
            self.vocab
        );
        let t = g.param(store, self.table);
        g.select_rows(t, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Optimizer, Sgd};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_shape_and_content() {
        let mut ps = ParamStore::new();
        let table = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let emb = Embedding::from_pretrained(&mut ps, "e", table);
        let mut g = Graph::new();
        let out = emb.forward(&mut g, &ps, &[2, 0]);
        assert_eq!(g.value(out).shape(), (2, 2));
        assert_eq!(g.value(out).row(0), &[5.0, 6.0]);
        assert_eq!(g.value(out).row(1), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let emb = Embedding::new(&mut ps, "e", 4, 2, &mut rng);
        let mut g = Graph::new();
        let _ = emb.forward(&mut g, &ps, &[4]);
    }

    #[test]
    fn only_touched_rows_get_gradient() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let emb = Embedding::new(&mut ps, "e", 5, 3, &mut rng);
        let mut g = Graph::new();
        let out = emb.forward(&mut g, &ps, &[1, 3]);
        let loss = g.sum_all(out);
        g.backward(loss);
        g.flush_grads(&mut ps);
        let grad = ps.grad(emb.table());
        assert_eq!(grad.row(0), &[0.0; 3]);
        assert_eq!(grad.row(1), &[1.0; 3]);
        assert_eq!(grad.row(2), &[0.0; 3]);
        assert_eq!(grad.row(3), &[1.0; 3]);
    }

    #[test]
    fn frozen_embedding_does_not_train() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let emb = Embedding::new(&mut ps, "e", 3, 2, &mut rng);
        emb.freeze(&mut ps);
        let before = ps.value(emb.table()).clone();
        let mut g = Graph::new();
        let out = emb.forward(&mut g, &ps, &[0, 1, 2]);
        let loss = g.sum_all(out);
        g.backward(loss);
        g.flush_grads(&mut ps);
        let mut opt = Sgd::new(1.0);
        opt.step(&mut ps);
        assert_eq!(ps.value(emb.table()), &before);
    }
}

//! Layer normalization with learnable gain and bias.

use crate::graph::{Graph, NodeId};
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};

/// Per-row layer normalization over a `m x dim` node.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gain: ParamId,
    bias: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Registers gain (ones) and bias (zeros) under `name`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gain = store.add(format!("{name}.gain"), Matrix::ones(1, dim));
        let bias = store.add(format!("{name}.bias"), Matrix::zeros(1, dim));
        Self { gain, bias, dim, eps: 1e-5 }
    }

    /// Normalized feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies normalization to an `m x dim` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        debug_assert_eq!(g.value(x).cols(), self.dim, "LayerNorm width mismatch");
        let gain = g.param(store, self.gain);
        let bias = g.param(store, self.bias);
        g.layer_norm(x, gain, bias, self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_layer_standardizes_rows() {
        let mut ps = ParamStore::new();
        let ln = LayerNorm::new(&mut ps, "ln", 4);
        let mut g = Graph::new();
        let x = g.constant(Matrix::from_rows(&[vec![10.0, 20.0, 30.0, 40.0]]));
        let y = ln.forward(&mut g, &ps, x);
        let row = g.value(y).row(0);
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn gain_and_bias_are_learnable_params() {
        let mut ps = ParamStore::new();
        let _ = LayerNorm::new(&mut ps, "ln", 3);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.num_weights(), 6);
    }
}

//! 1-D convolution over sequences (same-length padding).

use crate::graph::{Graph, NodeId};
use crate::init;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use rand::Rng;

/// A same-length 1-D convolution: `T x in_dim -> T x out_dim` with an odd
/// kernel width. Implemented as `im2row(x) * W + b` so the backward pass
/// reuses the matmul and unfold rules.
#[derive(Debug, Clone)]
pub struct Conv1d {
    weight: ParamId,
    bias: ParamId,
    in_dim: usize,
    out_dim: usize,
    kernel: usize,
}

impl Conv1d {
    /// Registers a `kernel * in_dim x out_dim` weight under `name`.
    ///
    /// # Panics
    /// Panics if `kernel` is even (same-length padding needs an odd width).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        kernel: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(kernel % 2 == 1, "Conv1d kernel must be odd, got {kernel}");
        let weight =
            store.add(format!("{name}.weight"), init::he_normal(kernel * in_dim, out_dim, rng));
        let bias = store.add(format!("{name}.bias"), Matrix::zeros(1, out_dim));
        Self { weight, bias, in_dim, out_dim, kernel }
    }

    /// Output feature size.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Input feature size.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Kernel width (odd).
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Handle to the `kernel * in_dim x out_dim` weight matrix.
    pub fn weight_id(&self) -> ParamId {
        self.weight
    }

    /// Handle to the `1 x out_dim` bias row.
    pub fn bias_id(&self) -> ParamId {
        self.bias
    }

    /// Applies the convolution to a `T x in_dim` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, xs: NodeId) -> NodeId {
        debug_assert_eq!(g.value(xs).cols(), self.in_dim, "Conv1d input width mismatch");
        let unfolded = g.im2row(xs, self.kernel, self.kernel / 2);
        let w = g.param(store, self.weight);
        let b = g.param(store, self.bias);
        let conv = g.matmul(unfolded, w);
        g.add_row_broadcast(conv, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_sequence_length() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let conv = Conv1d::new(&mut ps, "c", 4, 6, 3, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Matrix::ones(9, 4));
        let y = conv.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).shape(), (9, 6));
    }

    #[test]
    #[should_panic(expected = "kernel must be odd")]
    fn even_kernel_rejected() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let _ = Conv1d::new(&mut ps, "c", 4, 6, 2, &mut rng);
    }

    #[test]
    fn learns_local_pattern_detection() {
        // Task: a token is positive iff its left neighbour equals 1.
        // Requires the kernel window — a pointwise model cannot solve it.
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let conv = Conv1d::new(&mut ps, "c", 1, 8, 3, &mut rng);
        let head = crate::nn::Linear::new(&mut ps, "h", 8, 2, &mut rng);
        let mut opt = Adam::new(0.05);
        let gen = |rng: &mut SmallRng| -> (Matrix, Vec<usize>) {
            let vals: Vec<f32> = (0..6).map(|_| f32::from(rng.gen_bool(0.5))).collect();
            let labels: Vec<usize> =
                (0..6).map(|t| usize::from(t > 0 && vals[t - 1] == 1.0)).collect();
            (Matrix::from_rows(&vals.iter().map(|&v| vec![v]).collect::<Vec<_>>()), labels)
        };
        for _ in 0..300 {
            let (x, labels) = gen(&mut rng);
            let mut g = Graph::new();
            let xn = g.constant(x);
            let enc = conv.forward(&mut g, &ps, xn);
            let act = g.relu(enc);
            let logits = head.forward(&mut g, &ps, act);
            let mut targets = Matrix::zeros(6, 2);
            for (t, &l) in labels.iter().enumerate() {
                targets[(t, l)] = 1.0;
            }
            let loss = g.cross_entropy(logits, &targets, &[1.0; 6]);
            g.backward(loss);
            g.flush_grads(&mut ps);
            opt.step(&mut ps);
            ps.zero_grads();
        }
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..20 {
            let (x, labels) = gen(&mut rng);
            let mut g = Graph::new();
            let xn = g.constant(x);
            let enc = conv.forward(&mut g, &ps, xn);
            let act = g.relu(enc);
            let logits = head.forward(&mut g, &ps, act);
            for (t, &l) in labels.iter().enumerate() {
                total += 1;
                if g.value(logits).row_argmax(t) == l {
                    correct += 1;
                }
            }
        }
        assert!(correct as f32 / total as f32 > 0.9, "accuracy {correct}/{total}");
    }
}

//! LSTM sequence encoders (unidirectional and bidirectional).

use crate::graph::{Graph, NodeId};
use crate::init;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use rand::Rng;

/// A single-layer LSTM over a `T x in_dim` sequence, producing `T x hidden`.
///
/// Gate weights are fused into one `in_dim x 4h` input matrix and one
/// `h x 4h` recurrent matrix, column order `[input, forget, cell, output]`.
/// The forget-gate bias is initialized to 1.0 (standard trick for gradient
/// flow over long sequences).
#[derive(Debug, Clone)]
pub struct Lstm {
    wx: ParamId,
    wh: ParamId,
    bias: ParamId,
    in_dim: usize,
    hidden: usize,
}

impl Lstm {
    /// Registers parameters under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let wx = store.add(format!("{name}.wx"), init::xavier_uniform(in_dim, 4 * hidden, rng));
        let wh = store.add(format!("{name}.wh"), init::xavier_uniform(hidden, 4 * hidden, rng));
        let mut b = Matrix::zeros(1, 4 * hidden);
        for j in hidden..2 * hidden {
            b[(0, j)] = 1.0; // forget gate bias
        }
        let bias = store.add(format!("{name}.bias"), b);
        Self { wx, wh, bias, in_dim, hidden }
    }

    /// Hidden state size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input feature size.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Handle to the `in_dim x 4*hidden` input weight matrix.
    pub fn wx_id(&self) -> ParamId {
        self.wx
    }

    /// Handle to the `hidden x 4*hidden` recurrent weight matrix.
    pub fn wh_id(&self) -> ParamId {
        self.wh
    }

    /// Handle to the `1 x 4*hidden` gate bias row.
    pub fn bias_id(&self) -> ParamId {
        self.bias
    }

    /// Runs the recurrence over a `T x in_dim` node, returning `T x hidden`
    /// (the hidden state at every step).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, xs: NodeId) -> NodeId {
        let t_len = g.value(xs).rows();
        assert!(t_len > 0, "LSTM over an empty sequence");
        debug_assert_eq!(g.value(xs).cols(), self.in_dim, "LSTM input width mismatch");
        let h = self.hidden;
        let wx = g.param(store, self.wx);
        let wh = g.param(store, self.wh);
        let bias = g.param(store, self.bias);

        // Pre-compute x_t W_x for the whole sequence in one matmul.
        let xw_all = g.matmul(xs, wx);

        let mut h_prev = g.constant(Matrix::zeros(1, h));
        let mut c_prev = g.constant(Matrix::zeros(1, h));
        let mut outputs = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let xw = g.select_rows(xw_all, &[t]);
            let hw = g.matmul(h_prev, wh);
            let pre0 = g.add(xw, hw);
            let pre = g.add_row_broadcast(pre0, bias);
            let i_gate = {
                let s = g.slice_cols(pre, 0, h);
                g.sigmoid(s)
            };
            let f_gate = {
                let s = g.slice_cols(pre, h, 2 * h);
                g.sigmoid(s)
            };
            let c_cand = {
                let s = g.slice_cols(pre, 2 * h, 3 * h);
                g.tanh(s)
            };
            let o_gate = {
                let s = g.slice_cols(pre, 3 * h, 4 * h);
                g.sigmoid(s)
            };
            let keep = g.mul(f_gate, c_prev);
            let write = g.mul(i_gate, c_cand);
            let c = g.add(keep, write);
            let c_tanh = g.tanh(c);
            let h_t = g.mul(o_gate, c_tanh);
            outputs.push(h_t);
            h_prev = h_t;
            c_prev = c;
        }
        g.concat_rows(&outputs)
    }
}

/// A bidirectional LSTM: forward and backward passes concatenated, producing
/// `T x 2*hidden`.
#[derive(Debug, Clone)]
pub struct BiLstm {
    fwd: Lstm,
    bwd: Lstm,
}

impl BiLstm {
    /// Registers both directions under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            fwd: Lstm::new(store, &format!("{name}.fwd"), in_dim, hidden, rng),
            bwd: Lstm::new(store, &format!("{name}.bwd"), in_dim, hidden, rng),
        }
    }

    /// Output width (`2 * hidden`).
    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden()
    }

    /// The forward-direction LSTM.
    pub fn fwd(&self) -> &Lstm {
        &self.fwd
    }

    /// The backward-direction LSTM.
    pub fn bwd(&self) -> &Lstm {
        &self.bwd
    }

    /// Encodes a `T x in_dim` node into `T x 2*hidden`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, xs: NodeId) -> NodeId {
        let f = self.fwd.forward(g, store, xs);
        let rev_in = g.reverse_rows(xs);
        let b_rev = self.bwd.forward(g, store, rev_in);
        let b = g.reverse_rows(b_rev);
        g.concat_cols(&[f, b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn lstm_output_shape() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let lstm = Lstm::new(&mut ps, "l", 3, 5, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Matrix::ones(7, 3));
        let y = lstm.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).shape(), (7, 5));
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn bilstm_output_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let lstm = BiLstm::new(&mut ps, "b", 3, 4, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Matrix::ones(6, 3));
        let y = lstm.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).shape(), (6, 8));
    }

    #[test]
    fn hidden_states_are_bounded() {
        // h = o * tanh(c) with o in (0,1): |h| < 1 in exact arithmetic, but
        // f32 saturation (sigmoid/tanh rounding to exactly 1.0 on huge
        // inputs) makes equality attainable.
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let lstm = Lstm::new(&mut ps, "l", 2, 3, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Matrix::full(10, 2, 100.0));
        let y = lstm.forward(&mut g, &ps, x);
        assert!(g.value(y).as_slice().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_learns_last_token_detection() {
        // Task: predict whether the LAST element of the sequence is positive.
        // A mean-pooling model cannot do this reliably; an LSTM can.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let lstm = Lstm::new(&mut ps, "l", 1, 8, &mut rng);
        let head = crate::nn::Linear::new(&mut ps, "head", 8, 2, &mut rng);
        let mut opt = Adam::new(0.02);

        let make_seq = |rng: &mut SmallRng| -> (Matrix, usize) {
            let vals: Vec<f32> =
                (0..5).map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 }).collect();
            let label = usize::from(vals[4] > 0.0);
            (Matrix::from_rows(&vals.iter().map(|&v| vec![v]).collect::<Vec<_>>()), label)
        };

        for _ in 0..200 {
            let (seq, label) = make_seq(&mut rng);
            let mut g = Graph::new();
            let x = g.constant(seq);
            let hs = lstm.forward(&mut g, &ps, x);
            let last = g.select_rows(hs, &[4]);
            let logits = head.forward(&mut g, &ps, last);
            let mut target = Matrix::zeros(1, 2);
            target[(0, label)] = 1.0;
            let loss = g.cross_entropy(logits, &target, &[1.0]);
            g.backward(loss);
            g.flush_grads(&mut ps);
            ps.clip_grad_norm(5.0);
            opt.step(&mut ps);
            ps.zero_grads();
        }
        // Evaluate.
        let mut correct = 0;
        for _ in 0..50 {
            let (seq, label) = make_seq(&mut rng);
            let mut g = Graph::new();
            let x = g.constant(seq);
            let hs = lstm.forward(&mut g, &ps, x);
            let last = g.select_rows(hs, &[4]);
            let logits = head.forward(&mut g, &ps, last);
            if g.value(logits).row_argmax(0) == label {
                correct += 1;
            }
        }
        assert!(correct >= 45, "accuracy {correct}/50");
    }
}

//! Learnable parameter storage, shared across per-step [`Graph`](crate::Graph)s.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) u32);

#[derive(Clone, Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    value: Matrix,
    #[serde(skip, default)]
    grad: Option<Matrix>,
    /// Frozen parameters keep their values during optimization (used to pin
    /// pretrained embeddings or SLA-critical weights).
    frozen: bool,
}

/// Owns every learnable matrix of a model plus its accumulated gradients.
///
/// Graphs reference parameters by [`ParamId`]; after a backward pass,
/// [`Graph::flush_grads`](crate::Graph::flush_grads) adds the leaf gradients
/// here, and an [`Optimizer`](crate::optim::Optimizer) consumes them.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let id = ParamId(self.entries.len() as u32);
        self.entries.push(ParamEntry { name: name.into(), value, grad: None, frozen: false });
        id
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store has no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Handles of all parameters, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.entries.len() as u32).map(ParamId)
    }

    /// The parameter's registered name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0 as usize].name
    }

    /// Immutable view of a parameter's value.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0 as usize].value
    }

    /// Mutable view of a parameter's value.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.entries[id.0 as usize].value
    }

    /// Immutable view of the accumulated gradient (zeros if untouched).
    pub fn grad(&self, id: ParamId) -> Matrix {
        let e = &self.entries[id.0 as usize];
        e.grad.clone().unwrap_or_else(|| Matrix::zeros(e.value.rows(), e.value.cols()))
    }

    /// Mutable view of the accumulated gradient, allocating zeros on first
    /// touch.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        let e = &mut self.entries[id.0 as usize];
        e.grad.get_or_insert_with(|| Matrix::zeros(e.value.rows(), e.value.cols()))
    }

    /// Split borrow of one parameter: the mutable value together with its
    /// accumulated gradient (if any touched it). Lets optimizers run
    /// single-pass fused updates without cloning the gradient.
    pub fn value_and_grad_mut(&mut self, id: ParamId) -> (&mut Matrix, Option<&Matrix>) {
        let e = &mut self.entries[id.0 as usize];
        (&mut e.value, e.grad.as_ref())
    }

    /// Marks a parameter as frozen; optimizers will skip it.
    pub fn freeze(&mut self, id: ParamId) {
        self.entries[id.0 as usize].frozen = true;
    }

    /// Whether a parameter is frozen.
    pub fn is_frozen(&self, id: ParamId) -> bool {
        self.entries[id.0 as usize].frozen
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad = None;
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .filter_map(|e| e.grad.as_ref())
            .map(|g| g.as_slice().iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so the global norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for e in &mut self.entries {
                if let Some(g) = &mut e.grad {
                    g.scale_inplace(scale);
                }
            }
        }
        norm
    }

    /// Copies parameter values from another store with identical structure.
    ///
    /// # Panics
    /// Panics if the stores have different parameter counts or shapes.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        assert_eq!(self.len(), other.len(), "param store size mismatch");
        for (mine, theirs) in self.entries.iter_mut().zip(&other.entries) {
            assert_eq!(mine.value.shape(), theirs.value.shape(), "param shape mismatch");
            mine.value = theirs.value.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Matrix::ones(2, 3));
        assert_eq!(ps.name(id), "w");
        assert_eq!(ps.value(id).shape(), (2, 3));
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.num_weights(), 6);
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Matrix::zeros(1, 2));
        ps.grad_mut(id).add_assign(&Matrix::row_vector(&[1.0, 2.0]));
        ps.grad_mut(id).add_assign(&Matrix::row_vector(&[1.0, 2.0]));
        assert_eq!(ps.grad(id).as_slice(), &[2.0, 4.0]);
        ps.zero_grads();
        assert_eq!(ps.grad(id).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Matrix::zeros(1, 2));
        ps.grad_mut(id).add_assign(&Matrix::row_vector(&[3.0, 4.0]));
        let pre = ps.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((ps.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_leaves_small_grads() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Matrix::zeros(1, 2));
        ps.grad_mut(id).add_assign(&Matrix::row_vector(&[0.3, 0.4]));
        ps.clip_grad_norm(1.0);
        assert_eq!(ps.grad(id).as_slice(), &[0.3, 0.4]);
    }

    #[test]
    fn freeze_flag() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Matrix::zeros(1, 1));
        assert!(!ps.is_frozen(id));
        ps.freeze(id);
        assert!(ps.is_frozen(id));
    }

    #[test]
    fn serde_roundtrip_drops_grads() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Matrix::ones(1, 2));
        ps.grad_mut(id).add_assign(&Matrix::row_vector(&[5.0, 5.0]));
        let json = serde_json::to_string(&ps).unwrap();
        let back: ParamStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.value(id), ps.value(id));
        assert_eq!(back.grad(id).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn copy_values_from_matches() {
        let mut a = ParamStore::new();
        let ida = a.add("w", Matrix::zeros(2, 2));
        let mut b = ParamStore::new();
        let _ = b.add("w", Matrix::full(2, 2, 7.0));
        a.copy_values_from(&b);
        assert_eq!(a.value(ida).as_slice(), &[7.0; 4]);
    }
}

//! Property-based gradient verification: random shapes, random values,
//! random op chains — analytic gradients must always match finite
//! differences. This is the strongest guarantee the autograd engine offers.

use overton_tensor::gradcheck::check_gradients;
use overton_tensor::Matrix;
use proptest::prelude::*;

const TOL: f32 = 5e-2; // f32 central differences are noisy
const EPS: f32 = 1e-2;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_chain_gradients(
        m in 1usize..4,
        k in 1usize..4,
        n in 1usize..4,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let a = Matrix::from_vec(m, k, (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let report = check_gradients(&[a, b], EPS, |g, ids| {
            let p = g.matmul(ids[0], ids[1]);
            let t = g.tanh(p);
            g.sum_all(t)
        });
        prop_assert!(report.passes(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn elementwise_pipeline_gradients(a in arb_matrix(3, 4), b in arb_matrix(3, 4)) {
        let report = check_gradients(&[a, b], EPS, |g, ids| {
            let s = g.add(ids[0], ids[1]);
            let m = g.mul(s, ids[0]);
            let r = g.relu(m);
            let sc = g.scale(r, 0.5);
            g.mean_all(sc)
        });
        prop_assert!(report.passes(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn softmax_cross_entropy_gradients(logits in arb_matrix(2, 5)) {
        // A fixed, valid target distribution.
        let targets = Matrix::from_rows(&[
            vec![0.1, 0.2, 0.3, 0.2, 0.2],
            vec![1.0, 0.0, 0.0, 0.0, 0.0],
        ]);
        let report = check_gradients(&[logits], EPS, move |g, ids| {
            g.cross_entropy(ids[0], &targets, &[0.5, 1.5])
        });
        prop_assert!(report.passes(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn bce_gradients(logits in arb_matrix(3, 3)) {
        let targets = Matrix::from_vec(3, 3, vec![1.0, 0.0, 0.5, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let mask = Matrix::from_vec(3, 3, vec![1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let report = check_gradients(&[logits], EPS, move |g, ids| {
            g.bce_with_logits(ids[0], &targets, &mask)
        });
        prop_assert!(report.passes(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn shape_op_chain_gradients(a in arb_matrix(4, 3)) {
        let report = check_gradients(&[a], EPS, |g, ids| {
            let t = g.transpose(ids[0]); // 3x4
            let rev = g.reverse_rows(t);
            let sel = g.select_rows(rev, &[0, 2, 2]);
            let sli = g.slice_cols(sel, 1, 4);
            let sq = g.mul(sli, sli);
            g.sum_all(sq)
        });
        prop_assert!(report.passes(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn broadcast_and_reduce_gradients(a in arb_matrix(3, 4)) {
        let bias = Matrix::row_vector(&[0.1, -0.2, 0.3, 0.0]);
        let report = check_gradients(&[a, bias], EPS, |g, ids| {
            let with_bias = g.add_row_broadcast(ids[0], ids[1]);
            let act = g.sigmoid(with_bias);
            let pooled = g.mean_rows(act);
            let sq = g.mul(pooled, pooled);
            g.sum_all(sq)
        });
        prop_assert!(report.passes(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn softmax_rows_distribution_property(a in arb_matrix(4, 6)) {
        // Softmax rows always sum to 1 and are positive.
        let mut g = overton_tensor::Graph::new();
        let x = g.constant(a);
        let s = g.softmax_rows(x);
        let v = g.value(s);
        for r in 0..v.rows() {
            let sum: f32 = v.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(v.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn im2row_gradients(a in arb_matrix(5, 2)) {
        let report = check_gradients(&[a], EPS, |g, ids| {
            let unfolded = g.im2row(ids[0], 3, 1);
            let sq = g.mul(unfolded, unfolded);
            g.sum_all(sq)
        });
        prop_assert!(report.passes(TOL), "max rel err {}", report.max_rel_error);
    }
}

//! Property-based parity of the blocked GEMM kernels against the naive
//! reference loops: random shapes on both sides of the dispatch cutoff,
//! dimensions not divisible by the block sizes, and degenerate edges
//! (empty, 1xN, Nx1). Equality is exact (`==`, not tolerance): the
//! blocked kernels accumulate every output element in the same strictly
//! increasing k order as the naive loops, so dispatch must never change
//! a single bit.

use overton_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The seed repo's naive `A * B` (i-k-j loops), kept here as the parity
/// reference for whatever path `Matrix::matmul` dispatches to.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a.as_slice()[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b.as_slice()[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    Matrix::from_vec(m, n, out)
}

/// Naive `A * B^T`: per-cell ascending-k dot product.
fn naive_matmul_transpose_b(a: &Matrix, bt: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), bt.rows());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[(i, p)] * bt[(j, p)];
            }
            out[i * n + j] = acc;
        }
    }
    Matrix::from_vec(m, n, out)
}

/// Naive `A^T * B`: k-outer loops, ascending k per output element.
fn naive_transpose_a_matmul(at: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (at.cols(), at.rows(), b.cols());
    let mut out = vec![0.0f32; m * n];
    for kk in 0..k {
        for i in 0..m {
            let av = at[(kk, i)];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, bv) in out_row.iter_mut().zip(b.row(kk)) {
                *o += av * bv;
            }
        }
    }
    Matrix::from_vec(m, n, out)
}

fn random_matrix(rng: &mut SmallRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Shape ranges straddle the blocked-dispatch cutoff and are prime-ish
    // bounded, so cases land on every combination of full and ragged
    // MR/NR/KC/MC/NC tiles.
    #[test]
    fn matmul_parity(m in 1usize..70, k in 1usize..90, n in 1usize..70, seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        prop_assert_eq!(a.matmul(&b), naive_matmul(&a, &b));
    }

    #[test]
    fn matmul_transpose_b_parity(
        m in 1usize..70, k in 1usize..90, n in 1usize..70, seed in 0u64..1_000_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, m, k);
        let bt = random_matrix(&mut rng, n, k);
        prop_assert_eq!(a.matmul_transpose_b(&bt), naive_matmul_transpose_b(&a, &bt));
    }

    #[test]
    fn transpose_a_matmul_parity(
        m in 1usize..70, k in 1usize..90, n in 1usize..70, seed in 0u64..1_000_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let at = random_matrix(&mut rng, k, m);
        let b = random_matrix(&mut rng, k, n);
        prop_assert_eq!(at.transpose_a_matmul(&b), naive_transpose_a_matmul(&at, &b));
    }

    // Sparse operands take the skip-zero naive path below the cutoff; the
    // blocked path above it never skips. Both must agree with the dense
    // reference on every (finite) input.
    #[test]
    fn sparse_operand_parity(m in 1usize..40, k in 1usize..60, n in 1usize..40, seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut a = random_matrix(&mut rng, m, k);
        for x in a.as_mut_slice() {
            if rng.gen_bool(0.7) {
                *x = 0.0;
            }
        }
        let b = random_matrix(&mut rng, k, n);
        prop_assert_eq!(a.matmul(&b), naive_matmul(&a, &b));
    }
}

#[test]
fn production_shapes_bit_identical() {
    // The shapes the serving/training hot path actually runs: batch x
    // hidden GEMMs, im2row conv products, and the 256^3 bench shape —
    // all far above the dispatch cutoff.
    let mut rng = SmallRng::seed_from_u64(17);
    for (m, k, n) in [(64, 48, 48), (128, 96, 48), (33, 48, 96), (256, 256, 256)] {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        assert_eq!(a.matmul(&b), naive_matmul(&a, &b), "{m}x{k}*{k}x{n}");
        let bt = random_matrix(&mut rng, n, k);
        assert_eq!(
            a.matmul_transpose_b(&bt),
            naive_matmul_transpose_b(&a, &bt),
            "{m}x{k}*({n}x{k})^T"
        );
        let at = random_matrix(&mut rng, k, m);
        assert_eq!(
            at.transpose_a_matmul(&b),
            naive_transpose_a_matmul(&at, &b),
            "({k}x{m})^T*{k}x{n}"
        );
    }
}

#[test]
fn degenerate_shapes() {
    let mut rng = SmallRng::seed_from_u64(5);
    // Empty on every axis.
    for (m, k, n) in [(0, 4, 3), (4, 0, 3), (4, 3, 0), (0, 0, 0)] {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (m, n));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }
    // 1xN row and Nx1 column against a large-k operand (k alone cannot
    // trip the blocked path without m and n).
    let row = random_matrix(&mut rng, 1, 300);
    let b = random_matrix(&mut rng, 300, 50);
    assert_eq!(row.matmul(&b), naive_matmul(&row, &b));
    let col = random_matrix(&mut rng, 300, 1);
    let a = random_matrix(&mut rng, 50, 300);
    assert_eq!(a.matmul(&col), naive_matmul(&a, &col));
}

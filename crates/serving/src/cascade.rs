//! Model-pair cascade routing (paper §2.4).
//!
//! Overton trains synchronized large/small model pairs: "the large model is
//! often used to populate caches and do error analysis, while the small
//! model must meet SLA requirements". At serving time that becomes a
//! *cascade*: the small model answers every request, and responses whose
//! confidence falls below a threshold are escalated to the large model.
//! Per-route counters feed the monitoring loop — a rising escalation rate
//! is an early drift signal before any gold label exists.

use overton_model::{ModelPair, Server, ServingResponse};
use overton_store::{Record, ServingSignature, StoreError};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which half of the model pair produced a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Answered by the small (SLA) model.
    Small,
    /// Escalated to the large (quality) model.
    Large,
}

/// Per-route request counters since engine construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CascadeCounters {
    /// Responses answered by the small model alone.
    pub small: u64,
    /// Requests escalated to the large model.
    pub escalated: u64,
    /// Responses produced by the small model's i8 quantized path (a subset
    /// of `small + escalated`: every request first runs through the small
    /// model, quantized or not).
    pub quantized: u64,
}

impl CascadeCounters {
    /// Fraction of routed requests that escalated (0 when none routed).
    pub fn escalation_rate(&self) -> f64 {
        let total = self.small + self.escalated;
        if total == 0 {
            0.0
        } else {
            self.escalated as f64 / total as f64
        }
    }
}

/// The inference engine behind the worker pool: a small serving model,
/// optionally backed by a large model for low-confidence escalation.
pub struct CascadeEngine {
    small: Server,
    large: Option<Server>,
    threshold: f32,
    answered_small: AtomicU64,
    escalated: AtomicU64,
    answered_quantized: AtomicU64,
}

impl CascadeEngine {
    /// An engine with no large model: every request is answered by the one
    /// server, nothing escalates.
    pub fn single(server: Server) -> Self {
        Self {
            small: server,
            large: None,
            threshold: 0.0,
            answered_small: AtomicU64::new(0),
            escalated: AtomicU64::new(0),
            answered_quantized: AtomicU64::new(0),
        }
    }

    /// Converts the small (SLA) model to the i8 quantized inference path.
    /// The large model — the quality backstop that escalations re-run —
    /// stays full-precision, so low-confidence answers lose nothing.
    #[must_use]
    pub fn with_quantized_small(mut self) -> Self {
        self.small = self.small.quantize();
        self
    }

    /// Whether the small model serves through the quantized path.
    pub fn small_is_quantized(&self) -> bool {
        self.small.is_quantized()
    }

    /// Builds a cascade from a synchronized model pair: responses from the
    /// small model with confidence strictly below `threshold` are re-run
    /// through the large model.
    pub fn from_pair(pair: &ModelPair, threshold: f32) -> Result<Self, StoreError> {
        if !pair.synchronized() {
            return Err(StoreError::Validation(
                "cascade requires a synchronized model pair (same schema, signature and \
                 slice space)"
                    .into(),
            ));
        }
        Ok(Self {
            small: Server::load(&pair.small),
            large: Some(Server::load(&pair.large)),
            threshold,
            answered_small: AtomicU64::new(0),
            escalated: AtomicU64::new(0),
            answered_quantized: AtomicU64::new(0),
        })
    }

    /// The serving signature (stable across hot-swaps of either half).
    pub fn signature(&self) -> &ServingSignature {
        self.small.signature()
    }

    /// The schema the engine serves (shared by both halves of a pair).
    pub fn schema(&self) -> &overton_store::Schema {
        self.small.schema()
    }

    /// Slice names of the serving model's feature space, in indicator
    /// order.
    pub fn slice_names(&self) -> &[String] {
        &self.small.feature_space().slice_names
    }

    /// The escalation threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Whether a large model is attached.
    pub fn has_large(&self) -> bool {
        self.large.is_some()
    }

    /// Current per-route counters.
    pub fn counters(&self) -> CascadeCounters {
        CascadeCounters {
            small: self.answered_small.load(Ordering::Relaxed),
            escalated: self.escalated.load(Ordering::Relaxed),
            quantized: self.answered_quantized.load(Ordering::Relaxed),
        }
    }

    /// Answers one batch: the small model predicts everything through the
    /// batched forward path, then the low-confidence subset is re-answered
    /// by the large model (also batched). Returns one `(result, route)` per
    /// record, in input order.
    pub fn answer_batch(
        &self,
        records: &[Record],
    ) -> Vec<(Result<ServingResponse, StoreError>, Route)> {
        let mut results: Vec<(Result<ServingResponse, StoreError>, Route)> =
            self.small.predict_batch(records).into_iter().map(|r| (r, Route::Small)).collect();
        if let Some(large) = &self.large {
            let escalate: Vec<usize> = results
                .iter()
                .enumerate()
                .filter(|(_, (r, _))| matches!(r, Ok(resp) if resp.confidence < self.threshold))
                .map(|(i, _)| i)
                .collect();
            if !escalate.is_empty() {
                let subset: Vec<Record> = escalate.iter().map(|&i| records[i].clone()).collect();
                for (&i, upgraded) in escalate.iter().zip(large.predict_batch(&subset)) {
                    results[i] = (upgraded, Route::Large);
                }
            }
            let answered = results.iter().filter(|(r, _)| r.is_ok()).count() as u64;
            let escalated = escalate.len() as u64;
            self.escalated.fetch_add(escalated, Ordering::Relaxed);
            self.answered_small.fetch_add(answered.saturating_sub(escalated), Ordering::Relaxed);
            if self.small.is_quantized() {
                self.answered_quantized.fetch_add(answered, Ordering::Relaxed);
            }
        } else {
            let answered = results.iter().filter(|(r, _)| r.is_ok()).count() as u64;
            self.answered_small.fetch_add(answered, Ordering::Relaxed);
            if self.small.is_quantized() {
                self.answered_quantized.fetch_add(answered, Ordering::Relaxed);
            }
        }
        results
    }

    /// Answers a single record (a batch of one).
    pub fn answer(&self, record: &Record) -> (Result<ServingResponse, StoreError>, Route) {
        self.answer_batch(std::slice::from_ref(record)).pop().expect("one result per record")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_model::{CompiledModel, DeployableModel, FeatureSpace, ModelConfig, ServedOutput};
    use overton_nlp::{generate_workload, WorkloadConfig};
    use std::collections::BTreeMap;

    fn pair() -> (overton_store::Dataset, ModelPair) {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 40,
            n_dev: 10,
            n_test: 30,
            seed: 61,
            ..Default::default()
        });
        let space = FeatureSpace::build(&ds);
        let large = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
        let small_cfg = ModelConfig { hidden_dim: 16, token_dim: 16, ..Default::default() };
        let small = CompiledModel::compile(ds.schema(), &space, &small_cfg, None);
        let pair = ModelPair {
            large: DeployableModel::package(&large, &space, BTreeMap::new()),
            small: DeployableModel::package(&small, &space, BTreeMap::new()),
        };
        (ds, pair)
    }

    fn test_records(ds: &overton_store::Dataset) -> Vec<Record> {
        ds.test_indices().iter().map(|&i| ds.records()[i].clone()).collect()
    }

    #[test]
    fn threshold_zero_never_escalates() {
        let (ds, pair) = pair();
        let engine = CascadeEngine::from_pair(&pair, 0.0).unwrap();
        let results = engine.answer_batch(&test_records(&ds));
        assert!(results.iter().all(|(r, route)| r.is_ok() && *route == Route::Small));
        let counters = engine.counters();
        assert_eq!(counters.escalated, 0);
        assert_eq!(counters.small, results.len() as u64);
        assert_eq!(counters.escalation_rate(), 0.0);
    }

    #[test]
    fn threshold_above_one_always_escalates_and_matches_large() {
        let (ds, pair) = pair();
        let records = test_records(&ds);
        let engine = CascadeEngine::from_pair(&pair, 1.5).unwrap();
        let results = engine.answer_batch(&records);
        assert!(results.iter().all(|(_, route)| *route == Route::Large));
        assert_eq!(engine.counters().escalated, records.len() as u64);
        // Escalated answers are exactly what the large model alone returns.
        let large = Server::load(&pair.large);
        for (record, (result, _)) in records.iter().zip(&results) {
            assert_eq!(*result.as_ref().unwrap(), large.predict(record).unwrap());
        }
    }

    /// Quality guard for the quantized small path: on a trained pair, the
    /// quantized cascade must (a) answer everything, (b) agree with the f32
    /// cascade on the overwhelming majority of task decisions, (c) keep its
    /// escalation rate close to the f32 cascade's, and (d) account every
    /// answered request in the quantized counter.
    #[test]
    fn quantized_small_cascade_guards_quality() {
        use overton_model::{prepare, train_model, TrainConfig};
        let ds = generate_workload(&WorkloadConfig {
            n_train: 60,
            n_dev: 15,
            n_test: 40,
            seed: 61,
            ..Default::default()
        });
        let prepared = prepare(&ds, &overton_supervision::CombineMethod::MajorityVote).unwrap();
        let train_cfg = TrainConfig { epochs: 3, early_stop_patience: 0, ..Default::default() };
        let mut large =
            CompiledModel::compile(ds.schema(), &prepared.space, &ModelConfig::default(), None);
        train_model(&mut large, &prepared.train, &prepared.dev, &train_cfg);
        let small_cfg = ModelConfig { hidden_dim: 16, token_dim: 16, ..Default::default() };
        let mut small = CompiledModel::compile(ds.schema(), &prepared.space, &small_cfg, None);
        train_model(&mut small, &prepared.train, &prepared.dev, &train_cfg);
        let pair = ModelPair {
            large: DeployableModel::package(&large, &prepared.space, BTreeMap::new()),
            small: DeployableModel::package(&small, &prepared.space, BTreeMap::new()),
        };
        let records = test_records(&ds);

        let full = CascadeEngine::from_pair(&pair, 0.6).unwrap();
        let quant = CascadeEngine::from_pair(&pair, 0.6).unwrap().with_quantized_small();
        assert!(quant.small_is_quantized() && !full.small_is_quantized());
        let full_results = full.answer_batch(&records);
        let quant_results = quant.answer_batch(&records);

        let answered = quant_results.iter().filter(|(r, _)| r.is_ok()).count() as u64;
        assert_eq!(answered, records.len() as u64, "quantized cascade dropped requests");
        assert_eq!(quant.counters().quantized, answered);
        assert_eq!(full.counters().quantized, 0);

        let delta = (quant.counters().escalation_rate() - full.counters().escalation_rate()).abs();
        assert!(delta <= 0.2, "escalation rate drifted by {delta:.3} under quantization");

        let mut same = 0usize;
        let mut total = 0usize;
        for ((a, _), (b, _)) in full_results.iter().zip(&quant_results) {
            let (Ok(a), Ok(b)) = (a, b) else { panic!("both cascades must answer") };
            for (task, output) in &a.tasks {
                let matched = match (output, &b.tasks[task]) {
                    (
                        ServedOutput::Multiclass { class: x, .. },
                        ServedOutput::Multiclass { class: y, .. },
                    ) => x == y,
                    (
                        ServedOutput::MulticlassSeq { classes: x },
                        ServedOutput::MulticlassSeq { classes: y },
                    ) => x == y,
                    (ServedOutput::Bits { set: x }, ServedOutput::Bits { set: y }) => x == y,
                    (ServedOutput::BitsSeq { rows: x }, ServedOutput::BitsSeq { rows: y }) => {
                        x == y
                    }
                    (
                        ServedOutput::Select { index: x, .. },
                        ServedOutput::Select { index: y, .. },
                    ) => x == y,
                    _ => false,
                };
                total += 1;
                same += usize::from(matched);
            }
        }
        let agreement = same as f64 / total as f64;
        assert!(agreement >= 0.85, "quantized/f32 cascade agreement too low: {agreement:.3}");
    }

    #[test]
    fn single_engine_has_no_large_route() {
        let (ds, pair) = pair();
        let engine = CascadeEngine::single(Server::load(&pair.small));
        assert!(!engine.has_large());
        let (result, route) = engine.answer(&test_records(&ds)[0]);
        assert!(result.is_ok());
        assert_eq!(route, Route::Small);
    }

    #[test]
    fn desynchronized_pair_rejected() {
        let (ds, pair) = pair();
        // A large model compiled from an evolved schema (a task removed) is
        // not a drop-in for the small one.
        let mut schema = ds.schema().clone();
        schema.tasks.remove("POS");
        let space = FeatureSpace::build(&ds);
        let model = CompiledModel::compile(&schema, &space, &ModelConfig::default(), None);
        let bad = ModelPair {
            large: DeployableModel::package(&model, &space, BTreeMap::new()),
            small: pair.small.clone(),
        };
        assert!(CascadeEngine::from_pair(&bad, 0.5).is_err());
    }
}

//! Live serving telemetry: QPS, latency quantiles, per-slice traffic
//! shares and confidence drift against a training-time baseline.
//!
//! The paper's monitoring story (§1, §2.2) is about *fine-grained* product
//! quality; post-deployment, the first signals arrive before any gold
//! label does — traffic mix shifting toward a hard slice, the serving
//! model's confidence sagging, tail latencies growing. This module
//! aggregates those from the worker pool with lock-free counters so the
//! hot path never blocks on monitoring, and offers a single cheap
//! **observer hook** ([`Telemetry::attach_observer`]) through which the
//! continuous-monitoring subsystem (`overton-obs`) receives one
//! [`ServeSample`] per request over a bounded channel — one atomic bump
//! plus a `try_send`, never a block, never a lock on the serving path.

use crate::score::score_response;
use overton_model::{Server, ServingResponse};
use overton_store::{Record, Schema, StoreError};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Power-of-two latency buckets from 1µs up: bucket `i` counts latencies
/// in `[2^(i-1), 2^i)` µs, with the final bucket absorbing everything
/// slower (~9 minutes and up). Public so the windowed statistics of
/// `overton-obs` can use the identical bucketing scheme.
pub const LATENCY_BUCKETS: usize = 30;

/// Number of fixed-width confidence histogram bins over `[0, 1]`, shared
/// by [`TrafficBaseline`] and the windowed confidence distributions of
/// `overton-obs` (the KS drift statistic compares the two directly).
pub const CONFIDENCE_BINS: usize = 20;

/// The bucket a latency in microseconds falls into (log2 scale, clamped
/// to the final bucket).
pub fn latency_bucket(micros: u64) -> usize {
    (64 - micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
}

/// The conservative (upper-bound) latency a bucket index resolves to.
pub fn latency_bucket_upper(bucket: usize) -> Duration {
    Duration::from_micros(1u64 << bucket.min(LATENCY_BUCKETS - 1))
}

/// The fixed-width confidence bin a confidence in `[0, 1]` falls into
/// (out-of-range values clamp to the edge bins).
pub fn confidence_bin(confidence: f32) -> usize {
    ((f64::from(confidence) * CONFIDENCE_BINS as f64) as usize).min(CONFIDENCE_BINS - 1)
}

/// A lock-free fixed-bucket latency histogram (log2 µs scale).
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; LATENCY_BUCKETS],
    sum_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram. `const` so fixed arrays of histograms (the
    /// per-stage store in [`crate::trace::TraceStore`]) can be built
    /// without `Default` machinery.
    pub const fn new() -> Self {
        Self {
            counts: [const { AtomicU64::new(0) }; LATENCY_BUCKETS],
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[latency_bucket(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the per-bucket counts (index `i` counts
    /// latencies up to [`latency_bucket_upper`]`(i)`) — the raw series
    /// the `/metrics` exposition derives its cumulative buckets from.
    pub fn bucket_counts(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }

    /// Sum of all observations in microseconds (the histogram `_sum`).
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_micros.load(Ordering::Relaxed) / n)
    }

    /// The `q`-quantile, resolved to the upper bound of the bucket
    /// containing it — a conservative estimate with at most 2x resolution
    /// error, which is what an SLA dashboard needs.
    ///
    /// Every input has a defined value: the empty histogram returns
    /// [`Duration::ZERO`] for any `q`, and `q` is clamped into `[0, 1]` —
    /// `q <= 0` resolves to the smallest observed bucket's bound and
    /// `q >= 1` to the largest.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        // NaN ends up as target 1 (the minimum), like q = 0.
        let q = q.clamp(0.0, 1.0);
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return latency_bucket_upper(i);
            }
        }
        latency_bucket_upper(LATENCY_BUCKETS - 1)
    }
}

/// Training-time reference distribution for drift detection: what slice
/// shares and confidence looked like on curated data when the artifact
/// shipped. Serializable — the evaluate stage persists it as a typed
/// `baseline.json` artifact in the run directory, and deployments reload
/// it so post-deployment drift is always measured against the
/// distribution the model was actually accepted on.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrafficBaseline {
    /// `(slice name, share of records *predicted* in the slice)` — the
    /// model's own slice-membership heads over the reference set.
    pub slice_shares: Vec<(String, f64)>,
    /// Mean response confidence.
    pub mean_confidence: f64,
    /// `(slice name, share of records *tagged* in the slice)` — curated
    /// membership, the reference for traffic-mix drift (PSI) where slice
    /// attribution of arriving records is available.
    pub tag_shares: Vec<(String, f64)>,
    /// Confidence histogram over the whole reference set
    /// ([`CONFIDENCE_BINS`] fixed-width bins on `[0, 1]`).
    pub confidence_hist: Vec<u64>,
    /// Per-slice confidence histograms (tag-based membership), parallel
    /// to [`tag_shares`](Self::tag_shares) — the reference distributions
    /// for the per-slice KS drift statistic.
    pub slice_confidence_hists: Vec<Vec<u64>>,
    /// Number of reference records the baseline was measured over. Zero
    /// on baselines persisted before sample sizes were recorded
    /// (`#[serde(default)]`), which disables significance-gated rules —
    /// a share without its sample size cannot anchor a significance test.
    #[serde(default)]
    pub sample_size: u64,
    /// Integer tagged-membership counts, parallel to
    /// [`tag_shares`](Self::tag_shares) (empty on pre-sample-size
    /// baselines). Together with [`sample_size`](Self::sample_size) these
    /// are the exact binomial counts the two-proportion significance test
    /// needs.
    #[serde(default)]
    pub tag_counts: Vec<u64>,
}

impl TrafficBaseline {
    /// Measures the baseline by running `server` over a reference set
    /// (typically the dev or test split the artifact was accepted on).
    pub fn collect(server: &Server, records: &[Record]) -> Result<Self, StoreError> {
        let slice_names = server.feature_space().slice_names.clone();
        let mut slice_counts = vec![0u64; slice_names.len()];
        let mut tag_counts = vec![0u64; slice_names.len()];
        let mut slice_hists = vec![vec![0u64; CONFIDENCE_BINS]; slice_names.len()];
        let mut confidence_hist = vec![0u64; CONFIDENCE_BINS];
        let mut confidence_sum = 0.0f64;
        let mut n = 0u64;
        for (record, result) in records.iter().zip(server.predict_batch(records)) {
            let response = result?;
            let bin = confidence_bin(response.confidence);
            confidence_hist[bin] += 1;
            for (i, (_, prob)) in response.slices.iter().enumerate() {
                if *prob > 0.5 {
                    slice_counts[i] += 1;
                }
            }
            for (i, name) in slice_names.iter().enumerate() {
                if record.in_slice(name) {
                    tag_counts[i] += 1;
                    slice_hists[i][bin] += 1;
                }
            }
            confidence_sum += f64::from(response.confidence);
            n += 1;
        }
        if n == 0 {
            return Err(StoreError::Validation(
                "cannot collect a traffic baseline from zero records".into(),
            ));
        }
        let share = |counts: Vec<u64>| -> Vec<(String, f64)> {
            slice_names
                .iter()
                .cloned()
                .zip(counts)
                .map(|(name, c)| (name, c as f64 / n as f64))
                .collect()
        };
        Ok(Self {
            slice_shares: share(slice_counts),
            mean_confidence: confidence_sum / n as f64,
            tag_shares: share(tag_counts.clone()),
            confidence_hist,
            slice_confidence_hists: slice_hists,
            sample_size: n,
            tag_counts,
        })
    }

    /// The tagged traffic share of a slice, if the baseline covers it.
    pub fn tag_share(&self, slice: &str) -> Option<f64> {
        self.tag_shares.iter().find(|(n, _)| n == slice).map(|(_, s)| *s)
    }

    /// The integer tagged-membership count of a slice, if the baseline
    /// recorded counts (post-sample-size baselines only).
    pub fn tag_count(&self, slice: &str) -> Option<u64> {
        let i = self.tag_shares.iter().position(|(n, _)| n == slice)?;
        self.tag_counts.get(i).copied()
    }

    /// The confidence histogram of a slice (tag-based membership), if the
    /// baseline covers it.
    pub fn slice_confidence_hist(&self, slice: &str) -> Option<&[u64]> {
        self.tag_shares
            .iter()
            .position(|(n, _)| n == slice)
            .map(|i| self.slice_confidence_hists[i].as_slice())
    }
}

/// One served request, as handed to an attached observer — everything the
/// windowed monitoring layer needs, flattened to plain integers so the
/// downstream aggregation is exactly reproducible from a replayed log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ServeSample {
    /// Whether the request was served (vs failed validation/decoding).
    pub ok: bool,
    /// Confidence bin of the response ([`CONFIDENCE_BINS`] scale); 0 for
    /// failed requests (which carry no confidence).
    pub confidence_bin: usize,
    /// Response confidence in millionths (0 for failed requests).
    pub confidence_millionths: u64,
    /// Queue + inference latency in microseconds.
    pub latency_micros: u64,
    /// Slice membership as a bitmask over the telemetry slice space
    /// (slices beyond 64 are not tracked): the record's slice *tags* when
    /// it carries any (the synthetic streams do, standing in for
    /// after-the-fact slice attribution of live traffic), the model's
    /// *predicted* membership otherwise.
    pub slice_mask: u64,
    /// Mean gold accuracy over the record's gold-labeled tasks, in
    /// millionths; `None` for unlabeled traffic.
    pub gold_accuracy_millionths: Option<u64>,
}

impl ServeSample {
    /// Builds the sample for one served request.
    pub fn collect(
        schema: &Schema,
        slice_names: &[String],
        record: &Record,
        result: &Result<ServingResponse, StoreError>,
        latency: Duration,
    ) -> Self {
        let latency_micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let Ok(response) = result else {
            return Self {
                ok: false,
                confidence_bin: 0,
                confidence_millionths: 0,
                latency_micros,
                slice_mask: 0,
                gold_accuracy_millionths: None,
            };
        };
        let tagged: Vec<bool> = slice_names.iter().map(|s| record.in_slice(s)).collect();
        let mut mask = 0u64;
        if tagged.iter().any(|&t| t) {
            for (i, &t) in tagged.iter().enumerate().take(64) {
                if t {
                    mask |= 1 << i;
                }
            }
        } else {
            for (i, (_, prob)) in response.slices.iter().enumerate().take(64) {
                if *prob > 0.5 {
                    mask |= 1 << i;
                }
            }
        }
        let confidence = response.confidence.clamp(0.0, 1.0);
        Self {
            ok: true,
            confidence_bin: confidence_bin(confidence),
            confidence_millionths: (f64::from(confidence) * 1e6) as u64,
            latency_micros,
            slice_mask: mask,
            gold_accuracy_millionths: score_response(schema, record, response)
                .map(|a| (a * 1e6).round() as u64),
        }
    }

    /// Whether the sample is in slice `i` of the telemetry slice space.
    pub fn in_slice(&self, i: usize) -> bool {
        i < 64 && self.slice_mask & (1 << i) != 0
    }
}

/// Shared, lock-free telemetry sink for the worker pool.
#[derive(Debug)]
pub struct Telemetry {
    started: Instant,
    served: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    latency: LatencyHistogram,
    slice_names: Vec<String>,
    slice_counts: Vec<AtomicU64>,
    /// Confidence histogram over served traffic ([`CONFIDENCE_BINS`]
    /// fixed-width bins) — the live counterpart of
    /// [`TrafficBaseline::confidence_hist`], exposed per scrape.
    confidence_hist: Vec<AtomicU64>,
    /// Per-slice confidence histograms (predicted membership), parallel
    /// to `slice_counts`.
    slice_confidence_hists: Vec<Vec<AtomicU64>>,
    /// Confidence accumulated in millionths, so the sum stays atomic.
    confidence_sum_millionths: AtomicU64,
    baseline: Option<TrafficBaseline>,
    /// The observability hook: set once, read with a single atomic load
    /// on the hot path. Samples go over a *bounded* channel — when the
    /// monitor falls behind, samples are dropped (and counted), never
    /// queued unboundedly and never blocking a worker.
    observer: OnceLock<SyncSender<ServeSample>>,
    observer_dropped: AtomicU64,
}

impl Telemetry {
    /// Creates a sink for a serving model with the given slice space;
    /// `baseline` enables drift reporting.
    pub fn new(slice_names: Vec<String>, baseline: Option<TrafficBaseline>) -> Self {
        let slice_counts = slice_names.iter().map(|_| AtomicU64::new(0)).collect();
        let bins = || (0..CONFIDENCE_BINS).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        let slice_confidence_hists = slice_names.iter().map(|_| bins()).collect();
        Self {
            started: Instant::now(),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            slice_names,
            slice_counts,
            confidence_hist: bins(),
            slice_confidence_hists,
            confidence_sum_millionths: AtomicU64::new(0),
            baseline,
            observer: OnceLock::new(),
            observer_dropped: AtomicU64::new(0),
        }
    }

    /// The slice space telemetry reports over (indicator order).
    pub fn slice_names(&self) -> &[String] {
        &self.slice_names
    }

    /// The training-time baseline, when drift reporting is enabled.
    pub fn baseline(&self) -> Option<&TrafficBaseline> {
        self.baseline.as_ref()
    }

    /// Attaches the observability hook: every served request is forwarded
    /// as a [`ServeSample`] over `tx`. At most one observer per sink;
    /// attaching a second is an error (the channel is an exclusive feed).
    pub fn attach_observer(&self, tx: SyncSender<ServeSample>) -> Result<(), StoreError> {
        self.observer
            .set(tx)
            .map_err(|_| StoreError::Validation("an observer is already attached".into()))
    }

    /// Whether an observer hook is attached.
    pub fn observer_attached(&self) -> bool {
        self.observer.get().is_some()
    }

    /// Samples dropped because the observer's bounded channel was full
    /// (the monitor fell behind; the serving path never waits for it).
    pub fn observer_dropped(&self) -> u64 {
        self.observer_dropped.load(Ordering::Relaxed)
    }

    /// Forwards one sample to the attached observer, if any. Never
    /// blocks: a full channel drops the sample and bumps the counter; a
    /// disconnected receiver is treated the same way.
    pub(crate) fn forward(&self, sample: ServeSample) {
        if let Some(tx) = self.observer.get() {
            if let Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) = tx.try_send(sample)
            {
                self.observer_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records one shed request — admission control turned it away
    /// (queue past its high-water mark, connection cap, or drain) before
    /// it ever reached a worker.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests shed by admission control so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Records one served request.
    pub fn observe(&self, result: &Result<ServingResponse, StoreError>, latency: Duration) {
        self.latency.record(latency);
        match result {
            Ok(response) => {
                self.served.fetch_add(1, Ordering::Relaxed);
                let confidence = response.confidence.clamp(0.0, 1.0);
                self.confidence_sum_millionths
                    .fetch_add((f64::from(confidence) * 1e6) as u64, Ordering::Relaxed);
                let bin = confidence_bin(confidence);
                self.confidence_hist[bin].fetch_add(1, Ordering::Relaxed);
                for (i, (_, prob)) in response.slices.iter().enumerate() {
                    if *prob > 0.5 {
                        if let Some(c) = self.slice_counts.get(i) {
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                        if let Some(h) = self.slice_confidence_hists.get(i) {
                            h[bin].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The underlying latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// A point-in-time copy of the confidence histogram over served
    /// traffic ([`CONFIDENCE_BINS`] fixed-width bins on `[0, 1]`).
    pub fn confidence_counts(&self) -> Vec<u64> {
        self.confidence_hist.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// A point-in-time copy of slice `i`'s confidence histogram
    /// (predicted membership), when the slice exists.
    pub fn slice_confidence_counts(&self, i: usize) -> Option<Vec<u64>> {
        self.slice_confidence_hists
            .get(i)
            .map(|h| h.iter().map(|c| c.load(Ordering::Relaxed)).collect())
    }

    /// Per-slice served-request counts, parallel to
    /// [`slice_names`](Self::slice_names).
    pub fn slice_counts(&self) -> Vec<u64> {
        self.slice_counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// A consistent-enough point-in-time view for dashboards and gates.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let served = self.served.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let mean_confidence = if served == 0 {
            0.0
        } else {
            self.confidence_sum_millionths.load(Ordering::Relaxed) as f64 / 1e6 / served as f64
        };
        let slice_shares: Vec<(String, f64)> = self
            .slice_names
            .iter()
            .zip(&self.slice_counts)
            .map(|(name, c)| {
                let share = if served == 0 {
                    0.0
                } else {
                    c.load(Ordering::Relaxed) as f64 / served as f64
                };
                (name.clone(), share)
            })
            .collect();
        let slice_drift = self.baseline.as_ref().map(|b| {
            slice_shares
                .iter()
                .map(|(name, share)| {
                    let base =
                        b.slice_shares.iter().find(|(n, _)| n == name).map_or(0.0, |(_, s)| *s);
                    (name.clone(), share - base)
                })
                .collect()
        });
        TelemetrySnapshot {
            served,
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            observer_dropped: self.observer_dropped.load(Ordering::Relaxed),
            qps: served as f64 / elapsed,
            mean_latency: self.latency.mean(),
            p50: self.latency.quantile(0.50),
            p95: self.latency.quantile(0.95),
            p99: self.latency.quantile(0.99),
            mean_confidence,
            confidence_drift: self.baseline.as_ref().map(|b| mean_confidence - b.mean_confidence),
            slice_shares,
            slice_drift,
        }
    }
}

/// A point-in-time telemetry view. Serializable (dashboards, the CLI and
/// the obslog share one serialization path rather than ad-hoc
/// formatting); durations roundtrip exactly as `{secs, nanos}`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TelemetrySnapshot {
    /// Successfully served requests.
    pub served: u64,
    /// Requests that failed validation or decoding.
    pub errors: u64,
    /// Requests shed by admission control (503 before reaching a worker).
    /// Defaults to zero when absent, so snapshots serialized before the
    /// socket tier existed still deserialize.
    #[serde(default)]
    pub shed: u64,
    /// Observer samples dropped because the bounded channel was full (the
    /// monitor fell behind; the serving path never waits). Defaults to
    /// zero for snapshots serialized before the counter existed.
    #[serde(default)]
    pub observer_dropped: u64,
    /// Served requests per wall-clock second since the sink started.
    pub qps: f64,
    /// Mean request latency.
    pub mean_latency: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Mean response confidence over served traffic.
    pub mean_confidence: f64,
    /// `mean_confidence - baseline.mean_confidence` (with a baseline).
    pub confidence_drift: Option<f64>,
    /// Per-slice share of served traffic (predicted membership).
    pub slice_shares: Vec<(String, f64)>,
    /// Per-slice `live share - baseline share` (with a baseline).
    pub slice_drift: Option<Vec<(String, f64)>>,
}

impl TelemetrySnapshot {
    /// Writes the snapshot as CSV: a `metric,value` counter section
    /// (served/errors/shed/observer-dropped), a blank line, then the
    /// per-slice table (`slice,share,drift`), using the workspace's one
    /// CSV-escaping helper ([`overton_monitor::csv_escape`]) — slice
    /// names are free-form and can contain commas or quotes.
    pub fn write_csv(&self, mut w: impl std::io::Write) -> std::io::Result<()> {
        writeln!(w, "metric,value")?;
        writeln!(w, "served,{}", self.served)?;
        writeln!(w, "errors,{}", self.errors)?;
        writeln!(w, "shed,{}", self.shed)?;
        writeln!(w, "observer_dropped,{}", self.observer_dropped)?;
        writeln!(w)?;
        writeln!(w, "slice,share,drift")?;
        for (i, (name, share)) in self.slice_shares.iter().enumerate() {
            let drift =
                self.slice_drift.as_ref().map_or_else(String::new, |d| format!("{:.6}", d[i].1));
            writeln!(w, "{},{share:.6},{drift}", overton_monitor::csv_escape(name))?;
        }
        Ok(())
    }
}

impl fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} ({} errors, {} shed)  qps {:.1}  latency p50 {:?} p95 {:?} p99 {:?}",
            self.served, self.errors, self.shed, self.qps, self.p50, self.p95, self.p99
        )?;
        write!(f, "confidence {:.3}", self.mean_confidence)?;
        if let Some(drift) = self.confidence_drift {
            write!(f, " (drift {drift:+.3})")?;
        }
        writeln!(f)?;
        for (i, (name, share)) in self.slice_shares.iter().enumerate() {
            write!(f, "  slice {name}: {:.1}% of traffic", share * 100.0)?;
            if let Some(drifts) = &self.slice_drift {
                write!(f, " (drift {:+.1}pp)", drifts[i].1 * 100.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_monotone_and_bracket_the_data() {
        let h = LatencyHistogram::default();
        for micros in [3u64, 5, 9, 40, 100, 900, 5_000, 20_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 8);
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 >= Duration::from_micros(9), "p50 {p50:?}");
        assert!(p99 >= Duration::from_micros(20_000), "p99 {p99:?}");
        assert!(h.mean() >= Duration::from_micros(1_000));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::default();
        // Every q — in range, at the bounds, out of range — is defined on
        // the empty histogram.
        for q in [-1.0, 0.0, 0.5, 0.99, 1.0, 2.0] {
            assert_eq!(h.quantile(q), Duration::ZERO);
        }
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn quantile_bounds_are_defined_and_clamped() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(20_000));
        // q = 0 resolves to the smallest observed bucket's bound...
        let lo = h.quantile(0.0);
        assert_eq!(lo, latency_bucket_upper(latency_bucket(3)));
        // ...q = 1 to the largest...
        let hi = h.quantile(1.0);
        assert_eq!(hi, latency_bucket_upper(latency_bucket(20_000)));
        assert!(lo <= hi);
        // ...and out-of-range q clamps to those same bounds instead of
        // panicking or indexing out of the histogram.
        assert_eq!(h.quantile(-3.5), lo);
        assert_eq!(h.quantile(42.0), hi);
    }

    fn response(confidence: f32, slice_prob: f32) -> ServingResponse {
        ServingResponse {
            tasks: Default::default(),
            slices: vec![("hard".into(), slice_prob)],
            confidence,
        }
    }

    fn baseline() -> TrafficBaseline {
        TrafficBaseline {
            slice_shares: vec![("hard".into(), 0.25)],
            mean_confidence: 0.9,
            tag_shares: vec![("hard".into(), 0.25)],
            confidence_hist: vec![0; CONFIDENCE_BINS],
            slice_confidence_hists: vec![vec![0; CONFIDENCE_BINS]],
            sample_size: 100,
            tag_counts: vec![25],
        }
    }

    #[test]
    fn snapshot_aggregates_confidence_slices_and_errors() {
        let t = Telemetry::new(vec!["hard".into()], Some(baseline()));
        t.observe(&Ok(response(0.8, 0.9)), Duration::from_micros(100));
        t.observe(&Ok(response(0.6, 0.1)), Duration::from_micros(200));
        t.observe(&Err(StoreError::Validation("bad".into())), Duration::from_micros(50));
        let snap = t.snapshot();
        assert_eq!(snap.served, 2);
        assert_eq!(snap.errors, 1);
        assert!((snap.mean_confidence - 0.7).abs() < 1e-3);
        assert!((snap.confidence_drift.unwrap() - (0.7 - 0.9)).abs() < 1e-3);
        assert_eq!(snap.slice_shares, vec![("hard".into(), 0.5)]);
        let drift = snap.slice_drift.as_ref().unwrap();
        assert!((drift[0].1 - 0.25).abs() < 1e-9);
        assert!(snap.qps > 0.0);
        // The report renders.
        assert!(snap.to_string().contains("slice hard"));
    }

    #[test]
    fn snapshot_serializes_and_roundtrips() {
        let t = Telemetry::new(vec!["hard, tricky".into()], None);
        t.observe(&Ok(response(0.8, 0.9)), Duration::from_micros(1500));
        let snap = t.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        // CSV goes through the shared escaping helper: the comma-bearing
        // slice name is quoted.
        let mut csv = Vec::new();
        snap.write_csv(&mut csv).unwrap();
        let text = String::from_utf8(csv).unwrap();
        assert!(text.contains("\"hard, tricky\""), "{text}");
        // The counter section leads with the shed and observer-dropped
        // counts the JSON snapshot carries.
        assert!(text.starts_with("metric,value\nserved,1\n"), "{text}");
        assert!(text.contains("shed,0\n"), "{text}");
        assert!(text.contains("observer_dropped,0\n"), "{text}");
    }

    #[test]
    fn shed_counts_surface_in_snapshot_and_old_snapshots_still_parse() {
        let t = Telemetry::new(vec![], None);
        t.record_shed();
        t.record_shed();
        assert_eq!(t.shed(), 2);
        let snap = t.snapshot();
        assert_eq!(snap.shed, 2);
        assert!(snap.to_string().contains("2 shed"));
        // A snapshot serialized before the socket tier existed carries no
        // `shed` field; it deserializes to zero rather than failing.
        let json = serde_json::to_string(&snap).unwrap();
        let legacy = json.replace("\"shed\":2,", "");
        assert_ne!(legacy, json, "test must actually strip the field");
        let back: TelemetrySnapshot = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.shed, 0);
    }

    #[test]
    fn baseline_serializes_and_roundtrips() {
        let b = baseline();
        let json = serde_json::to_string(&b).unwrap();
        let back: TrafficBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
        assert_eq!(b.tag_share("hard"), Some(0.25));
        assert_eq!(b.tag_share("nope"), None);
        assert_eq!(b.slice_confidence_hist("hard"), Some(&[0u64; CONFIDENCE_BINS][..]));
        assert_eq!(b.tag_count("hard"), Some(25));
        assert_eq!(b.tag_count("nope"), None);
    }

    #[test]
    fn pre_sample_size_baselines_still_parse() {
        // A baseline persisted before integer counts existed carries
        // neither `sample_size` nor `tag_counts`; it must deserialize
        // with both defaulted (disabling significance rules) rather than
        // failing the deployment load.
        let json = serde_json::to_string(&baseline()).unwrap();
        let legacy = json.replace(",\"sample_size\":100", "").replace(",\"tag_counts\":[25]", "");
        assert_ne!(legacy, json, "test must actually strip the fields");
        let back: TrafficBaseline = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.sample_size, 0);
        assert!(back.tag_counts.is_empty());
        assert_eq!(back.tag_count("hard"), None);
        assert_eq!(back.tag_share("hard"), Some(0.25));
    }

    #[test]
    fn observer_receives_samples_and_never_blocks() {
        let t = Telemetry::new(vec!["hard".into()], None);
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        t.attach_observer(tx).unwrap();
        assert!(t.observer_attached());
        // A second observer is rejected.
        let (tx2, _rx2) = std::sync::mpsc::sync_channel(1);
        assert!(t.attach_observer(tx2).is_err());
        let sample = ServeSample {
            ok: true,
            confidence_bin: confidence_bin(0.8),
            confidence_millionths: 800_000,
            latency_micros: 100,
            slice_mask: 1,
            gold_accuracy_millionths: Some(1_000_000),
        };
        t.forward(sample);
        // Channel is full now: the next forward drops instead of blocking.
        t.forward(sample);
        assert_eq!(t.observer_dropped(), 1);
        assert_eq!(rx.try_recv().unwrap(), sample);
        assert!(sample.in_slice(0));
        assert!(!sample.in_slice(1));
    }

    #[test]
    fn sample_collection_prefers_tags_and_scores_gold() {
        let schema = overton_nlp::workload_schema();
        let slice_names = vec!["hard".to_string(), "easy".to_string()];
        let record = Record::new().with_slice("easy").with_label(
            "Intent",
            overton_store::GOLD_SOURCE,
            overton_store::TaskLabel::MulticlassOne("Age".into()),
        );
        let resp = ServingResponse {
            tasks: std::collections::BTreeMap::from([(
                "Intent".to_string(),
                overton_model::ServedOutput::Multiclass { class: "Age".into(), dist: vec![] },
            )]),
            // The model predicts "hard", but the record's tag says "easy":
            // tags win when present.
            slices: vec![("hard".into(), 0.9), ("easy".into(), 0.1)],
            confidence: 0.73,
        };
        let sample = ServeSample::collect(
            &schema,
            &slice_names,
            &record,
            &Ok(resp.clone()),
            Duration::from_micros(42),
        );
        assert!(sample.ok);
        assert!(!sample.in_slice(0));
        assert!(sample.in_slice(1));
        assert_eq!(sample.gold_accuracy_millionths, Some(1_000_000));
        assert_eq!(sample.confidence_bin, confidence_bin(0.73));
        // An untagged record falls back to predicted membership.
        let untagged = Record::new();
        let sample = ServeSample::collect(
            &schema,
            &slice_names,
            &untagged,
            &Ok(resp),
            Duration::from_micros(42),
        );
        assert!(sample.in_slice(0));
        assert!(!sample.in_slice(1));
        assert_eq!(sample.gold_accuracy_millionths, None);
        // Errors carry latency but nothing else.
        let sample = ServeSample::collect(
            &schema,
            &slice_names,
            &untagged,
            &Err(StoreError::Validation("bad".into())),
            Duration::from_micros(7),
        );
        assert!(!sample.ok);
        assert_eq!(sample.slice_mask, 0);
    }
}

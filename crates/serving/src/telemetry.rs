//! Live serving telemetry: QPS, latency quantiles, per-slice traffic
//! shares and confidence drift against a training-time baseline.
//!
//! The paper's monitoring story (§1, §2.2) is about *fine-grained* product
//! quality; post-deployment, the first signals arrive before any gold
//! label does — traffic mix shifting toward a hard slice, the serving
//! model's confidence sagging, tail latencies growing. This module
//! aggregates those from the worker pool with lock-free counters so the
//! hot path never blocks on monitoring.

use overton_model::{Server, ServingResponse};
use overton_store::{Record, StoreError};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Power-of-two latency buckets from 1µs up: bucket `i` counts latencies
/// in `[2^(i-1), 2^i)` µs, with the final bucket absorbing everything
/// slower (~9 minutes and up).
const LATENCY_BUCKETS: usize = 30;

/// A lock-free fixed-bucket latency histogram (log2 µs scale).
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; LATENCY_BUCKETS],
    sum_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: [const { AtomicU64::new(0) }; LATENCY_BUCKETS],
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_micros.load(Ordering::Relaxed) / n)
    }

    /// The `q`-quantile (`0 < q <= 1`), resolved to the upper bound of the
    /// bucket containing it — a conservative estimate with at most 2x
    /// resolution error, which is what an SLA dashboard needs.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_micros(1u64 << i);
            }
        }
        Duration::from_micros(1u64 << (LATENCY_BUCKETS - 1))
    }
}

/// Training-time reference distribution for drift detection: what slice
/// shares and confidence looked like on curated data when the artifact
/// shipped.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficBaseline {
    /// `(slice name, share of records predicted in the slice)`.
    pub slice_shares: Vec<(String, f64)>,
    /// Mean response confidence.
    pub mean_confidence: f64,
}

impl TrafficBaseline {
    /// Measures the baseline by running `server` over a reference set
    /// (typically the dev or test split the artifact was accepted on).
    pub fn collect(server: &Server, records: &[Record]) -> Result<Self, StoreError> {
        let slice_names = server.feature_space().slice_names.clone();
        let mut slice_counts = vec![0u64; slice_names.len()];
        let mut confidence_sum = 0.0f64;
        let mut n = 0u64;
        for result in server.predict_batch(records) {
            let response = result?;
            for (i, (_, prob)) in response.slices.iter().enumerate() {
                if *prob > 0.5 {
                    slice_counts[i] += 1;
                }
            }
            confidence_sum += f64::from(response.confidence);
            n += 1;
        }
        if n == 0 {
            return Err(StoreError::Validation(
                "cannot collect a traffic baseline from zero records".into(),
            ));
        }
        Ok(Self {
            slice_shares: slice_names
                .into_iter()
                .zip(slice_counts)
                .map(|(name, c)| (name, c as f64 / n as f64))
                .collect(),
            mean_confidence: confidence_sum / n as f64,
        })
    }
}

/// Shared, lock-free telemetry sink for the worker pool.
#[derive(Debug)]
pub struct Telemetry {
    started: Instant,
    served: AtomicU64,
    errors: AtomicU64,
    latency: LatencyHistogram,
    slice_names: Vec<String>,
    slice_counts: Vec<AtomicU64>,
    /// Confidence accumulated in millionths, so the sum stays atomic.
    confidence_sum_millionths: AtomicU64,
    baseline: Option<TrafficBaseline>,
}

impl Telemetry {
    /// Creates a sink for a serving model with the given slice space;
    /// `baseline` enables drift reporting.
    pub fn new(slice_names: Vec<String>, baseline: Option<TrafficBaseline>) -> Self {
        let slice_counts = slice_names.iter().map(|_| AtomicU64::new(0)).collect();
        Self {
            started: Instant::now(),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            slice_names,
            slice_counts,
            confidence_sum_millionths: AtomicU64::new(0),
            baseline,
        }
    }

    /// Records one served request.
    pub fn observe(&self, result: &Result<ServingResponse, StoreError>, latency: Duration) {
        self.latency.record(latency);
        match result {
            Ok(response) => {
                self.served.fetch_add(1, Ordering::Relaxed);
                self.confidence_sum_millionths.fetch_add(
                    (f64::from(response.confidence.clamp(0.0, 1.0)) * 1e6) as u64,
                    Ordering::Relaxed,
                );
                for (i, (_, prob)) in response.slices.iter().enumerate() {
                    if *prob > 0.5 {
                        if let Some(c) = self.slice_counts.get(i) {
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The underlying latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// A consistent-enough point-in-time view for dashboards and gates.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let served = self.served.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let mean_confidence = if served == 0 {
            0.0
        } else {
            self.confidence_sum_millionths.load(Ordering::Relaxed) as f64 / 1e6 / served as f64
        };
        let slice_shares: Vec<(String, f64)> = self
            .slice_names
            .iter()
            .zip(&self.slice_counts)
            .map(|(name, c)| {
                let share = if served == 0 {
                    0.0
                } else {
                    c.load(Ordering::Relaxed) as f64 / served as f64
                };
                (name.clone(), share)
            })
            .collect();
        let slice_drift = self.baseline.as_ref().map(|b| {
            slice_shares
                .iter()
                .map(|(name, share)| {
                    let base =
                        b.slice_shares.iter().find(|(n, _)| n == name).map_or(0.0, |(_, s)| *s);
                    (name.clone(), share - base)
                })
                .collect()
        });
        TelemetrySnapshot {
            served,
            errors: self.errors.load(Ordering::Relaxed),
            qps: served as f64 / elapsed,
            mean_latency: self.latency.mean(),
            p50: self.latency.quantile(0.50),
            p95: self.latency.quantile(0.95),
            p99: self.latency.quantile(0.99),
            mean_confidence,
            confidence_drift: self.baseline.as_ref().map(|b| mean_confidence - b.mean_confidence),
            slice_shares,
            slice_drift,
        }
    }
}

/// A point-in-time telemetry view.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Successfully served requests.
    pub served: u64,
    /// Requests that failed validation or decoding.
    pub errors: u64,
    /// Served requests per wall-clock second since the sink started.
    pub qps: f64,
    /// Mean request latency.
    pub mean_latency: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Mean response confidence over served traffic.
    pub mean_confidence: f64,
    /// `mean_confidence - baseline.mean_confidence` (with a baseline).
    pub confidence_drift: Option<f64>,
    /// Per-slice share of served traffic (predicted membership).
    pub slice_shares: Vec<(String, f64)>,
    /// Per-slice `live share - baseline share` (with a baseline).
    pub slice_drift: Option<Vec<(String, f64)>>,
}

impl fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} ({} errors)  qps {:.1}  latency p50 {:?} p95 {:?} p99 {:?}",
            self.served, self.errors, self.qps, self.p50, self.p95, self.p99
        )?;
        write!(f, "confidence {:.3}", self.mean_confidence)?;
        if let Some(drift) = self.confidence_drift {
            write!(f, " (drift {drift:+.3})")?;
        }
        writeln!(f)?;
        for (i, (name, share)) in self.slice_shares.iter().enumerate() {
            write!(f, "  slice {name}: {:.1}% of traffic", share * 100.0)?;
            if let Some(drifts) = &self.slice_drift {
                write!(f, " (drift {:+.1}pp)", drifts[i].1 * 100.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_monotone_and_bracket_the_data() {
        let h = LatencyHistogram::default();
        for micros in [3u64, 5, 9, 40, 100, 900, 5_000, 20_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 8);
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 >= Duration::from_micros(9), "p50 {p50:?}");
        assert!(p99 >= Duration::from_micros(20_000), "p99 {p99:?}");
        assert!(h.mean() >= Duration::from_micros(1_000));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    fn response(confidence: f32, slice_prob: f32) -> ServingResponse {
        ServingResponse {
            tasks: Default::default(),
            slices: vec![("hard".into(), slice_prob)],
            confidence,
        }
    }

    #[test]
    fn snapshot_aggregates_confidence_slices_and_errors() {
        let baseline =
            TrafficBaseline { slice_shares: vec![("hard".into(), 0.25)], mean_confidence: 0.9 };
        let t = Telemetry::new(vec!["hard".into()], Some(baseline));
        t.observe(&Ok(response(0.8, 0.9)), Duration::from_micros(100));
        t.observe(&Ok(response(0.6, 0.1)), Duration::from_micros(200));
        t.observe(&Err(StoreError::Validation("bad".into())), Duration::from_micros(50));
        let snap = t.snapshot();
        assert_eq!(snap.served, 2);
        assert_eq!(snap.errors, 1);
        assert!((snap.mean_confidence - 0.7).abs() < 1e-3);
        assert!((snap.confidence_drift.unwrap() - (0.7 - 0.9)).abs() < 1e-3);
        assert_eq!(snap.slice_shares, vec![("hard".into(), 0.5)]);
        let drift = snap.slice_drift.as_ref().unwrap();
        assert!((drift[0].1 - 0.25).abs() < 1e-9);
        assert!(snap.qps > 0.0);
        // The report renders.
        assert!(snap.to_string().contains("slice hard"));
    }
}

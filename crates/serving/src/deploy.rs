//! Canary deployment on top of the model registry.
//!
//! The paper's deployment loop (§2.4) retrains continuously and ships
//! "nearly automatically" — which is only safe because monitoring gates
//! the swap. [`DeploymentManager`] implements that gate: a candidate
//! artifact is fetched from the [`ModelRegistry`], run in *shadow mode*
//! against live traffic (the incumbent keeps answering), scored per
//! tag/slice with [`QualityReport`]s on the after-the-fact-labeled sample,
//! and compared with [`regressions`]. A clean canary is promoted (the
//! worker pool hot-swaps engines behind the stable serving signature); any
//! per-group regression — including a vanished slice — rolls it back
//! automatically.

use crate::cascade::CascadeEngine;
use crate::pool::WorkerPool;
use crate::score::score_output;
use overton_model::{
    ArtifactId, DeployableModel, ModelPair, ModelRegistry, Server, ServingResponse,
};
use overton_monitor::{regressions, Metrics, QualityReport, Regression};
use overton_store::{Record, Schema, StoreError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Accumulates per-task, per-group accuracy over gold-labeled traffic.
#[derive(Debug, Default, Clone)]
struct ScoreBook {
    /// task -> group -> (score sum, count).
    tasks: BTreeMap<String, BTreeMap<String, (f64, usize)>>,
}

impl ScoreBook {
    /// Scores one response against a record's gold labels; returns how many
    /// tasks were scored.
    fn observe(&mut self, schema: &Schema, record: &Record, response: &ServingResponse) -> usize {
        let mut scored = 0;
        for task in schema.tasks.keys() {
            let Some(gold) = record.gold(task) else { continue };
            let Some(served) = response.tasks.get(task) else { continue };
            let Some(score) = score_output(served, gold) else { continue };
            scored += 1;
            let per_task = self.tasks.entry(task.clone()).or_default();
            for group in record.tags.iter().cloned().chain(std::iter::once("overall".into())) {
                let slot = per_task.entry(group).or_insert((0.0, 0));
                slot.0 += score;
                slot.1 += 1;
            }
        }
        scored
    }

    /// Renders one [`QualityReport`] per task (`overall` row first).
    fn reports(&self) -> BTreeMap<String, QualityReport> {
        self.tasks
            .iter()
            .map(|(task, groups)| {
                let mut report = QualityReport::new(task);
                let mut push = |name: &str, (sum, n): (f64, usize)| {
                    let accuracy = if n == 0 { 0.0 } else { sum / n as f64 };
                    report.push(
                        name,
                        Metrics { count: n, accuracy, macro_f1: accuracy, micro_f1: accuracy },
                    );
                };
                if let Some(&overall) = groups.get("overall") {
                    push("overall", overall);
                }
                for (group, &acc) in groups {
                    if group != "overall" {
                        push(group, acc);
                    }
                }
                (task.clone(), report)
            })
            .collect()
    }
}

/// Canary acceptance gate.
#[derive(Debug, Clone)]
pub struct CanaryConfig {
    /// Per-group accuracy drop beyond which the canary is rolled back.
    pub regression_threshold: f64,
    /// Minimum gold-scored records before the canary may resolve.
    pub min_scored: usize,
}

impl Default for CanaryConfig {
    fn default() -> Self {
        Self { regression_threshold: 0.05, min_scored: 50 }
    }
}

/// How a canary resolved.
#[derive(Debug)]
pub enum CanaryOutcome {
    /// No regression: the candidate is the new incumbent.
    Promoted {
        /// The promoted artifact.
        id: ArtifactId,
    },
    /// Regressions detected: the incumbent stays, the candidate is dropped.
    RolledBack {
        /// The rejected artifact.
        id: ArtifactId,
        /// Per-task regressions that triggered the rollback.
        regressions: BTreeMap<String, Vec<Regression>>,
    },
}

/// A deployment-log entry.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployEvent {
    /// A canary started shadowing live traffic.
    CanaryStarted(ArtifactId),
    /// A canary was promoted to incumbent.
    Promoted(ArtifactId),
    /// A canary was rolled back; the payload is the number of regressed
    /// `(task, group)` pairs.
    RolledBack(ArtifactId, usize),
}

struct CanaryState {
    id: ArtifactId,
    artifact: DeployableModel,
    server: Server,
    incumbent_scores: ScoreBook,
    candidate_scores: ScoreBook,
    scored: usize,
}

/// Manages which artifact serves a named model, with shadow/canary
/// evaluation against live traffic and automatic rollback.
pub struct DeploymentManager {
    registry: ModelRegistry,
    name: String,
    threshold: f32,
    incumbent_id: ArtifactId,
    incumbent_artifact: DeployableModel,
    incumbent_server: Server,
    large: Option<DeployableModel>,
    quantize_small: bool,
    pool: Option<Arc<WorkerPool>>,
    canary: Option<CanaryState>,
    events: Vec<DeployEvent>,
}

impl DeploymentManager {
    /// Opens the deployment for `name`: the latest registry version becomes
    /// the incumbent. `threshold` is the cascade escalation threshold used
    /// when building engines.
    pub fn open(registry: ModelRegistry, name: &str, threshold: f32) -> Result<Self, StoreError> {
        let incumbent_id = registry.latest(name)?.ok_or_else(|| {
            StoreError::Validation(format!("no artifact published under '{name}'"))
        })?;
        let incumbent_artifact = registry.fetch(&incumbent_id)?;
        let incumbent_server = Server::load(&incumbent_artifact);
        Ok(Self {
            registry,
            name: name.to_string(),
            threshold,
            incumbent_id,
            incumbent_artifact,
            incumbent_server,
            large: None,
            quantize_small: false,
            pool: None,
            canary: None,
            events: Vec::new(),
        })
    }

    /// Opts engines built by this deployment into the i8 quantized serving
    /// path for the small (incumbent) model. Off by default — quantization
    /// trades a bounded accuracy loss for latency, which is a deployment
    /// decision, not a registry property. Applies to [`Self::build_engine`]
    /// and to engines hot-swapped on canary promotion.
    #[must_use]
    pub fn with_quantized_small(mut self) -> Self {
        self.quantize_small = true;
        self
    }

    /// Attaches the large half of the model pair, enabling the cascade in
    /// engines built by [`DeploymentManager::build_engine`].
    pub fn with_large(mut self, large: DeployableModel) -> Result<Self, StoreError> {
        if large.signature != self.incumbent_artifact.signature {
            return Err(StoreError::Validation(
                "large model's serving signature differs from the incumbent's".into(),
            ));
        }
        self.large = Some(large);
        Ok(self)
    }

    /// Attaches a worker pool; promotions hot-swap its engine.
    pub fn attach_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// Builds a serving engine for the current incumbent (a cascade when a
    /// large model is attached).
    pub fn build_engine(&self) -> Result<Arc<CascadeEngine>, StoreError> {
        let mut engine = match &self.large {
            Some(large) => CascadeEngine::from_pair(
                &ModelPair { large: large.clone(), small: self.incumbent_artifact.clone() },
                self.threshold,
            )?,
            None => CascadeEngine::single(Server::load(&self.incumbent_artifact)),
        };
        if self.quantize_small {
            engine = engine.with_quantized_small();
        }
        Ok(Arc::new(engine))
    }

    /// The registry backing this deployment.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The artifact currently serving.
    pub fn incumbent_id(&self) -> &ArtifactId {
        &self.incumbent_id
    }

    /// Whether a canary is currently shadowing traffic.
    pub fn canary_active(&self) -> bool {
        self.canary.is_some()
    }

    /// The deployment log.
    pub fn events(&self) -> &[DeployEvent] {
        &self.events
    }

    /// Publishes a candidate artifact under this deployment's name.
    pub fn publish(&self, artifact: &DeployableModel) -> Result<ArtifactId, StoreError> {
        self.registry.publish(artifact, &self.name)
    }

    /// Starts shadowing `id` against live traffic. Fails if a canary is
    /// already active, the artifact is missing/corrupt, or its serving
    /// signature differs from the incumbent's (schema evolution needs a
    /// new deployment, not a hot-swap).
    pub fn start_canary(&mut self, id: &ArtifactId) -> Result<(), StoreError> {
        if self.canary.is_some() {
            return Err(StoreError::Validation("a canary is already active".into()));
        }
        let artifact = self.registry.fetch(id)?;
        if artifact.signature != self.incumbent_artifact.signature {
            return Err(StoreError::Validation(
                "canary's serving signature differs from the incumbent's".into(),
            ));
        }
        // The slice space must match too: telemetry and the cascade index
        // slice probabilities positionally, and the signature (payloads +
        // task outputs only) does not cover it.
        if artifact.space.slice_names != self.incumbent_artifact.space.slice_names {
            return Err(StoreError::Validation(
                "canary's slice space differs from the incumbent's".into(),
            ));
        }
        let server = Server::load(&artifact);
        self.canary = Some(CanaryState {
            id: id.clone(),
            artifact,
            server,
            incumbent_scores: ScoreBook::default(),
            candidate_scores: ScoreBook::default(),
            scored: 0,
        });
        self.events.push(DeployEvent::CanaryStarted(id.clone()));
        Ok(())
    }

    /// Serves a burst of live traffic. The incumbent answers (through the
    /// attached pool when present, so real routing/telemetry applies);
    /// an active canary shadow-predicts the same records, and every
    /// gold-labeled record scores both sides. Returns the *live* responses
    /// in input order.
    pub fn observe(&mut self, records: &[Record]) -> Vec<Result<ServingResponse, StoreError>> {
        let live: Vec<Result<ServingResponse, StoreError>> = match &self.pool {
            Some(pool) => {
                pool.process(records.to_vec()).into_iter().map(|reply| reply.result).collect()
            }
            None => self.incumbent_server.predict_batch(records),
        };
        if let Some(canary) = &mut self.canary {
            let shadow = canary.server.predict_batch(records);
            let schema = self.incumbent_server.schema();
            for ((record, live_result), shadow_result) in records.iter().zip(&live).zip(&shadow) {
                if let (Ok(live_response), Ok(shadow_response)) = (live_result, shadow_result) {
                    let n = canary.incumbent_scores.observe(schema, record, live_response);
                    canary.candidate_scores.observe(schema, record, shadow_response);
                    if n > 0 {
                        canary.scored += 1;
                    }
                }
            }
        }
        live
    }

    /// Quality reports over the canary window so far:
    /// `(incumbent, candidate)` per task.
    pub fn canary_reports(
        &self,
    ) -> Option<(BTreeMap<String, QualityReport>, BTreeMap<String, QualityReport>)> {
        let canary = self.canary.as_ref()?;
        Some((canary.incumbent_scores.reports(), canary.candidate_scores.reports()))
    }

    /// Resolves the active canary: promote when no per-group regression
    /// exceeds the gate (vanished groups always fail it), roll back
    /// otherwise. Promotion republishes the artifact under the deployment
    /// name (so `latest` tracks it) and hot-swaps the attached pool's
    /// engine.
    pub fn resolve_canary(&mut self, config: &CanaryConfig) -> Result<CanaryOutcome, StoreError> {
        let canary = self
            .canary
            .as_ref()
            .ok_or_else(|| StoreError::Validation("no canary is active".into()))?;
        if canary.scored < config.min_scored {
            return Err(StoreError::Validation(format!(
                "canary has scored {} records, needs {}",
                canary.scored, config.min_scored
            )));
        }
        let before = canary.incumbent_scores.reports();
        let after = canary.candidate_scores.reports();
        let mut found: BTreeMap<String, Vec<Regression>> = BTreeMap::new();
        for (task, before_report) in &before {
            let empty = QualityReport::new(task);
            let after_report = after.get(task).unwrap_or(&empty);
            let regs = regressions(before_report, after_report, config.regression_threshold);
            if !regs.is_empty() {
                found.insert(task.clone(), regs);
            }
        }
        if found.is_empty() {
            // Run every fallible step *before* touching incumbent state, so
            // a failed publish or engine swap leaves the deployment exactly
            // as it was (canary still active, incumbent still serving).
            // Track the promotion in the registry so `latest` follows.
            self.registry.publish(&canary.artifact, &self.name)?;
            if let Some(pool) = &self.pool {
                let mut engine = match &self.large {
                    Some(large) => CascadeEngine::from_pair(
                        &ModelPair { large: large.clone(), small: canary.artifact.clone() },
                        self.threshold,
                    )?,
                    None => CascadeEngine::single(Server::load(&canary.artifact)),
                };
                if self.quantize_small {
                    engine = engine.with_quantized_small();
                }
                pool.swap_engine(Arc::new(engine))?;
            }
            let canary = self.canary.take().expect("checked above");
            self.incumbent_id = canary.id.clone();
            self.incumbent_artifact = canary.artifact;
            self.incumbent_server = canary.server;
            self.events.push(DeployEvent::Promoted(canary.id.clone()));
            Ok(CanaryOutcome::Promoted { id: canary.id })
        } else {
            let canary = self.canary.take().expect("checked above");
            let count = found.values().map(Vec::len).sum();
            self.events.push(DeployEvent::RolledBack(canary.id.clone(), count));
            Ok(CanaryOutcome::RolledBack { id: canary.id, regressions: found })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_model::ServedOutput;
    use overton_store::TaskLabel;

    #[test]
    fn scorebook_groups_by_tag_with_overall_first() {
        let schema = overton_nlp::workload_schema();
        let record = Record::new().with_tag("live").with_slice("hard").with_label(
            "Intent",
            overton_store::GOLD_SOURCE,
            TaskLabel::MulticlassOne("Age".into()),
        );
        let response = ServingResponse {
            tasks: BTreeMap::from([(
                "Intent".to_string(),
                ServedOutput::Multiclass { class: "Age".into(), dist: vec![] },
            )]),
            slices: vec![],
            confidence: 1.0,
        };
        let mut book = ScoreBook::default();
        assert_eq!(book.observe(&schema, &record, &response), 1);
        let reports = book.reports();
        let report = &reports["Intent"];
        assert_eq!(report.rows[0].group, "overall");
        assert_eq!(report.overall().unwrap().accuracy, 1.0);
        assert!(report.group("slice:hard").is_some());
        assert!(report.group("live").is_some());
    }
}

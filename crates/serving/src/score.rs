//! Scoring served responses against gold labels.
//!
//! Shared by the canary gate (`deploy.rs` scores incumbent and candidate
//! over the gold-labeled traffic sample) and the observability hook
//! (`telemetry.rs` attaches a per-request gold accuracy to each
//! [`ServeSample`](crate::ServeSample) so windowed monitoring can track
//! quality without waiting for a batch evaluation).

use overton_model::{ServedOutput, ServingResponse};
use overton_store::{Record, Schema, TaskLabel};

/// Accuracy of one served output against gold, in `[0, 1]` (sequence tasks
/// score the fraction of correct elements). `None` when the shapes do not
/// line up.
pub(crate) fn score_output(served: &ServedOutput, gold: &TaskLabel) -> Option<f64> {
    let fraction = |hits: usize, total: usize| {
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    };
    match (served, gold) {
        (ServedOutput::Multiclass { class, .. }, TaskLabel::MulticlassOne(g)) => {
            Some(f64::from(class == g))
        }
        (ServedOutput::MulticlassSeq { classes }, TaskLabel::MulticlassSeq(golds))
            if classes.len() == golds.len() =>
        {
            fraction(classes.iter().zip(golds).filter(|(p, g)| p == g).count(), golds.len())
        }
        (ServedOutput::Bits { set }, TaskLabel::BitvectorOne(gold_set)) => {
            let mut a = set.clone();
            let mut b = gold_set.clone();
            a.sort();
            b.sort();
            Some(f64::from(a == b))
        }
        (ServedOutput::BitsSeq { rows }, TaskLabel::BitvectorSeq(gold_rows))
            if rows.len() == gold_rows.len() =>
        {
            let hits = rows
                .iter()
                .zip(gold_rows)
                .filter(|(p, g)| {
                    let mut a = (*p).clone();
                    let mut b = (*g).clone();
                    a.sort();
                    b.sort();
                    a == b
                })
                .count();
            fraction(hits, gold_rows.len())
        }
        (ServedOutput::Select { index, .. }, TaskLabel::Select(g)) => Some(f64::from(index == g)),
        _ => None,
    }
}

/// Mean accuracy of a response over every task the record carries gold
/// for (and the response answered with a matching shape). `None` when no
/// task could be scored — the record is unlabeled traffic.
pub fn score_response(schema: &Schema, record: &Record, response: &ServingResponse) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for task in schema.tasks.keys() {
        let Some(gold) = record.gold(task) else { continue };
        let Some(served) = response.tasks.get(task) else { continue };
        let Some(score) = score_output(served, gold) else { continue };
        sum += score;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn score_output_covers_all_shapes() {
        assert_eq!(
            score_output(
                &ServedOutput::Multiclass { class: "A".into(), dist: vec![] },
                &TaskLabel::MulticlassOne("A".into())
            ),
            Some(1.0)
        );
        assert_eq!(
            score_output(
                &ServedOutput::MulticlassSeq { classes: vec!["A".into(), "B".into()] },
                &TaskLabel::MulticlassSeq(vec!["A".into(), "C".into()])
            ),
            Some(0.5)
        );
        assert_eq!(
            score_output(
                &ServedOutput::Bits { set: vec!["y".into(), "x".into()] },
                &TaskLabel::BitvectorOne(vec!["x".into(), "y".into()])
            ),
            Some(1.0)
        );
        assert_eq!(
            score_output(&ServedOutput::Select { index: 2, id: "e".into() }, &TaskLabel::Select(1)),
            Some(0.0)
        );
        // Shape mismatch scores nothing.
        assert_eq!(
            score_output(
                &ServedOutput::MulticlassSeq { classes: vec!["A".into()] },
                &TaskLabel::MulticlassSeq(vec!["A".into(), "B".into()])
            ),
            None
        );
    }

    #[test]
    fn score_response_averages_scored_tasks_only() {
        let schema = overton_nlp::workload_schema();
        let record = Record::new()
            .with_label(
                "Intent",
                overton_store::GOLD_SOURCE,
                TaskLabel::MulticlassOne("Age".into()),
            )
            .with_label("IntentArg", overton_store::GOLD_SOURCE, TaskLabel::Select(1));
        let response = ServingResponse {
            tasks: BTreeMap::from([
                (
                    "Intent".to_string(),
                    ServedOutput::Multiclass { class: "Age".into(), dist: vec![] },
                ),
                ("IntentArg".to_string(), ServedOutput::Select { index: 0, id: "x".into() }),
            ]),
            slices: vec![],
            confidence: 1.0,
        };
        // Intent right, IntentArg wrong, POS/EntityType unlabeled → 0.5.
        assert_eq!(score_response(&schema, &record, &response), Some(0.5));
        // No gold at all → None, not 0.
        assert_eq!(score_response(&schema, &Record::new(), &response), None);
    }
}

//! The multi-threaded serving front end: a shared request queue drained by
//! worker threads in dynamic micro-batches.
//!
//! Requests are enqueued individually (or as a burst) and each worker
//! drains *up to* `max_batch` of whatever is queued the moment it wakes —
//! under light load a request rides alone for minimal latency, under heavy
//! load batches fill up and the batched forward path
//! ([`overton_model::Server::predict_batch`]) amortizes per-record
//! overhead. Engines are hot-swappable behind an `RwLock`, which is what
//! lets the deployment manager promote a canary under live traffic without
//! dropping a request.

use crate::cascade::{CascadeEngine, Route};
use crate::telemetry::{Telemetry, TelemetrySnapshot, TrafficBaseline};
use crate::trace::{RequestTrace, SpanName};
use overton_model::ServingResponse;
use overton_store::{Record, StoreError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Worker pool sizing and batching knobs.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Worker threads.
    pub workers: usize,
    /// Maximum records a worker drains into one batch.
    pub max_batch: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self { workers: 4, max_batch: 32 }
    }
}

/// The answer to one submitted request.
#[derive(Debug)]
pub struct ServeReply {
    /// Submission sequence number (per pool, starting at 0).
    pub seq: u64,
    /// The response, or the per-record failure.
    pub result: Result<ServingResponse, StoreError>,
    /// Which cascade route answered.
    pub route: Route,
    /// Queue + inference time, as observed by the worker.
    pub latency: Duration,
    /// Size of the micro-batch this request was served in.
    pub batch_size: usize,
}

/// A handle to one in-flight request.
pub struct Ticket {
    seq: u64,
    rx: mpsc::Receiver<ServeReply>,
}

impl Ticket {
    /// The request's submission sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Blocks until the reply arrives.
    ///
    /// # Panics
    /// Panics if the pool was torn down without serving the request (a bug
    /// — shutdown drains the queue first).
    pub fn wait(self) -> ServeReply {
        self.rx.recv().expect("worker pool dropped an in-flight request")
    }
}

struct Job {
    seq: u64,
    record: Record,
    enqueued: Instant,
    tx: mpsc::Sender<ServeReply>,
    /// The request trace this job belongs to, when the request is being
    /// traced. Workers only stamp its lock-free atomics — a traced batch
    /// costs a few atomic stores, never a lock.
    trace: Option<Arc<RequestTrace>>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    paused: AtomicBool,
    engine: RwLock<Arc<CascadeEngine>>,
    telemetry: Telemetry,
    next_seq: AtomicU64,
}

/// A running serving pool. Dropping it shuts the workers down after the
/// queue drains.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    config: ServingConfig,
}

impl WorkerPool {
    /// Starts `config.workers` threads serving from `engine`; `baseline`
    /// enables drift telemetry.
    pub fn start(
        engine: Arc<CascadeEngine>,
        config: ServingConfig,
        baseline: Option<TrafficBaseline>,
    ) -> Self {
        assert!(config.workers > 0, "worker pool needs at least one worker");
        assert!(config.max_batch > 0, "max_batch must be positive");
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            telemetry: Telemetry::new(engine.slice_names().to_vec(), baseline),
            engine: RwLock::new(engine),
            next_seq: AtomicU64::new(0),
        });
        let handles = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let max_batch = config.max_batch;
                std::thread::Builder::new()
                    .name(format!("overton-serve-{i}"))
                    .spawn(move || worker_loop(&shared, max_batch))
                    .expect("spawn serving worker")
            })
            .collect();
        Self { shared, handles, config }
    }

    /// The pool configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Enqueues one record; the reply arrives on the returned ticket.
    pub fn submit(&self, record: Record) -> Ticket {
        let mut tickets = self.submit_burst(vec![record]);
        tickets.pop().expect("one ticket per record")
    }

    /// Enqueues a burst of records under one queue lock, so an arriving
    /// burst is visible to workers all at once and actually batches.
    pub fn submit_burst(&self, records: Vec<Record>) -> Vec<Ticket> {
        self.submit_burst_traced(records, None)
    }

    /// [`submit_burst`](Self::submit_burst), stamping queue/batch/forward
    /// span boundaries onto `trace` as the burst moves through the pool.
    pub fn submit_burst_traced(
        &self,
        records: Vec<Record>,
        trace: Option<Arc<RequestTrace>>,
    ) -> Vec<Ticket> {
        if let Some(t) = &trace {
            t.begin(SpanName::QueueWait);
        }
        let mut tickets = Vec::with_capacity(records.len());
        {
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            for record in records {
                let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed);
                let (tx, rx) = mpsc::channel();
                queue.push_back(Job {
                    seq,
                    record,
                    enqueued: Instant::now(),
                    tx,
                    trace: trace.clone(),
                });
                tickets.push(Ticket { seq, rx });
            }
        }
        self.shared.available.notify_all();
        tickets
    }

    /// Submits a burst and blocks for every reply, returned in submission
    /// order.
    pub fn process(&self, records: Vec<Record>) -> Vec<ServeReply> {
        self.submit_burst(records).into_iter().map(Ticket::wait).collect()
    }

    /// [`process`](Self::process) with span stamping onto `trace`.
    pub fn process_traced(
        &self,
        records: Vec<Record>,
        trace: Option<Arc<RequestTrace>>,
    ) -> Vec<ServeReply> {
        self.submit_burst_traced(records, trace).into_iter().map(Ticket::wait).collect()
    }

    /// Requests currently waiting in the queue (not yet drained into a
    /// worker's batch) — the admission-control signal the socket tier's
    /// shed policy reads.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("queue poisoned").len()
    }

    /// Pauses the workers: submissions still enqueue, but nothing is
    /// drained until [`resume`](Self::resume). Deterministic backpressure
    /// for overload and drain tests — fill the queue to a known depth,
    /// assert shedding, then release. Shutdown overrides a pause, so a
    /// paused pool still drains on drop.
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::SeqCst);
    }

    /// Resumes draining after [`pause`](Self::pause).
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::SeqCst);
        self.shared.available.notify_all();
    }

    /// The currently-serving engine.
    pub fn engine(&self) -> Arc<CascadeEngine> {
        Arc::clone(&self.shared.engine.read().expect("engine lock poisoned"))
    }

    /// Hot-swaps the serving engine (deployment promotion/rollback). The
    /// swap must preserve the serving signature — that is the §2.1/§2.4
    /// model-independence contract — and the slice space, which telemetry
    /// indexes positionally but the signature does not cover. In-flight
    /// batches finish on the old engine; returns it.
    pub fn swap_engine(
        &self,
        engine: Arc<CascadeEngine>,
    ) -> Result<Arc<CascadeEngine>, StoreError> {
        let mut slot = self.shared.engine.write().expect("engine lock poisoned");
        if slot.signature() != engine.signature() {
            return Err(StoreError::Validation(
                "engine swap would change the serving signature".into(),
            ));
        }
        if slot.slice_names() != engine.slice_names() {
            return Err(StoreError::Validation(
                "engine swap would change the slice space telemetry reports over".into(),
            ));
        }
        Ok(std::mem::replace(&mut *slot, engine))
    }

    /// Live telemetry snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.shared.telemetry.snapshot()
    }

    /// The pool's telemetry sink — the attach point for the observability
    /// hook ([`Telemetry::attach_observer`]) and the baseline accessor.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Signals shutdown, drains the queue, and joins the workers.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(shared: &Shared, max_batch: usize) {
    loop {
        let batch: Vec<Job> = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                // Shutdown overrides pause: a paused pool still drains its
                // queue on the way down, so no ticket is ever dropped.
                let shutdown = shared.shutdown.load(Ordering::SeqCst);
                if !queue.is_empty() && (shutdown || !shared.paused.load(Ordering::SeqCst)) {
                    break;
                }
                if shutdown && queue.is_empty() {
                    return;
                }
                queue = shared.available.wait(queue).expect("queue poisoned");
            }
            let n = queue.len().min(max_batch);
            queue.drain(..n).collect()
        };
        // More work may remain for the other workers.
        shared.available.notify_all();

        // Dequeue boundary: queue-wait ends, batch formation begins. One
        // request's records can split across batches and workers; the
        // fetch_min/fetch_max merge in RequestTrace folds every stamp
        // into a single envelope per span.
        let drained = Instant::now();
        for job in &batch {
            if let Some(t) = &job.trace {
                t.end_at(SpanName::QueueWait, drained);
                t.begin_at(SpanName::BatchWait, drained);
            }
        }
        let engine = Arc::clone(&shared.engine.read().expect("engine lock poisoned"));
        let batch_size = batch.len();
        struct Pending {
            seq: u64,
            enqueued: Instant,
            tx: mpsc::Sender<ServeReply>,
            trace: Option<Arc<RequestTrace>>,
        }
        let (pending, records): (Vec<Pending>, Vec<Record>) = batch
            .into_iter()
            .map(|j| {
                (Pending { seq: j.seq, enqueued: j.enqueued, tx: j.tx, trace: j.trace }, j.record)
            })
            .unzip();
        let forward_start = Instant::now();
        for p in &pending {
            if let Some(t) = &p.trace {
                t.end_at(SpanName::BatchWait, forward_start);
                t.begin_at(SpanName::EngineForward, forward_start);
            }
        }
        let results = engine.answer_batch(&records);
        let finished = Instant::now();
        for p in &pending {
            if let Some(t) = &p.trace {
                t.end_at(SpanName::EngineForward, finished);
            }
        }
        let observed = shared.telemetry.observer_attached();
        for ((p, record), (result, route)) in pending.into_iter().zip(&records).zip(results) {
            let latency = finished.duration_since(p.enqueued);
            shared.telemetry.observe(&result, latency);
            if observed {
                // The observability hook: build the flattened sample and
                // try_send it — bounded channel, never blocks a worker.
                shared.telemetry.forward(crate::telemetry::ServeSample::collect(
                    engine.schema(),
                    shared.telemetry.slice_names(),
                    record,
                    &result,
                    latency,
                ));
            }
            // A dropped ticket just means the caller stopped waiting.
            let _ = p.tx.send(ServeReply { seq: p.seq, result, route, latency, batch_size });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_model::{CompiledModel, DeployableModel, FeatureSpace, ModelConfig, Server};
    use overton_nlp::{generate_workload, WorkloadConfig};
    use std::collections::BTreeMap;

    fn engine_and_records(seed: u64) -> (Arc<CascadeEngine>, Vec<Record>) {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 40,
            n_dev: 10,
            n_test: 60,
            seed,
            ..Default::default()
        });
        let space = FeatureSpace::build(&ds);
        let model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
        let artifact = DeployableModel::package(&model, &space, BTreeMap::new());
        let records = ds.test_indices().iter().map(|&i| ds.records()[i].clone()).collect();
        (Arc::new(CascadeEngine::single(Server::load(&artifact))), records)
    }

    #[test]
    fn burst_is_served_in_order_with_batching() {
        let (engine, records) = engine_and_records(71);
        let pool = WorkerPool::start(
            Arc::clone(&engine),
            ServingConfig { workers: 3, max_batch: 8 },
            None,
        );
        let reference: Vec<ServingResponse> = {
            let server = engine.answer_batch(&records);
            server.into_iter().map(|(r, _)| r.unwrap()).collect()
        };
        let replies = pool.process(records);
        assert_eq!(replies.len(), reference.len());
        for (i, reply) in replies.iter().enumerate() {
            assert_eq!(reply.seq, i as u64, "replies out of submission order");
            assert_eq!(*reply.result.as_ref().unwrap(), reference[i]);
            assert!(reply.batch_size >= 1 && reply.batch_size <= 8);
        }
        let snap = pool.snapshot();
        assert_eq!(snap.served, reference.len() as u64);
        assert_eq!(snap.errors, 0);
        pool.shutdown();
    }

    #[test]
    fn invalid_records_fail_individually_and_count_as_errors() {
        let (engine, mut records) = engine_and_records(72);
        records.truncate(5);
        records.push(Record::new().with_label(
            "Intent",
            "w",
            overton_store::TaskLabel::MulticlassOne("NotAClass".into()),
        ));
        let pool = WorkerPool::start(engine, ServingConfig::default(), None);
        let replies = pool.process(records);
        assert_eq!(replies.iter().filter(|r| r.result.is_err()).count(), 1);
        assert!(replies.last().unwrap().result.is_err());
        assert_eq!(pool.snapshot().errors, 1);
    }

    #[test]
    fn pause_holds_the_queue_and_resume_releases_it() {
        let (engine, mut records) = engine_and_records(75);
        records.truncate(6);
        let pool = WorkerPool::start(engine, ServingConfig { workers: 2, max_batch: 4 }, None);
        pool.pause();
        let tickets = pool.submit_burst(records);
        // Paused workers drain nothing; the queue holds the whole burst.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(pool.queue_depth(), tickets.len());
        pool.resume();
        let replies: Vec<ServeReply> = tickets.into_iter().map(Ticket::wait).collect();
        assert!(replies.iter().all(|r| r.result.is_ok()));
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn shutdown_overrides_pause_and_still_drains() {
        let (engine, mut records) = engine_and_records(76);
        records.truncate(3);
        let pool = WorkerPool::start(engine, ServingConfig { workers: 1, max_batch: 8 }, None);
        pool.pause();
        let tickets = pool.submit_burst(records);
        pool.shutdown();
        // Every queued request was still answered on the way down.
        for ticket in tickets {
            assert!(ticket.wait().result.is_ok());
        }
    }

    #[test]
    fn swap_engine_rejects_signature_changes_and_allows_retrains() {
        let (engine, records) = engine_and_records(73);
        let pool = WorkerPool::start(Arc::clone(&engine), ServingConfig::default(), None);
        // A retrained model over the same schema swaps in fine.
        let (retrained, _) = engine_and_records(73);
        assert!(pool.swap_engine(retrained).is_ok());
        let _ = pool.process(records[..4].to_vec());
        // A different schema (different signature) is rejected.
        let other = generate_workload(&WorkloadConfig {
            n_train: 30,
            n_dev: 5,
            n_test: 5,
            seed: 74,
            ..Default::default()
        });
        let mut schema = other.schema().clone();
        schema.tasks.remove("Intent");
        let space = FeatureSpace::build(&other);
        let model = CompiledModel::compile(&schema, &space, &ModelConfig::default(), None);
        let artifact = DeployableModel::package(&model, &space, BTreeMap::new());
        let incompatible = Arc::new(CascadeEngine::single(Server::load(&artifact)));
        assert!(pool.swap_engine(incompatible).is_err());
        // Same signature but a different slice space is also rejected:
        // telemetry indexes slice probabilities positionally.
        let mut resliced_space = FeatureSpace::build(&other);
        resliced_space.slice_names.push("brand-new-slice".into());
        let resliced =
            CompiledModel::compile(other.schema(), &resliced_space, &ModelConfig::default(), None);
        let artifact = DeployableModel::package(&resliced, &resliced_space, BTreeMap::new());
        let resliced_engine = Arc::new(CascadeEngine::single(Server::load(&artifact)));
        assert_eq!(*resliced_engine.signature(), *pool.engine().signature());
        assert!(pool.swap_engine(resliced_engine).is_err());
    }
}

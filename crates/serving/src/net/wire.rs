//! The JSON wire format of the prediction endpoint — one codec shared by
//! the server-side router and the loopback client, so the two cannot
//! drift apart.
//!
//! Request body (`POST /predict`):
//!
//! ```json
//! {"records": [{"payloads": {...}, "tasks": {...}, "tags": [...]}, ...]}
//! ```
//!
//! Each element is one record in exactly the `data.jsonl` line format of
//! the two-file contract. Response body (`200`):
//!
//! ```json
//! {"results": [{"ok": {"tasks": {...}, "slices": [...], "confidence": c}}
//!              | {"err": "message"}, ...]}
//! ```
//!
//! `results[i]` answers `records[i]`; per-record failures (unknown
//! payloads, vocabulary misses) travel as `err` strings without failing
//! the sibling records — the same contract [`crate::WorkerPool`] gives
//! in-process callers. Serialization of [`ServingResponse`] goes through
//! serde on both sides and floats print shortest-round-trip, so a wire
//! round-trip reproduces the in-process response bit for bit.

use overton_model::ServingResponse;
use overton_store::{Record, StoreError};
use serde::Value;

/// Encodes the request body for a batch of records.
pub fn encode_predict_request(records: &[Record]) -> String {
    let records = Value::Array(records.iter().map(serde::Serialize::to_value).collect());
    let mut body = serde::Map::new();
    body.insert("records".to_string(), records);
    serde_json::to_string(&Value::Object(body)).expect("wire request serialization cannot fail")
}

/// Decodes a request body into records. `max_records` bounds the batch
/// (the decoded error names the cap); malformed JSON, a missing or
/// non-array `records` field, an empty batch, and per-record shape errors
/// all come back as one client-facing message.
pub fn decode_predict_request(body: &[u8], max_records: usize) -> Result<Vec<Record>, String> {
    let text = std::str::from_utf8(body).map_err(|e| format!("body is not UTF-8: {e}"))?;
    let value: Value = serde_json::from_str_value(text).map_err(|e| format!("bad JSON: {e}"))?;
    let Value::Object(mut fields) = value else {
        return Err("request body must be a JSON object".to_string());
    };
    let Some(records) = fields.remove("records") else {
        return Err("request body needs a 'records' array".to_string());
    };
    let Value::Array(records) = records else {
        return Err("'records' must be an array".to_string());
    };
    if records.is_empty() {
        return Err("'records' is empty".to_string());
    }
    if records.len() > max_records {
        return Err(format!("{} records exceed the {max_records}-record batch cap", records.len()));
    }
    records
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            <Record as serde::Deserialize>::from_value(v).map_err(|e| format!("records[{i}]: {e}"))
        })
        .collect()
}

/// Encodes the response body for a batch of per-record results.
pub fn encode_predict_response(results: &[Result<ServingResponse, StoreError>]) -> String {
    let results = Value::Array(
        results
            .iter()
            .map(|r| {
                let mut entry = serde::Map::new();
                match r {
                    Ok(response) => {
                        entry.insert("ok".to_string(), serde::Serialize::to_value(response));
                    }
                    Err(e) => {
                        entry.insert("err".to_string(), Value::String(e.to_string()));
                    }
                }
                Value::Object(entry)
            })
            .collect(),
    );
    let mut body = serde::Map::new();
    body.insert("results".to_string(), results);
    serde_json::to_string(&Value::Object(body)).expect("wire response serialization cannot fail")
}

/// Decodes a response body into per-record results (the client half).
pub fn decode_predict_response(
    body: &[u8],
) -> Result<Vec<Result<ServingResponse, String>>, String> {
    let text = std::str::from_utf8(body).map_err(|e| format!("body is not UTF-8: {e}"))?;
    let value: Value = serde_json::from_str_value(text).map_err(|e| format!("bad JSON: {e}"))?;
    let Value::Object(mut fields) = value else {
        return Err("response body must be a JSON object".to_string());
    };
    let Some(Value::Array(results)) = fields.remove("results") else {
        return Err("response body needs a 'results' array".to_string());
    };
    results
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            let Value::Object(mut entry) = v else {
                return Err(format!("results[{i}] is not an object"));
            };
            if let Some(ok) = entry.remove("ok") {
                return <ServingResponse as serde::Deserialize>::from_value(ok)
                    .map(Ok)
                    .map_err(|e| format!("results[{i}].ok: {e}"));
            }
            match entry.remove("err") {
                Some(Value::String(msg)) => Ok(Err(msg)),
                _ => Err(format!("results[{i}] has neither 'ok' nor 'err'")),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_model::ServedOutput;
    use std::collections::BTreeMap;

    fn record() -> Record {
        Record::new()
            .with_payload("query", overton_store::PayloadValue::Singleton("who is ada".into()))
            .with_tag("live")
    }

    fn response(confidence: f32) -> ServingResponse {
        ServingResponse {
            tasks: BTreeMap::from([(
                "Intent".to_string(),
                ServedOutput::Multiclass {
                    class: "Person".into(),
                    dist: vec![("Person".into(), 0.62519), ("Age".into(), 0.37481)],
                },
            )]),
            slices: vec![("hard".into(), 0.123_456_79)],
            confidence,
        }
    }

    #[test]
    fn request_roundtrips_records_exactly() {
        let records = vec![record(), Record::new()];
        let body = encode_predict_request(&records);
        let back = decode_predict_request(body.as_bytes(), 16).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn request_decode_rejects_malformed_shapes() {
        let cap = 4;
        for (body, needle) in [
            (&b"\xff\xfe"[..], "UTF-8"),
            (b"{not json", "bad JSON"),
            (b"[1,2]", "must be a JSON object"),
            (b"{}", "'records' array"),
            (b"{\"records\": 3}", "must be an array"),
            (b"{\"records\": []}", "empty"),
            (b"{\"records\": [1,2,3,4,5]}", "batch cap"),
            (b"{\"records\": [{\"payloads\": 7}]}", "records[0]"),
        ] {
            let err = decode_predict_request(body, cap).unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        }
    }

    #[test]
    fn response_roundtrips_bit_for_bit_including_errors() {
        let results: Vec<Result<ServingResponse, StoreError>> = vec![
            Ok(response(0.73001397)),
            Err(StoreError::Validation("record has unknown payload 'x'".into())),
            Ok(response(f32::MIN_POSITIVE)),
        ];
        let body = encode_predict_response(&results);
        let back = decode_predict_response(body.as_bytes()).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].as_ref().unwrap(), results[0].as_ref().unwrap());
        assert_eq!(back[1].as_ref().unwrap_err(), &results[1].as_ref().unwrap_err().to_string());
        assert_eq!(back[2].as_ref().unwrap(), results[2].as_ref().unwrap());
    }

    #[test]
    fn response_decode_rejects_malformed_shapes() {
        for (body, needle) in [
            (&b"nope"[..], "bad JSON"),
            (b"{}", "'results' array"),
            (b"{\"results\": [42]}", "not an object"),
            (b"{\"results\": [{}]}", "neither 'ok' nor 'err'"),
            (b"{\"results\": [{\"ok\": 9}]}", "results[0].ok"),
        ] {
            let err = decode_predict_response(body).unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        }
    }
}

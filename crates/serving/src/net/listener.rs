//! The TCP front door: accept loop, per-connection handlers, connection
//! caps, and graceful drain.
//!
//! Shape: one acceptor thread polls a non-blocking [`TcpListener`]; each
//! accepted connection gets its own handler thread (bounded by
//! [`NetConfig::max_connections`] — beyond the cap a connection is
//! answered `503` and closed immediately, the connection-level twin of
//! queue shedding). Handlers speak the bounded HTTP subset
//! ([`super::http`]) with per-read socket timeouts plus a per-request
//! wall deadline, route through the private router module, and
//! keep-alive until the peer closes, errs, or the server drains.
//!
//! Graceful drain ([`NetServer::drain`], or [`DrainHandle`] from a signal
//! handler): stop accepting (the listener socket closes, so new
//! connections are *refused* by the kernel, not silently parked), let
//! every in-flight request finish and flush, then return. The worker
//! pool is shared (`Arc`) and intentionally not owned: after drain the
//! caller still holds it for final telemetry and shutdown.

use super::http::{read_request, HttpLimits, Response};
use super::router::{route, RouterCtx};
use super::shed::ShedPolicy;
use crate::pool::WorkerPool;
use crate::prom::{ConnGauges, MetricsExt};
use crate::trace::{SpanName, TraceConfig, TraceStore};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Socket-tier configuration.
#[derive(Clone)]
pub struct NetConfig {
    /// Most simultaneously open connections; excess connections are
    /// answered `503` and closed without reading the request.
    pub max_connections: usize,
    /// Per-read socket timeout (wakes a reader blocked on a silent peer).
    pub read_timeout: Duration,
    /// Per-write socket timeout.
    pub write_timeout: Duration,
    /// Wall-clock cap on reading one whole request — the slowloris
    /// defense: a peer trickling bytes cannot hold a handler past it.
    pub request_deadline: Duration,
    /// Byte/count caps for the HTTP parser.
    pub limits: HttpLimits,
    /// Admission control over the pool queue.
    pub shed: ShedPolicy,
    /// Most records accepted in one prediction request.
    pub max_records: usize,
    /// Request tracing; `None` disables the span layer entirely (no
    /// `x-overton-trace` echo, `/trace/<id>` answers 404).
    pub trace: Option<TraceConfig>,
    /// Extra exposition text appended to `GET /metrics` (the CLI hooks
    /// the obs layer's monitor metrics in here).
    pub metrics_ext: Option<MetricsExt>,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(10),
            limits: HttpLimits::default(),
            shed: ShedPolicy::default(),
            max_records: 4096,
            trace: Some(TraceConfig::default()),
            metrics_ext: None,
        }
    }
}

impl std::fmt::Debug for NetConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetConfig")
            .field("max_connections", &self.max_connections)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("request_deadline", &self.request_deadline)
            .field("limits", &self.limits)
            .field("shed", &self.shed)
            .field("max_records", &self.max_records)
            .field("trace", &self.trace)
            .field("metrics_ext", &self.metrics_ext.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// Errors starting or running the socket tier.
#[derive(Debug)]
pub enum NetError {
    /// Binding `addr` failed — unparseable address, busy port,
    /// unroutable interface. The message names the address so `overton
    /// serve --listen` failures are actionable from the shell.
    Bind {
        /// The address as given.
        addr: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A non-bind I/O failure (acceptor setup).
    Io(io::Error),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Bind { addr, source } => {
                write!(f, "cannot listen on {addr}: {source}")
            }
            NetError::Io(e) => write!(f, "socket tier i/o error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Bind { source, .. } => Some(source),
            NetError::Io(e) => Some(e),
        }
    }
}

/// Binds a listener, reporting failures with the offending address.
///
/// Split out from [`NetServer::start`] so a caller (the CLI) can fail
/// fast on a bad `--listen` before doing any expensive artifact loading.
pub fn bind(addr: &str) -> Result<TcpListener, NetError> {
    // `ToSocketAddrs` on &str surfaces both parse failures and resolve
    // failures as io::Error; TcpListener::bind adds busy-port and
    // permission errors. All of them get the address attached.
    let wrap = |source: io::Error| NetError::Bind { addr: addr.to_string(), source };
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs().map_err(wrap)?.collect();
    TcpListener::bind(&addrs[..]).map_err(wrap)
}

pub(crate) struct Shared {
    pub(crate) pool: Arc<WorkerPool>,
    pub(crate) config: NetConfig,
    pub(crate) draining: Arc<AtomicBool>,
    pub(crate) traces: Option<Arc<TraceStore>>,
    active: Mutex<usize>,
    idle: Condvar,
    accepted: AtomicU64,
    refused: AtomicU64,
}

impl Shared {
    /// Point-in-time connection gauges for `/metrics`.
    pub(crate) fn conn_gauges(&self) -> ConnGauges {
        ConnGauges {
            active: *self.active.lock().expect("active gauge poisoned") as u64,
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
        }
    }
}

/// A handle for requesting graceful drain from elsewhere — another
/// thread, or a Unix signal handler (the flag store is async-signal-safe).
#[derive(Clone)]
pub struct DrainHandle {
    draining: Arc<AtomicBool>,
}

impl DrainHandle {
    /// Requests drain: the acceptor stops within its poll interval and
    /// in-flight requests run to completion. Idempotent.
    pub fn request_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// A running socket front end over a [`WorkerPool`].
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Starts serving on an already-bound listener (see [`bind`]).
    pub fn start(
        listener: TcpListener,
        pool: Arc<WorkerPool>,
        config: NetConfig,
    ) -> Result<Self, NetError> {
        let local_addr = listener.local_addr().map_err(NetError::Io)?;
        listener.set_nonblocking(true).map_err(NetError::Io)?;
        let traces = config.trace.clone().map(|tc| Arc::new(TraceStore::new(tc)));
        let shared = Arc::new(Shared {
            pool,
            config,
            draining: Arc::new(AtomicBool::new(false)),
            traces,
            active: Mutex::new(0),
            idle: Condvar::new(),
            accepted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("overton-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(NetError::Io)?
        };
        Ok(Self { shared, local_addr, acceptor: Some(acceptor) })
    }

    /// Binds `addr` and starts serving — [`bind`] + [`NetServer::start`].
    pub fn serve(addr: &str, pool: Arc<WorkerPool>, config: NetConfig) -> Result<Self, NetError> {
        Self::start(bind(addr)?, pool, config)
    }

    /// The bound address (with the kernel-assigned port when `addr` had
    /// port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A cloneable drain trigger for signal handlers and other threads.
    /// Draining via the handle stops the acceptor, but only
    /// [`NetServer::drain`] (or drop) blocks until in-flight work
    /// finishes.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle { draining: Arc::clone(&self.shared.draining) }
    }

    /// Whether drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Connections accepted into a handler so far.
    pub fn accepted_connections(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Connections refused at the door (over the connection cap).
    pub fn refused_connections(&self) -> u64 {
        self.shared.refused.load(Ordering::Relaxed)
    }

    /// The server's trace retention store, when tracing is enabled —
    /// in-process access to the same traces `/trace/<id>` and `/traces`
    /// serve over the wire.
    pub fn trace_store(&self) -> Option<Arc<TraceStore>> {
        self.shared.traces.clone()
    }

    /// Gracefully drains: stop accepting (new connections are refused by
    /// the closed listener), finish and flush every in-flight request,
    /// then return. An idle keep-alive connection counts as in-flight
    /// until its read times out, so drain completes within roughly
    /// [`NetConfig::read_timeout`] even with lingering clients.
    pub fn drain(mut self) {
        self.drain_in_place();
    }

    fn drain_in_place(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let mut active = self.shared.active.lock().expect("active gauge poisoned");
        while *active > 0 {
            active = self.shared.idle.wait(active).expect("active gauge poisoned");
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.drain_in_place();
    }
}

/// How often the acceptor re-checks the drain flag while no connection
/// is waiting.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            // Dropping the listener closes the socket: subsequent
            // connects are refused by the kernel, the clean drain signal.
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => dispatch(stream, shared),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept errors (aborted handshakes, fd pressure):
            // back off briefly rather than spinning or dying.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn dispatch(stream: TcpStream, shared: &Arc<Shared>) {
    {
        let mut active = shared.active.lock().expect("active gauge poisoned");
        if *active >= shared.config.max_connections {
            drop(active);
            shared.refused.fetch_add(1, Ordering::Relaxed);
            shared.pool.telemetry().record_shed();
            refuse(stream, &shared.config);
            return;
        }
        *active += 1;
    }
    shared.accepted.fetch_add(1, Ordering::Relaxed);
    let conn_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new().name("overton-net-conn".into()).spawn(move || {
        handle_connection(stream, &conn_shared);
        let mut active = conn_shared.active.lock().expect("active gauge poisoned");
        *active -= 1;
        conn_shared.idle.notify_all();
    });
    if let Err(_e) = spawned {
        // Could not spawn (thread exhaustion): roll the gauge back; the
        // dropped stream closes the connection.
        let mut active = shared.active.lock().expect("active gauge poisoned");
        *active -= 1;
        shared.idle.notify_all();
    }
}

/// Answers an over-cap connection with an immediate `503` and closes it.
fn refuse(mut stream: TcpStream, config: &NetConfig) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let retry = config.shed.retry_after.as_secs().max(1).to_string();
    let _ = Response::json(503, "{\"error\":\"connection limit reached\"}")
        .with_header("retry-after", &retry)
        .with_header("connection", "close")
        .write_to(&mut stream);
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let config = &shared.config;
    if stream.set_read_timeout(Some(config.read_timeout)).is_err()
        || stream.set_write_timeout(Some(config.write_timeout)).is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let ctx = RouterCtx { shared: Arc::clone(shared) };
    loop {
        // The cycle start doubles as the trace origin: the accept span
        // covers socket read (keep-alive idle wait included) + HTTP parse.
        let received = Instant::now();
        let deadline = received + config.request_deadline;
        match read_request(&mut reader, &config.limits, deadline) {
            Ok(req) => {
                // Decide connection fate *before* handling: a drain that
                // lands mid-request must still close afterwards.
                let close = req.wants_close() || shared.draining.load(Ordering::SeqCst);
                let (mut response, trace) = route(&ctx, &req, received);
                if close {
                    response = response.with_header("connection", "close");
                }
                if let Some(t) = &trace {
                    t.begin(SpanName::Write);
                }
                let wrote = write_response(&mut writer, &response);
                if let Some(t) = &trace {
                    t.end(SpanName::Write);
                    if let Some(store) = &shared.traces {
                        store.finish(t);
                    }
                }
                if wrote.is_err() || close {
                    return;
                }
                // A request read after drain began was answered (likely
                // 503) with `connection: close`; re-check for requests
                // that were mid-flight when the flag flipped.
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) => {
                // 4xx/5xx when answerable; quiet close otherwise. Either
                // way the connection is done — bounded parsing plus
                // close-on-error means a hostile peer costs at most one
                // request cycle.
                if let Some(response) = e.response() {
                    let _ = write_response(&mut writer, &response);
                }
                return;
            }
        }
    }
}

fn write_response(w: &mut TcpStream, response: &Response) -> io::Result<()> {
    // Serialize into one buffer so the response leaves in a single write
    // (headers are tiny; syscall-per-header would dominate small replies).
    let mut buf = Vec::with_capacity(response.body.len() + 256);
    response.write_to(&mut buf)?;
    w.write_all(&buf)
}

//! The networked serving tier: Overton on a socket.
//!
//! `overton serve --listen <addr>` puts the in-process
//! [`WorkerPool`](crate::WorkerPool) behind a TCP front end speaking a
//! hand-rolled, strictly bounded HTTP/1.1 subset (the vendor tree is
//! offline — no tokio, no hyper, and none needed for this wire surface).
//! Production hardening is built in rather than bolted on:
//!
//! - **Bounded parsing** ([`http`]): every read is capped in bytes and
//!   wall time; malformed, oversized, truncated, or trickled requests
//!   yield a 4xx and a closed connection, never a panic or a hung
//!   handler.
//! - **Admission control** ([`shed`]): past the pool-queue high-water
//!   mark, `/predict` answers `503` + `Retry-After` immediately — the
//!   tier sheds load instead of letting queue depth eat the p99.
//! - **Connection caps + timeouts** ([`listener`]): a fixed handler
//!   budget with `503`-at-the-door beyond it, per-read socket timeouts
//!   and a per-request deadline (slowloris defense).
//! - **Graceful drain** ([`NetServer::drain`] / [`DrainHandle`]): stop
//!   accepting, finish every in-flight request, then return — wired to
//!   SIGTERM in the CLI and reused around engine hot-swap.
//! - **One wire codec** ([`wire`]) shared by the router and the loopback
//!   [`NetClient`], so a wire round-trip reproduces the in-process
//!   response bit for bit.
//!
//! Telemetry and the observability hook see socket traffic exactly as
//! in-process traffic: both paths meet in the same pool, and shed
//! decisions surface in [`TelemetrySnapshot::shed`](crate::TelemetrySnapshot).

pub mod client;
pub mod http;
pub mod listener;
mod router;
pub mod shed;
pub mod wire;

pub use client::{ClientError, ClientResponse, NetClient, PredictOutcome};
pub use http::{HttpError, HttpLimits, Request, Response};
pub use listener::{bind, DrainHandle, NetConfig, NetError, NetServer};
pub use shed::{Admission, ShedPolicy};

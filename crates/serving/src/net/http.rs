//! A hand-rolled, strictly-bounded HTTP/1.1 subset.
//!
//! The vendor tree is offline (no tokio, no hyper), and the serving tier
//! needs only a sliver of HTTP: `POST /predict` with a JSON body plus a
//! couple of `GET` probes. What it needs *unconditionally* is bounds —
//! every read in this parser is capped (request-line length, header line
//! length, header count, declared body size) and checked against a
//! wall-clock deadline, so a malformed or hostile peer (slowloris
//! trickles, oversize bodies, over-declared `Content-Length`) yields a
//! clean 4xx and a closed connection, never a panic, an unbounded buffer,
//! or a hung handler thread.
//!
//! The subset: `HTTP/1.0` and `HTTP/1.1` request lines, token methods,
//! plain headers (no obsolete line folding), bodies framed by
//! `Content-Length` only (`Transfer-Encoding` is rejected), keep-alive by
//! default on 1.1 with `Connection: close` honored both ways.

use std::io::{self, BufRead, Write};
use std::time::Instant;

/// Hard caps on what the parser will buffer for one request.
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Longest accepted request line (method + target + version), bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line, bytes.
    pub max_header_line: usize,
    /// Most headers accepted on one request.
    pub max_headers: usize,
    /// Largest accepted declared `Content-Length`, bytes.
    pub max_body: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self {
            max_request_line: 8 * 1024,
            max_header_line: 8 * 1024,
            max_headers: 64,
            max_body: 4 * 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method token, uppercased by the wire (`GET`, `POST`, ...).
    pub method: String,
    /// The request target as sent (no normalization beyond stripping the
    /// query string is done here; the router matches it literally).
    pub target: String,
    /// `(name, value)` pairs in wire order; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes (empty without one).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Everything that can go wrong reading one request. Each variant maps to
/// the response the connection handler should attempt before closing —
/// or to "close quietly" for clean EOF / idle timeouts.
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before any byte of a request: the peer closed an idle
    /// (keep-alive) connection. Not an error; close quietly.
    ConnectionClosed,
    /// The read deadline or socket timeout expired before any byte of the
    /// request arrived — an idle keep-alive connection. Close quietly.
    IdleTimeout,
    /// The deadline or socket timeout expired mid-request (slowloris).
    Timeout,
    /// The request line exceeded [`HttpLimits::max_request_line`].
    RequestLineTooLong,
    /// The request line was not `METHOD SP TARGET SP VERSION`.
    MalformedRequestLine(String),
    /// An HTTP version other than 1.0/1.1.
    UnsupportedVersion(String),
    /// A header line exceeded [`HttpLimits::max_header_line`].
    HeaderTooLarge,
    /// More than [`HttpLimits::max_headers`] headers.
    TooManyHeaders,
    /// A header line without a colon, an empty name, or a non-token name.
    MalformedHeader(String),
    /// A body-bearing method without a `Content-Length`.
    LengthRequired,
    /// `Content-Length` was not a plain decimal, or two copies disagreed.
    BadLength(String),
    /// `Transfer-Encoding` is outside the subset.
    UnsupportedTransferEncoding,
    /// Declared `Content-Length` exceeds [`HttpLimits::max_body`].
    BodyTooLarge {
        /// What the peer declared.
        declared: usize,
        /// The configured cap.
        max: usize,
    },
    /// The peer closed the connection before sending the declared body
    /// (over-declared `Content-Length`).
    BodyTruncated {
        /// What the peer declared.
        declared: usize,
        /// How many body bytes actually arrived.
        got: usize,
    },
    /// The connection broke mid-request in a way that is not worth (or
    /// not possible) answering.
    Io(io::Error),
}

impl HttpError {
    /// The status code this error answers with, or `None` when the
    /// connection should just be closed (clean EOF, idle timeout, broken
    /// transport).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::ConnectionClosed | HttpError::IdleTimeout | HttpError::Io(_) => None,
            HttpError::Timeout => Some(408),
            HttpError::RequestLineTooLong => Some(414),
            HttpError::MalformedRequestLine(_)
            | HttpError::MalformedHeader(_)
            | HttpError::BadLength(_)
            | HttpError::UnsupportedTransferEncoding
            | HttpError::BodyTruncated { .. } => Some(400),
            HttpError::UnsupportedVersion(_) => Some(505),
            HttpError::HeaderTooLarge | HttpError::TooManyHeaders => Some(431),
            HttpError::LengthRequired => Some(411),
            HttpError::BodyTooLarge { .. } => Some(413),
        }
    }

    /// The error response to attempt before closing the connection, when
    /// one is warranted.
    pub fn response(&self) -> Option<Response> {
        let status = self.status()?;
        Some(
            Response::json(status, &format!("{{\"error\":{}}}", json_string(&self.to_string())))
                .with_header("connection", "close"),
        )
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::IdleTimeout => write!(f, "idle connection timed out"),
            HttpError::Timeout => write!(f, "request read timed out"),
            HttpError::RequestLineTooLong => write!(f, "request line too long"),
            HttpError::MalformedRequestLine(l) => write!(f, "malformed request line: {l}"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version: {v}"),
            HttpError::HeaderTooLarge => write!(f, "header line too large"),
            HttpError::TooManyHeaders => write!(f, "too many headers"),
            HttpError::MalformedHeader(h) => write!(f, "malformed header: {h}"),
            HttpError::LengthRequired => write!(f, "Content-Length required"),
            HttpError::BadLength(v) => write!(f, "bad Content-Length: {v}"),
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "Transfer-Encoding is not supported")
            }
            HttpError::BodyTooLarge { declared, max } => {
                write!(f, "declared body of {declared} bytes exceeds the {max}-byte limit")
            }
            HttpError::BodyTruncated { declared, got } => {
                write!(f, "body truncated: declared {declared} bytes, got {got}")
            }
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// What one bounded line read produced.
enum Line {
    /// A complete line, terminator stripped (`\r\n` or bare `\n`).
    Full(Vec<u8>),
    /// EOF with zero bytes read.
    Eof,
    /// EOF after some bytes (the line never terminated).
    Truncated(Vec<u8>),
}

/// Reads one line, byte-capped at `max` and wall-capped at `deadline`.
fn read_line_bounded(
    r: &mut impl BufRead,
    max: usize,
    deadline: Instant,
) -> Result<Line, HttpError> {
    let mut line = Vec::new();
    loop {
        if Instant::now() > deadline {
            return Err(timeout_for(&line));
        }
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return Ok(if line.is_empty() { Line::Eof } else { Line::Truncated(line) });
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Line::Full(line));
                }
                line.push(byte[0]);
                if line.len() > max {
                    // The caller maps this to the right too-long error for
                    // the phase it is in; the sentinel is the length.
                    return Err(HttpError::HeaderTooLarge);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(timeout_for(&line));
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

fn timeout_for(partial: &[u8]) -> HttpError {
    if partial.is_empty() {
        HttpError::IdleTimeout
    } else {
        HttpError::Timeout
    }
}

fn is_token(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

/// Reads and validates one request from `r` under `limits`, with the
/// whole read (line by line and body) capped at `deadline`.
///
/// The deadline is the slowloris defense: a peer trickling bytes keeps
/// each socket read alive but cannot keep the *request* alive past it.
/// Callers should also set a per-read socket timeout so a fully silent
/// peer wakes the reader at least that often.
pub fn read_request(
    r: &mut impl BufRead,
    limits: &HttpLimits,
    deadline: Instant,
) -> Result<Request, HttpError> {
    // Request line. A leading empty line is tolerated (robustness per RFC
    // 9112 §2.2) but only one, so a newline flood cannot spin the parser.
    let mut line = match read_line_bounded(r, limits.max_request_line, deadline) {
        Ok(Line::Full(l)) => l,
        Ok(Line::Eof) => return Err(HttpError::ConnectionClosed),
        Ok(Line::Truncated(l)) => {
            return Err(HttpError::MalformedRequestLine(lossy_prefix(&l)));
        }
        Err(HttpError::HeaderTooLarge) => return Err(HttpError::RequestLineTooLong),
        Err(e) => return Err(e),
    };
    if line.is_empty() {
        line = match read_line_bounded(r, limits.max_request_line, deadline) {
            Ok(Line::Full(l)) if !l.is_empty() => l,
            Ok(Line::Eof) => return Err(HttpError::ConnectionClosed),
            Ok(Line::Full(_) | Line::Truncated(_)) => {
                return Err(HttpError::MalformedRequestLine(String::new()));
            }
            Err(HttpError::HeaderTooLarge) => return Err(HttpError::RequestLineTooLong),
            Err(e) => return Err(e),
        };
    }
    let text = String::from_utf8(line)
        .map_err(|e| HttpError::MalformedRequestLine(lossy_prefix(e.as_bytes())))?;
    let mut parts = text.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::MalformedRequestLine(lossy_prefix(text.as_bytes()))),
    };
    if !is_token(method) || method.len() > 16 || target.is_empty() {
        return Err(HttpError::MalformedRequestLine(lossy_prefix(text.as_bytes())));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        // 505 only for a real-but-unsupported HTTP version token; a junk
        // third field is just a malformed request line (400).
        return if version.starts_with("HTTP/") {
            Err(HttpError::UnsupportedVersion(version.to_string()))
        } else {
            Err(HttpError::MalformedRequestLine(lossy_prefix(text.as_bytes())))
        };
    }
    let method = method.to_ascii_uppercase();
    let target = target.to_string();

    // Headers.
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line_bounded(r, limits.max_header_line, deadline)? {
            Line::Full(l) => l,
            Line::Eof | Line::Truncated(_) => {
                return Err(HttpError::MalformedHeader("headers truncated".into()));
            }
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders);
        }
        // Obsolete line folding (a continuation line starting with
        // whitespace) is outside the subset.
        if line[0] == b' ' || line[0] == b'\t' {
            return Err(HttpError::MalformedHeader("obsolete line folding".into()));
        }
        let text = String::from_utf8(line)
            .map_err(|e| HttpError::MalformedHeader(lossy_prefix(e.as_bytes())))?;
        let Some((name, value)) = text.split_once(':') else {
            return Err(HttpError::MalformedHeader(lossy_prefix(text.as_bytes())));
        };
        if !is_token(name) {
            return Err(HttpError::MalformedHeader(lossy_prefix(text.as_bytes())));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body framing: Content-Length only.
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let mut declared: Option<usize> = None;
    for (_, value) in headers.iter().filter(|(n, _)| n == "content-length") {
        if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
            return Err(HttpError::BadLength(value.clone()));
        }
        let parsed: usize = value.parse().map_err(|_| HttpError::BadLength(value.clone()))?;
        match declared {
            Some(prev) if prev != parsed => {
                return Err(HttpError::BadLength(format!("{prev} vs {parsed}")));
            }
            _ => declared = Some(parsed),
        }
    }
    let needs_body = matches!(method.as_str(), "POST" | "PUT" | "PATCH");
    let length = match declared {
        Some(n) => n,
        None if needs_body => return Err(HttpError::LengthRequired),
        None => 0,
    };
    if length > limits.max_body {
        return Err(HttpError::BodyTooLarge { declared: length, max: limits.max_body });
    }
    let mut body = vec![0u8; length];
    let mut got = 0usize;
    while got < length {
        if Instant::now() > deadline {
            return Err(HttpError::Timeout);
        }
        match r.read(&mut body[got..]) {
            Ok(0) => return Err(HttpError::BodyTruncated { declared: length, got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::Timeout);
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    Ok(Request { method, target, headers, body })
}

/// A printable, bounded excerpt of possibly-binary wire bytes for error
/// messages (never echoes more than 64 chars, escapes the rest).
fn lossy_prefix(bytes: &[u8]) -> String {
    let text = String::from_utf8_lossy(bytes);
    let mut out = String::new();
    for c in text.chars().take(64) {
        if c.is_ascii_graphic() || c == ' ' {
            out.push(c);
        } else {
            out.push('.');
        }
    }
    if text.chars().count() > 64 {
        out.push_str("...");
    }
    out
}

/// Minimal JSON string escaping for hand-assembled error bodies.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The reason phrase for the status codes the tier emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Content Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// One response, written with an explicit `Content-Length` always.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Length`/`Content-Type`.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
    content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &str) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            content_type: "text/plain",
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The first value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Serializes the response onto `w` (status line, headers, body).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        write!(w, "content-type: {}\r\n", self.content_type)?;
        write!(w, "content-length: {}\r\n", self.body.len())?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::time::Duration;

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut io::BufReader::new(bytes), &HttpLimits::default(), far())
    }

    #[test]
    fn parses_a_post_with_body_and_lowercases_headers() {
        let req = parse(
            b"POST /predict HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/predict");
        assert_eq!(req.header("content-type"), Some("application/json"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close());
    }

    #[test]
    fn get_without_length_has_empty_body_and_honors_close() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn bare_lf_lines_are_tolerated() {
        let req = parse(b"GET / HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn malformed_inputs_yield_the_right_statuses() {
        let cases: Vec<(&[u8], u16)> = vec![
            (b"NOT A REQUEST\r\n\r\n", 400),
            (b"GET\r\n\r\n", 400),
            (b"GET /x HTTP/2.0\r\n\r\n", 505),
            (b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\n bad: fold\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\n\r\n", 411),
            (b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nab", 400),
            (b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 400),
            (b"GET /x HTTP/1.1\r\nheaders never end", 400),
        ];
        for (bytes, want) in cases {
            let err = parse(bytes).unwrap_err();
            assert_eq!(err.status(), Some(want), "{:?} for {:?}", err, lossy_prefix(bytes));
            // Every 4xx/5xx maps to a writable close-bearing response.
            let resp = err.response().unwrap();
            assert_eq!(resp.status, want);
            assert_eq!(resp.header("connection"), Some("close"));
        }
    }

    #[test]
    fn duplicate_equal_lengths_are_accepted() {
        let req =
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok").unwrap();
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn limits_cap_line_headers_and_body() {
        let limits =
            HttpLimits { max_request_line: 32, max_header_line: 32, max_headers: 2, max_body: 8 };
        let parse = |bytes: &[u8]| {
            read_request(&mut io::BufReader::new(bytes), &limits, far()).unwrap_err()
        };
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64));
        assert_eq!(parse(long_target.as_bytes()).status(), Some(414));
        let long_header = format!("GET /x HTTP/1.1\r\nh: {}\r\n\r\n", "v".repeat(64));
        assert_eq!(parse(long_header.as_bytes()).status(), Some(431));
        assert_eq!(parse(b"GET /x HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n").status(), Some(431));
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789").status(),
            Some(413)
        );
    }

    #[test]
    fn clean_eof_and_empty_leading_line_are_distinguished() {
        assert!(matches!(parse(b"").unwrap_err(), HttpError::ConnectionClosed));
        // One leading blank line is tolerated...
        let req = parse(b"\r\nGET / HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        // ...two are not.
        assert_eq!(parse(b"\r\n\r\nGET / HTTP/1.1\r\n\r\n").unwrap_err().status(), Some(400));
    }

    #[test]
    fn deadline_expiry_mid_request_is_a_timeout() {
        // A reader that never delivers the body.
        let head = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\n";
        struct Stall<'a>(&'a [u8]);
        impl Read for Stall<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() {
                    Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"))
                } else {
                    let n = buf.len().min(self.0.len());
                    buf[..n].copy_from_slice(&self.0[..n]);
                    self.0 = &self.0[n..];
                    Ok(n)
                }
            }
        }
        let err = read_request(&mut io::BufReader::new(Stall(head)), &HttpLimits::default(), far())
            .unwrap_err();
        assert_eq!(err.status(), Some(408));
        // The same stall before any byte is an idle close, not a 408.
        let err = read_request(&mut io::BufReader::new(Stall(b"")), &HttpLimits::default(), far())
            .unwrap_err();
        assert!(matches!(err, HttpError::IdleTimeout));
        assert_eq!(err.status(), None);
    }

    #[test]
    fn responses_serialize_with_explicit_length() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .with_header("retry-after", "2")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}

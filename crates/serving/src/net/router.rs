//! Routing the HTTP subset onto the worker pool.
//!
//! Three routes:
//!
//! - `POST /predict` — decode a batched JSON prediction request, pass it
//!   through admission control ([`ShedPolicy`] over the live pool queue
//!   depth), feed the admitted batch to [`WorkerPool`], answer with the
//!   per-record results in submission order.
//! - `GET /healthz` — liveness + drain state.
//! - `GET /telemetry` — the pool's [`TelemetrySnapshot`] as JSON, the
//!   same serialization the CLI and obslog use.
//!
//! Everything else is `404`; wrong methods on known routes are `405`.

use super::http::{Request, Response};
use super::shed::{Admission, ShedPolicy};
use super::wire;
use crate::pool::WorkerPool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared state the router needs per request.
pub(crate) struct RouterCtx {
    /// The pool answering admitted predictions.
    pub pool: Arc<WorkerPool>,
    /// Admission control over the pool queue.
    pub shed: ShedPolicy,
    /// Set during graceful drain: new predictions are refused.
    pub draining: Arc<AtomicBool>,
    /// Per-request record cap (oversize batches are `413`).
    pub max_records: usize,
}

/// Answers one parsed request.
pub(crate) fn route(ctx: &RouterCtx, req: &Request) -> Response {
    match (req.method.as_str(), req.target.as_str()) {
        ("POST", "/predict") => predict(ctx, req),
        ("GET", "/predict") => {
            Response::json(405, "{\"error\":\"use POST\"}").with_header("allow", "POST")
        }
        ("GET", "/healthz") => {
            if ctx.draining.load(Ordering::SeqCst) {
                Response::json(503, "{\"status\":\"draining\"}")
            } else {
                Response::json(200, "{\"status\":\"ok\"}")
            }
        }
        ("GET", "/telemetry") => match serde_json::to_string(&ctx.pool.snapshot()) {
            Ok(body) => Response::json(200, &body),
            Err(e) => Response::json(500, &format!("{{\"error\":\"{e}\"}}")),
        },
        ("POST" | "GET" | "HEAD", _) => Response::json(404, "{\"error\":\"no such route\"}"),
        _ => Response::json(405, "{\"error\":\"unsupported method\"}")
            .with_header("allow", "GET, POST"),
    }
}

fn predict(ctx: &RouterCtx, req: &Request) -> Response {
    // Drain refuses new work outright — in-flight requests (already in
    // the pool queue) finish, but this one never starts.
    if ctx.draining.load(Ordering::SeqCst) {
        return Response::json(503, "{\"error\":\"draining\"}").with_header("retry-after", "1");
    }
    // Admission control *before* the (possibly large) body is decoded:
    // shedding has to stay cheap precisely when the tier is busiest.
    if let Admission::Shed { retry_after_secs } = ctx.shed.decide(ctx.pool.queue_depth()) {
        ctx.pool.telemetry().record_shed();
        return Response::json(503, "{\"error\":\"overloaded, retry later\"}")
            .with_header("retry-after", &retry_after_secs.to_string());
    }
    let mut records = match wire::decode_predict_request(&req.body, ctx.max_records) {
        Ok(records) => records,
        Err(msg) => {
            let status = if msg.contains("batch cap") { 413 } else { 400 };
            return Response::json(
                status,
                &serde_json::to_string(&serde::Value::Object(serde::Map::from([(
                    "error".to_string(),
                    serde::Value::String(msg),
                )])))
                .expect("error body serializes"),
            );
        }
    };
    // Canonicalize JSON-ambiguous label variants exactly as file ingest
    // does, so a record means the same thing over the wire and in
    // data.jsonl.
    let schema = ctx.pool.engine().schema().clone();
    for record in &mut records {
        record.normalize_labels(&schema);
    }
    let replies = ctx.pool.process(records);
    let results: Vec<_> = replies.into_iter().map(|r| r.result).collect();
    Response::json(200, &wire::encode_predict_response(&results))
}

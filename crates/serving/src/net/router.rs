//! Routing the HTTP subset onto the worker pool.
//!
//! Routes:
//!
//! - `POST /predict` — decode a batched JSON prediction request, pass it
//!   through admission control ([`ShedPolicy`] over the live pool queue
//!   depth), feed the admitted batch to the pool, answer with the
//!   per-record results in submission order. When tracing is on, the
//!   request gets a [`RequestTrace`] (id from `x-overton-trace` or
//!   generated, echoed back in the same header) with spans stamped at
//!   every stage boundary.
//! - `GET /healthz` — liveness + drain state.
//! - `GET /telemetry` — the pool's `TelemetrySnapshot` as JSON, the
//!   same serialization the CLI and obslog use.
//! - `GET /metrics` — Prometheus text exposition ([`crate::prom`]).
//! - `GET /trace/<id>` — one retained trace as JSON.
//! - `GET /traces` — the slowest retained traces, slowest first.
//!
//! Everything else is `404`; wrong methods on known routes are `405`.

use super::http::{Request, Response};
use super::listener::Shared;
use super::shed::Admission;
use super::wire;
use crate::trace::{RequestTrace, SpanName, TraceOutcome};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// The request header (and response echo header) carrying the trace id.
pub(crate) const TRACE_HEADER: &str = "x-overton-trace";

/// Shared state the router needs per request.
pub(crate) struct RouterCtx {
    /// The listener's shared state: pool, config, drain flag, trace
    /// store, connection gauges.
    pub shared: Arc<Shared>,
}

/// Answers one parsed request; `received` is the instant the connection
/// began reading it (the trace origin). Returns the request's trace,
/// when it got one, so the listener can stamp the write span and
/// finalize.
pub(crate) fn route(
    ctx: &RouterCtx,
    req: &Request,
    received: Instant,
) -> (Response, Option<Arc<RequestTrace>>) {
    let shared = &ctx.shared;
    match (req.method.as_str(), req.target.as_str()) {
        ("POST", "/predict") => predict(ctx, req, received),
        ("GET", "/predict") => {
            (Response::json(405, "{\"error\":\"use POST\"}").with_header("allow", "POST"), None)
        }
        ("GET", "/healthz") => {
            let body = if shared.draining.load(Ordering::SeqCst) {
                Response::json(503, "{\"status\":\"draining\"}")
            } else {
                Response::json(200, "{\"status\":\"ok\"}")
            };
            (body, None)
        }
        ("GET", "/telemetry") => {
            let response = match serde_json::to_string(&shared.pool.snapshot()) {
                Ok(body) => Response::json(200, &body),
                Err(e) => Response::json(500, &format!("{{\"error\":\"{e}\"}}")),
            };
            (response, None)
        }
        ("GET", "/metrics") => (metrics(ctx), None),
        ("GET", "/traces") => (slowest_traces(ctx), None),
        (method, target) if target.starts_with("/trace/") => {
            let response = if method == "GET" {
                trace_by_id(ctx, &target["/trace/".len()..])
            } else {
                Response::json(405, "{\"error\":\"use GET\"}").with_header("allow", "GET")
            };
            (response, None)
        }
        ("POST" | "GET" | "HEAD", _) => {
            (Response::json(404, "{\"error\":\"no such route\"}"), None)
        }
        _ => (
            Response::json(405, "{\"error\":\"unsupported method\"}")
                .with_header("allow", "GET, POST"),
            None,
        ),
    }
}

fn metrics(ctx: &RouterCtx) -> Response {
    let shared = &ctx.shared;
    let mut body = crate::prom::render_metrics(
        shared.pool.telemetry(),
        shared.traces.as_deref(),
        Some(shared.conn_gauges()),
        Some(shared.pool.engine().counters()),
    );
    if let Some(ext) = &shared.config.metrics_ext {
        ext(&mut body);
    }
    Response::text(200, &body)
}

fn trace_by_id(ctx: &RouterCtx, id: &str) -> Response {
    let Some(store) = &ctx.shared.traces else {
        return Response::json(404, "{\"error\":\"tracing is disabled\"}");
    };
    match store.get(id) {
        Some(report) => match serde_json::to_string(&report) {
            Ok(body) => Response::json(200, &body),
            Err(e) => Response::json(500, &format!("{{\"error\":\"{e}\"}}")),
        },
        None => Response::json(404, "{\"error\":\"no such trace (evicted or never recorded)\"}"),
    }
}

fn slowest_traces(ctx: &RouterCtx) -> Response {
    let Some(store) = &ctx.shared.traces else {
        return Response::json(404, "{\"error\":\"tracing is disabled\"}");
    };
    match serde_json::to_string(&store.slowest()) {
        Ok(list) => Response::json(200, &format!("{{\"slowest\":{list}}}")),
        Err(e) => Response::json(500, &format!("{{\"error\":\"{e}\"}}")),
    }
}

fn error_body(msg: String) -> String {
    serde_json::to_string(&serde::Value::Object(serde::Map::from([(
        "error".to_string(),
        serde::Value::String(msg),
    )])))
    .expect("error body serializes")
}

fn predict(
    ctx: &RouterCtx,
    req: &Request,
    received: Instant,
) -> (Response, Option<Arc<RequestTrace>>) {
    let shared = &ctx.shared;
    // Drain refuses new work outright — in-flight requests (already in
    // the pool queue) finish, but this one never starts.
    if shared.draining.load(Ordering::SeqCst) {
        let response =
            Response::json(503, "{\"error\":\"draining\"}").with_header("retry-after", "1");
        return (response, None);
    }
    // The cheap pre-decode shed path: under overload the tier answers
    // 503 before spending anything on the (possibly large) body — these
    // fast-path refusals are counted but not traced.
    let shed_policy = &shared.config.shed;
    if let Admission::Shed { retry_after_secs } = shed_policy.decide(shared.pool.queue_depth()) {
        shared.pool.telemetry().record_shed();
        let response = Response::json(503, "{\"error\":\"overloaded, retry later\"}")
            .with_header("retry-after", &retry_after_secs.to_string());
        return (response, None);
    }
    let trace = shared.traces.as_ref().and_then(|s| s.admit(req.header(TRACE_HEADER), received));
    if let Some(t) = &trace {
        t.begin_at(SpanName::Accept, received);
        t.end(SpanName::Accept);
        t.begin(SpanName::Parse);
    }
    let mut records = match wire::decode_predict_request(&req.body, shared.config.max_records) {
        Ok(records) => records,
        Err(msg) => {
            if let Some(t) = &trace {
                t.end(SpanName::Parse);
                t.set_outcome(TraceOutcome::Error);
            }
            let status = if msg.contains("batch cap") { 413 } else { 400 };
            return (echo_trace(Response::json(status, &error_body(msg)), &trace), trace);
        }
    };
    // Canonicalize JSON-ambiguous label variants exactly as file ingest
    // does, so a record means the same thing over the wire and in
    // data.jsonl.
    let schema = shared.pool.engine().schema().clone();
    for record in &mut records {
        record.normalize_labels(&schema);
    }
    if let Some(t) = &trace {
        t.set_records(records.len() as u64);
        t.end(SpanName::Parse);
        t.begin(SpanName::Admission);
    }
    // The authoritative admission decision: decode took real time, so
    // re-check the queue before committing the batch — this closes the
    // window between the cheap pre-decode check and the enqueue.
    if let Admission::Shed { retry_after_secs } = shed_policy.decide(shared.pool.queue_depth()) {
        shared.pool.telemetry().record_shed();
        if let Some(t) = &trace {
            t.end(SpanName::Admission);
            t.set_outcome(TraceOutcome::Shed);
        }
        let response = Response::json(503, "{\"error\":\"overloaded, retry later\"}")
            .with_header("retry-after", &retry_after_secs.to_string());
        return (echo_trace(response, &trace), trace);
    }
    if let Some(t) = &trace {
        t.end(SpanName::Admission);
    }
    let replies = shared.pool.process_traced(records, trace.clone());
    if let Some(t) = &trace {
        t.begin(SpanName::Encode);
    }
    let results: Vec<_> = replies.into_iter().map(|r| r.result).collect();
    let body = wire::encode_predict_response(&results);
    if let Some(t) = &trace {
        t.set_outcome(if results.iter().any(Result::is_err) {
            TraceOutcome::Error
        } else {
            TraceOutcome::Ok
        });
        t.end(SpanName::Encode);
    }
    (echo_trace(Response::json(200, &body), &trace), trace)
}

/// Echoes the trace id back to the client when the request was traced.
fn echo_trace(response: Response, trace: &Option<Arc<RequestTrace>>) -> Response {
    match trace {
        Some(t) => response.with_header(TRACE_HEADER, t.id()),
        None => response,
    }
}

//! A minimal blocking loopback client for the serving tier's wire
//! format — the test battery's, CLI probe's, and bench's view of the
//! socket, built on the same bounded line reader discipline as the
//! server (a misbehaving *server* can't hang a test either).

use super::http::HttpLimits;
use super::wire;
use overton_model::ServingResponse;
use overton_store::Record;
use std::io::{self, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, timeout).
    Io(io::Error),
    /// The server's bytes did not parse as the expected HTTP/JSON shape.
    Protocol(String),
    /// A non-2xx, non-shed status.
    Http {
        /// The status code.
        status: u16,
        /// The (lossy-decoded) response body.
        body: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Http { status, body } => write!(f, "HTTP {status}: {body}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// The outcome of one prediction call.
#[derive(Debug)]
pub enum PredictOutcome {
    /// The batch was admitted; per-record results in submission order.
    Answered(Vec<Result<ServingResponse, String>>),
    /// The server shed the request (overload or drain); retry after the
    /// hinted seconds.
    Shed {
        /// The server's `Retry-After` hint, when present and numeric.
        retry_after_secs: Option<u64>,
    },
}

/// A blocking keep-alive connection to a [`super::NetServer`].
pub struct NetClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl NetClient {
    /// Connects with 5-second transport timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connects with the given read/write timeout.
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { writer: stream, reader })
    }

    /// Sends one request and reads the response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<ClientResponse, ClientError> {
        self.request_with(method, path, body, &[])
    }

    /// Sends one request with extra headers and reads the response.
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        extra_headers: &[(&str, &str)],
    ) -> Result<ClientResponse, ClientError> {
        let mut out = Vec::with_capacity(body.map_or(0, <[u8]>::len) + 128);
        write!(out, "{method} {path} HTTP/1.1\r\n")?;
        out.extend_from_slice(b"host: overton\r\n");
        for (name, value) in extra_headers {
            write!(out, "{name}: {value}\r\n")?;
        }
        if let Some(body) = body {
            write!(out, "content-type: application/json\r\ncontent-length: {}\r\n", body.len())?;
        }
        out.extend_from_slice(b"\r\n");
        if let Some(body) = body {
            out.extend_from_slice(body);
        }
        self.writer.write_all(&out)?;
        self.read_response()
    }

    /// `POST /predict` for a batch of records.
    pub fn predict(&mut self, records: &[Record]) -> Result<PredictOutcome, ClientError> {
        Ok(self.predict_traced(records, None)?.0)
    }

    /// `POST /predict` carrying an `x-overton-trace` header when
    /// `trace_id` is given. Returns the outcome plus the trace id the
    /// server echoed back (`None` when the server has tracing off or the
    /// request was refused before tracing).
    pub fn predict_traced(
        &mut self,
        records: &[Record],
        trace_id: Option<&str>,
    ) -> Result<(PredictOutcome, Option<String>), ClientError> {
        let body = wire::encode_predict_request(records);
        let headers: Vec<(&str, &str)> =
            trace_id.map(|id| ("x-overton-trace", id)).into_iter().collect();
        let response = self.request_with("POST", "/predict", Some(body.as_bytes()), &headers)?;
        let echoed = response.header("x-overton-trace").map(str::to_string);
        let outcome = match response.status {
            200 => wire::decode_predict_response(&response.body)
                .map(PredictOutcome::Answered)
                .map_err(ClientError::Protocol)?,
            503 => PredictOutcome::Shed {
                retry_after_secs: response.header("retry-after").and_then(|v| v.parse().ok()),
            },
            status => {
                return Err(ClientError::Http {
                    status,
                    body: String::from_utf8_lossy(&response.body).into_owned(),
                })
            }
        };
        Ok((outcome, echoed))
    }

    /// `GET /healthz`; `Ok(true)` when serving, `Ok(false)` when draining.
    pub fn health(&mut self) -> Result<bool, ClientError> {
        let response = self.request("GET", "/healthz", None)?;
        match response.status {
            200 => Ok(true),
            503 => Ok(false),
            status => Err(ClientError::Http {
                status,
                body: String::from_utf8_lossy(&response.body).into_owned(),
            }),
        }
    }

    /// `GET /telemetry`, parsed into the shared snapshot type.
    pub fn telemetry(&mut self) -> Result<crate::TelemetrySnapshot, ClientError> {
        let response = self.request("GET", "/telemetry", None)?;
        if response.status != 200 {
            return Err(ClientError::Http {
                status: response.status,
                body: String::from_utf8_lossy(&response.body).into_owned(),
            });
        }
        let text = std::str::from_utf8(&response.body)
            .map_err(|e| ClientError::Protocol(format!("telemetry body not UTF-8: {e}")))?;
        serde_json::from_str(text).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn expect_200(response: ClientResponse) -> Result<ClientResponse, ClientError> {
        if response.status != 200 {
            return Err(ClientError::Http {
                status: response.status,
                body: String::from_utf8_lossy(&response.body).into_owned(),
            });
        }
        Ok(response)
    }

    /// `GET /metrics` — the raw Prometheus text exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let response = Self::expect_200(self.request("GET", "/metrics", None)?)?;
        String::from_utf8(response.body)
            .map_err(|e| ClientError::Protocol(format!("metrics body not UTF-8: {e}")))
    }

    /// `GET /trace/<id>` — one retained trace.
    pub fn trace(&mut self, id: &str) -> Result<crate::TraceReport, ClientError> {
        let response = Self::expect_200(self.request("GET", &format!("/trace/{id}"), None)?)?;
        let text = std::str::from_utf8(&response.body)
            .map_err(|e| ClientError::Protocol(format!("trace body not UTF-8: {e}")))?;
        serde_json::from_str(text).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `GET /traces` — the slowest retained traces, slowest first.
    pub fn traces(&mut self) -> Result<Vec<crate::TraceReport>, ClientError> {
        #[derive(serde::Deserialize)]
        struct Slowest {
            slowest: Vec<crate::TraceReport>,
        }
        let response = Self::expect_200(self.request("GET", "/traces", None)?)?;
        let text = std::str::from_utf8(&response.body)
            .map_err(|e| ClientError::Protocol(format!("traces body not UTF-8: {e}")))?;
        serde_json::from_str::<Slowest>(text)
            .map(|s| s.slowest)
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let limits = HttpLimits::default();
        let mut line = Vec::new();
        loop {
            let mut byte = [0u8; 1];
            match self.reader.read(&mut byte) {
                Ok(0) => {
                    return Err(ClientError::Protocol("server closed mid-response".into()));
                }
                Ok(_) => {
                    if byte[0] == b'\n' {
                        if line.last() == Some(&b'\r') {
                            line.pop();
                        }
                        return String::from_utf8(line)
                            .map_err(|e| ClientError::Protocol(format!("non-UTF-8 header: {e}")));
                    }
                    line.push(byte[0]);
                    if line.len() > limits.max_header_line {
                        return Err(ClientError::Protocol("response header too long".into()));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Reads one full response (status line, headers, `Content-Length`
    /// body).
    pub fn read_response(&mut self) -> Result<ClientResponse, ClientError> {
        let status_line = self.read_line()?;
        let mut parts = status_line.split(' ');
        let (version, status) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        if !version.starts_with("HTTP/1.") {
            return Err(ClientError::Protocol(format!("bad status line: {status_line}")));
        }
        let status: u16 = status
            .parse()
            .map_err(|_| ClientError::Protocol(format!("bad status in: {status_line}")))?;
        let mut headers = Vec::new();
        let mut length: Option<usize> = None;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= HttpLimits::default().max_headers {
                return Err(ClientError::Protocol("too many response headers".into()));
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(ClientError::Protocol(format!("bad header: {line}")));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                length = Some(
                    value
                        .parse()
                        .map_err(|_| ClientError::Protocol(format!("bad length: {value}")))?,
                );
            }
            headers.push((name, value));
        }
        let length = length
            .ok_or_else(|| ClientError::Protocol("response without content-length".into()))?;
        if length > HttpLimits::default().max_body {
            return Err(ClientError::Protocol(format!("{length}-byte response too large")));
        }
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse { status, headers, body })
    }

    /// Sends raw bytes down the connection (the hostile-input battery)
    /// and reads back whatever response the server gives.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<ClientResponse, ClientError> {
        self.writer.write_all(bytes)?;
        self.read_response()
    }

    /// Consumes whatever remains on the connection until the server
    /// closes it; `true` if close was observed within the read timeout.
    pub fn server_closed(mut self) -> bool {
        let mut sink = Vec::new();
        self.reader.read_to_end(&mut sink).is_ok()
    }

    /// Whether buffered response bytes remain unread (protocol hygiene
    /// checks in tests).
    pub fn has_buffered(&self) -> bool {
        !self.reader.buffer().is_empty()
    }
}
